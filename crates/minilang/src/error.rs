//! Diagnostics for every stage of the minilang pipeline.
//!
//! All errors carry source positions (line/column, 1-based) so the portal
//! can render compiler output the way gcc would have.

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, 1-based (0 = unknown).
    pub line: u32,
    /// Column number, 1-based (0 = unknown).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the bad input starts.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where parsing failed.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Semantic / code-generation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Offending location (best effort).
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Runtime failures raised by the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Wrong operand types for an operation.
    TypeError {
        /// What was attempted.
        op: String,
        /// What was found.
        found: String,
    },
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Index requested.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Every live thread is blocked: the classic deadlock.
    Deadlock {
        /// Human-readable wait-state of each blocked thread.
        blocked: Vec<String>,
    },
    /// The instruction budget was exhausted (runaway program).
    BudgetExhausted {
        /// Instructions executed before the stop.
        executed: u64,
    },
    /// Unlocking a mutex the thread does not hold.
    NotLockOwner {
        /// Mutex id.
        mutex: usize,
    },
    /// Joining a thread id that was never spawned.
    NoSuchThread(usize),
    /// A host I/O operation failed (file missing, etc.).
    Io(String),
    /// `assert(...)` failed.
    AssertionFailed,
    /// Internal VM invariant violation — indicates a compiler bug.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeError { op, found } => write!(f, "type error: {op} on {found}"),
            RuntimeError::DivisionByZero => f.write_str("division by zero"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            RuntimeError::Deadlock { blocked } => {
                write!(f, "deadlock: all threads blocked [{}]", blocked.join("; "))
            }
            RuntimeError::BudgetExhausted { executed } => {
                write!(
                    f,
                    "instruction budget exhausted after {executed} instructions"
                )
            }
            RuntimeError::NotLockOwner { mutex } => write!(f, "unlock of mutex {mutex} not held"),
            RuntimeError::NoSuchThread(t) => write!(f, "join on unknown thread {t}"),
            RuntimeError::Io(m) => write!(f, "io error: {m}"),
            RuntimeError::AssertionFailed => f.write_str("assertion failed"),
            RuntimeError::Internal(m) => write!(f, "internal VM error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Any stage's failure, for the one-call convenience APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexing failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Compilation failed.
    Compile(CompileError),
    /// Execution failed.
    Runtime(RuntimeError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex(e) => e.fmt(f),
            LangError::Parse(e) => e.fmt(f),
            LangError::Compile(e) => e.fmt(f),
            LangError::Runtime(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LangError {}

impl From<LexError> for LangError {
    fn from(e: LexError) -> Self {
        LangError::Lex(e)
    }
}
impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}
impl From<CompileError> for LangError {
    fn from(e: CompileError) -> Self {
        LangError::Compile(e)
    }
}
impl From<RuntimeError> for LangError {
    fn from(e: RuntimeError) -> Self {
        LangError::Runtime(e)
    }
}
