//! Nonblocking point-to-point: overlap of communication and computation.

use mpik::{Tag, World};
use simnet::{LinkProfile, Topology};

#[test]
fn irecv_test_wait_roundtrip() {
    let w = World::new(2, Topology::ring(2), LinkProfile::new(100, 1 << 30));
    let out = w
        .run(|p| {
            if p.rank() == 0 {
                // Compute "while" the message is in flight, then send.
                p.compute(5_000);
                p.isend(1, Tag(9), vec![42]).unwrap();
                0u8
            } else {
                let req = p.irecv(0, Tag(9)).unwrap();
                // Poll a few times (may legitimately be None early).
                let mut polls = 0;
                let msg = loop {
                    if let Some(m) = p.test(&req).unwrap() {
                        break m;
                    }
                    polls += 1;
                    if polls > 3 {
                        break p.wait(req).unwrap();
                    }
                    std::thread::yield_now();
                };
                msg.data[0]
            }
        })
        .unwrap();
    assert_eq!(out[1], 42);
}

#[test]
fn overlapping_requests_match_by_tag() {
    let w = World::new(2, Topology::ring(2), LinkProfile::new(1, 1 << 30));
    let out = w
        .run(|p| {
            if p.rank() == 0 {
                p.isend(1, Tag(2), vec![2]).unwrap();
                p.isend(1, Tag(1), vec![1]).unwrap();
                0
            } else {
                let r1 = p.irecv(0, Tag(1)).unwrap();
                let r2 = p.irecv(0, Tag(2)).unwrap();
                let m1 = p.wait(r1).unwrap();
                let m2 = p.wait(r2).unwrap();
                (m1.data[0] as i32) * 10 + m2.data[0] as i32
            }
        })
        .unwrap();
    assert_eq!(out[1], 12);
}

#[test]
fn irecv_bad_rank_rejected() {
    let w = World::new(2, Topology::ring(2), LinkProfile::new(1, 1 << 30));
    let out = w.run(|p| p.irecv(5, Tag(0)).is_err()).unwrap();
    assert!(out.iter().all(|&e| e));
}
