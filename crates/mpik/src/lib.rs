//! # mpik — a message-passing kernel in the MPI mold
//!
//! Lab 3 uses "Pthread and MPI to simulate and evaluate the access times to
//! local shared memory and the access times to remote memory" (§III.B), and
//! the course's message-passing module covers "topology, latency, and
//! routing" (§III.A). This crate is the MPI substrate: SPMD programs run as
//! real OS threads (one per rank), communicating through typed point-to-
//! point messages and the standard collectives, while a per-rank *virtual
//! clock* accumulates simulated network costs from a [`simnet::Network`]
//! cost model — so benches measure both real wall time and modeled cluster
//! time.
//!
//! ```
//! use mpik::{World, Reduce};
//! use simnet::{Topology, LinkProfile};
//!
//! let world = World::new(4, Topology::ring(4), LinkProfile::backplane());
//! let sums = world.run(|p| {
//!     let mine = (p.rank() as i64 + 1) * 10;
//!     p.allreduce_i64(mine, Reduce::Sum).unwrap()
//! }).unwrap();
//! assert_eq!(sums, vec![100, 100, 100, 100]);
//! ```

pub mod collectives;
pub mod proc;
pub mod world;

pub use proc::{MpiError, Msg, Proc, RecvRequest, Reduce, Tag};
pub use world::{RankStats, World, WorldError};
