//! The per-rank handle: typed point-to-point messaging with tag matching
//! and a virtual clock fed by the network cost model.

use crossbeam::channel::{Receiver, Sender};
use simnet::Network;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Message tag, MPI-style. Collectives reserve tags >= [`Tag::RESERVED`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

impl Tag {
    /// First tag value reserved for internal (collective) traffic.
    pub const RESERVED: u32 = 0xFFFF_0000;
    /// Tag usable by applications by default.
    pub const DEFAULT: Tag = Tag(0);
}

/// A wire message.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: Tag,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Sender's virtual clock at send time plus transfer cost (arrival time).
    pub arrival_vt: u64,
}

/// Reduction operators for the `*_i64` collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Product (wrapping).
    Prod,
}

impl Reduce {
    /// Apply the operator.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            Reduce::Sum => a.wrapping_add(b),
            Reduce::Min => a.min(b),
            Reduce::Max => a.max(b),
            Reduce::Prod => a.wrapping_mul(b),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> i64 {
        match self {
            Reduce::Sum => 0,
            Reduce::Min => i64::MAX,
            Reduce::Max => i64::MIN,
            Reduce::Prod => 1,
        }
    }
}

/// Message-passing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside the world.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// The peer's endpoint is gone (its thread panicked or returned early).
    Disconnected {
        /// The peer rank involved.
        peer: usize,
    },
    /// Payload could not be decoded as the requested type.
    Decode {
        /// What was expected.
        expected: &'static str,
        /// Payload length found.
        len: usize,
    },
    /// Routing/cost model failure from the network layer.
    Network(String),
    /// Send to self (unsupported; use local state instead).
    SelfSend,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range (size {size})")
            }
            MpiError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            MpiError::Decode { expected, len } => {
                write!(f, "cannot decode {len}-byte payload as {expected}")
            }
            MpiError::Network(m) => write!(f, "network error: {m}"),
            MpiError::SelfSend => f.write_str("send to self is not supported"),
        }
    }
}

impl std::error::Error for MpiError {}

/// The handle a rank's closure receives: MPI-ish API surface.
pub struct Proc {
    rank: usize,
    size: usize,
    /// Senders to every rank's inbox (index = destination).
    pub(crate) txs: Vec<Option<Sender<Msg>>>,
    /// This rank's inbox.
    pub(crate) rx: Receiver<Msg>,
    /// Unexpected-message queue (arrived but not yet matched).
    pending: VecDeque<Msg>,
    /// Shared read-only cost model.
    net: Arc<Network>,
    /// Accumulated virtual (simulated-cluster) nanoseconds.
    vt: u64,
    /// Messages sent.
    sent: u64,
    /// Bytes sent.
    bytes: u64,
}

impl Proc {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        txs: Vec<Option<Sender<Msg>>>,
        rx: Receiver<Msg>,
        net: Arc<Network>,
    ) -> Proc {
        Proc {
            rank,
            size,
            txs,
            rx,
            pending: VecDeque::new(),
            net,
            vt: 0,
            sent: 0,
            bytes: 0,
        }
    }

    /// This process's rank (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Accumulated virtual time in simulated nanoseconds.
    pub fn virtual_time(&self) -> u64 {
        self.vt
    }

    /// Add local compute time to the virtual clock (ns).
    pub fn compute(&mut self, ns: u64) {
        self.vt = self.vt.saturating_add(ns);
    }

    /// Messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Payload bytes sent so far.
    pub fn sent_bytes(&self) -> u64 {
        self.bytes
    }

    /// Blocking tagged send of raw bytes.
    pub fn send(&mut self, dst: usize, tag: Tag, data: Vec<u8>) -> Result<(), MpiError> {
        if dst == self.rank {
            return Err(MpiError::SelfSend);
        }
        if dst >= self.size {
            return Err(MpiError::RankOutOfRange {
                rank: dst,
                size: self.size,
            });
        }
        let cost = self
            .net
            .message_cost(self.rank, dst, data.len() as u64)
            .map_err(|e| MpiError::Network(e.to_string()))?;
        // Sender is busy for the serialization part; full cost lands at the
        // receiver as arrival time (alpha-beta model, store-and-forward).
        let arrival_vt = self.vt + cost.total.nanos();
        self.vt = self
            .vt
            .saturating_add(cost.total.nanos() / (cost.hops.max(1) as u64));
        self.sent += 1;
        self.bytes += data.len() as u64;
        let msg = Msg {
            src: self.rank,
            tag,
            data,
            arrival_vt,
        };
        self.txs[dst]
            .as_ref()
            .ok_or(MpiError::Disconnected { peer: dst })?
            .send(msg)
            .map_err(|_| MpiError::Disconnected { peer: dst })
    }

    /// Blocking receive matching `(src, tag)`. Messages from other sources/
    /// tags are buffered, preserving arrival order per match key.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Result<Msg, MpiError> {
        if src >= self.size {
            return Err(MpiError::RankOutOfRange {
                rank: src,
                size: self.size,
            });
        }
        // Check the unexpected-message queue first.
        if let Some(i) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let msg = self.pending.remove(i).expect("position valid");
            self.vt = self.vt.max(msg.arrival_vt);
            return Ok(msg);
        }
        loop {
            let msg = self
                .rx
                .recv()
                .map_err(|_| MpiError::Disconnected { peer: src })?;
            if msg.src == src && msg.tag == tag {
                self.vt = self.vt.max(msg.arrival_vt);
                return Ok(msg);
            }
            self.pending.push_back(msg);
        }
    }

    /// Receive from any source with the given tag; returns the message.
    pub fn recv_any(&mut self, tag: Tag) -> Result<Msg, MpiError> {
        if let Some(i) = self.pending.iter().position(|m| m.tag == tag) {
            let msg = self.pending.remove(i).expect("position valid");
            self.vt = self.vt.max(msg.arrival_vt);
            return Ok(msg);
        }
        loop {
            let msg = self
                .rx
                .recv()
                .map_err(|_| MpiError::Disconnected { peer: self.size })?;
            if msg.tag == tag {
                self.vt = self.vt.max(msg.arrival_vt);
                return Ok(msg);
            }
            self.pending.push_back(msg);
        }
    }

    // ---- typed helpers -----------------------------------------------------

    /// Send one i64.
    pub fn send_i64(&mut self, dst: usize, tag: Tag, v: i64) -> Result<(), MpiError> {
        self.send(dst, tag, v.to_le_bytes().to_vec())
    }

    /// Receive one i64.
    pub fn recv_i64(&mut self, src: usize, tag: Tag) -> Result<i64, MpiError> {
        let m = self.recv(src, tag)?;
        decode_i64(&m.data)
    }

    /// Send a slice of i64s.
    pub fn send_vec_i64(&mut self, dst: usize, tag: Tag, vs: &[i64]) -> Result<(), MpiError> {
        let mut data = Vec::with_capacity(vs.len() * 8);
        for v in vs {
            data.extend_from_slice(&v.to_le_bytes());
        }
        self.send(dst, tag, data)
    }

    /// Receive a vector of i64s.
    pub fn recv_vec_i64(&mut self, src: usize, tag: Tag) -> Result<Vec<i64>, MpiError> {
        let m = self.recv(src, tag)?;
        decode_vec_i64(&m.data)
    }
}

/// Decode a single little-endian i64.
pub fn decode_i64(data: &[u8]) -> Result<i64, MpiError> {
    let arr: [u8; 8] = data.try_into().map_err(|_| MpiError::Decode {
        expected: "i64",
        len: data.len(),
    })?;
    Ok(i64::from_le_bytes(arr))
}

/// Decode a packed little-endian i64 vector.
pub fn decode_vec_i64(data: &[u8]) -> Result<Vec<i64>, MpiError> {
    if !data.len().is_multiple_of(8) {
        return Err(MpiError::Decode {
            expected: "Vec<i64>",
            len: data.len(),
        });
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops() {
        assert_eq!(Reduce::Sum.apply(2, 3), 5);
        assert_eq!(Reduce::Min.apply(2, 3), 2);
        assert_eq!(Reduce::Max.apply(2, 3), 3);
        assert_eq!(Reduce::Prod.apply(2, 3), 6);
        for op in [Reduce::Sum, Reduce::Min, Reduce::Max, Reduce::Prod] {
            assert_eq!(op.apply(op.identity(), 42), 42);
        }
    }

    #[test]
    fn decode_roundtrip() {
        assert_eq!(decode_i64(&(-7i64).to_le_bytes()).unwrap(), -7);
        assert!(decode_i64(&[1, 2, 3]).is_err());
        let packed: Vec<u8> = [1i64, -2, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(decode_vec_i64(&packed).unwrap(), vec![1, -2, 3]);
        assert!(decode_vec_i64(&[0; 9]).is_err());
    }
}

/// Handle for a nonblocking receive posted with [`Proc::irecv`].
///
/// Complete it with [`Proc::wait`] (blocking) or poll with [`Proc::test`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRequest {
    /// Source rank the request matches.
    pub src: usize,
    /// Tag the request matches.
    pub tag: Tag,
}

impl Proc {
    /// Nonblocking send. With buffered (eager) delivery the message is on
    /// the wire immediately, so the operation completes at once — the MPI
    /// analogue is a buffered `MPI_Isend` whose request is instantly ready.
    pub fn isend(&mut self, dst: usize, tag: Tag, data: Vec<u8>) -> Result<(), MpiError> {
        self.send(dst, tag, data)
    }

    /// Post a nonblocking receive for `(src, tag)`.
    pub fn irecv(&mut self, src: usize, tag: Tag) -> Result<RecvRequest, MpiError> {
        if src >= self.size() {
            return Err(MpiError::RankOutOfRange {
                rank: src,
                size: self.size(),
            });
        }
        Ok(RecvRequest { src, tag })
    }

    /// Poll a posted receive: `Ok(Some(msg))` when a matching message has
    /// arrived, `Ok(None)` when not yet. Never blocks.
    pub fn test(&mut self, req: &RecvRequest) -> Result<Option<Msg>, MpiError> {
        // Drain everything already delivered into the pending queue.
        while let Ok(msg) = self.rx.try_recv() {
            self.pending.push_back(msg);
        }
        if let Some(i) = self
            .pending
            .iter()
            .position(|m| m.src == req.src && m.tag == req.tag)
        {
            let msg = self.pending.remove(i).expect("position valid");
            self.vt = self.vt.max(msg.arrival_vt);
            return Ok(Some(msg));
        }
        Ok(None)
    }

    /// Complete a posted receive, blocking until the message arrives.
    pub fn wait(&mut self, req: RecvRequest) -> Result<Msg, MpiError> {
        self.recv(req.src, req.tag)
    }
}
