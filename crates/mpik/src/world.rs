//! The world: spawn one OS thread per rank, wire up inboxes, run SPMD code.

use crate::proc::{Msg, Proc};
use crossbeam::channel::unbounded;
use simnet::{LinkProfile, Network, Topology};
use std::fmt;
use std::sync::Arc;

/// Per-rank execution statistics returned alongside results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankStats {
    /// The rank.
    pub rank: usize,
    /// Final virtual clock (simulated ns).
    pub virtual_time_ns: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
}

/// World construction / execution failures.
#[derive(Debug)]
pub enum WorldError {
    /// A rank's thread panicked; the panic payload is rendered if stringy.
    RankPanicked {
        /// Which rank died.
        rank: usize,
        /// Panic message when recoverable.
        message: String,
    },
    /// World size must be >= 1 and fit the topology.
    BadSize {
        /// Requested ranks.
        ranks: usize,
        /// Topology node count.
        nodes: usize,
    },
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            WorldError::BadSize { ranks, nodes } => {
                write!(
                    f,
                    "world of {ranks} ranks does not fit topology of {nodes} nodes"
                )
            }
        }
    }
}

impl std::error::Error for WorldError {}

/// An SPMD execution context: `n` ranks over a costed topology.
pub struct World {
    size: usize,
    net: Arc<Network>,
}

impl World {
    /// A world of `size` ranks mapped 1:1 onto the first `size` nodes of
    /// `topo`, every link using `profile`.
    ///
    /// Panics if `size` is zero or exceeds the topology (programming error).
    pub fn new(size: usize, topo: Topology, profile: LinkProfile) -> World {
        assert!(size >= 1, "world needs at least one rank");
        assert!(
            size <= topo.len(),
            "world of {size} ranks exceeds {} nodes",
            topo.len()
        );
        World {
            size,
            net: Arc::new(Network::new(topo, profile)),
        }
    }

    /// A world over an existing network (e.g. [`Network::uhd_cluster`]).
    pub fn with_network(size: usize, net: Network) -> Result<World, WorldError> {
        if size == 0 || size > net.topology().len() {
            return Err(WorldError::BadSize {
                ranks: size,
                nodes: net.topology().len(),
            });
        }
        Ok(World {
            size,
            net: Arc::new(net),
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared cost model.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Run `f` on every rank concurrently; returns rank-ordered results.
    ///
    /// `f` must not panic; a panicking rank turns into
    /// [`WorldError::RankPanicked`] (other ranks may then fail with
    /// disconnection errors, which their closures surface as they wish).
    pub fn run<F, R>(&self, f: F) -> Result<Vec<R>, WorldError>
    where
        F: Fn(&mut Proc) -> R + Send + Sync,
        R: Send,
    {
        self.run_stats(f).map(|(results, _)| results)
    }

    /// Like [`World::run`], also returning per-rank statistics.
    pub fn run_stats<F, R>(&self, f: F) -> Result<(Vec<R>, Vec<RankStats>), WorldError>
    where
        F: Fn(&mut Proc) -> R + Send + Sync,
        R: Send,
    {
        let size = self.size;
        let mut txs_all = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Msg>();
            txs_all.push(tx);
            rxs.push(rx);
        }
        let results: Vec<Option<(R, RankStats)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let txs: Vec<_> = txs_all.iter().map(|t| Some(t.clone())).collect();
                let net = Arc::clone(&self.net);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut proc = Proc::new(rank, size, txs, rx, net);
                    let r = f(&mut proc);
                    let stats = RankStats {
                        rank,
                        virtual_time_ns: proc.virtual_time(),
                        messages_sent: proc.sent_count(),
                        bytes_sent: proc.sent_bytes(),
                    };
                    (r, stats)
                }));
            }
            // Senders held by the spawning thread must drop so rank threads
            // can observe disconnection of *finished* peers only.
            drop(txs_all);
            handles.into_iter().map(|h| h.join().ok()).collect()
        });
        let mut out = Vec::with_capacity(size);
        let mut stats = Vec::with_capacity(size);
        for (rank, slot) in results.into_iter().enumerate() {
            match slot {
                Some((r, s)) => {
                    out.push(r);
                    stats.push(s);
                }
                None => {
                    return Err(WorldError::RankPanicked {
                        rank,
                        message: "rank thread panicked".to_string(),
                    })
                }
            }
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{MpiError, Tag};

    fn ring4() -> World {
        World::new(4, Topology::ring(4), LinkProfile::new(1_000, 1 << 30))
    }

    #[test]
    fn rank_identity() {
        let w = ring4();
        let ranks = w.run(|p| (p.rank(), p.size())).unwrap();
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn pingpong() {
        let w = World::new(2, Topology::ring(2), LinkProfile::new(500, 1 << 30));
        let out = w
            .run(|p| {
                if p.rank() == 0 {
                    p.send_i64(1, Tag::DEFAULT, 41).unwrap();
                    p.recv_i64(1, Tag::DEFAULT).unwrap()
                } else {
                    let v = p.recv_i64(0, Tag::DEFAULT).unwrap();
                    p.send_i64(0, Tag::DEFAULT, v + 1).unwrap();
                    v
                }
            })
            .unwrap();
        assert_eq!(out, vec![42, 41]);
    }

    #[test]
    fn tag_matching_buffers_unexpected() {
        let w = World::new(2, Topology::ring(2), LinkProfile::new(1, 1 << 30));
        let out = w
            .run(|p| {
                if p.rank() == 0 {
                    // Send tag 2 first, then tag 1; receiver asks for 1 first.
                    p.send_i64(1, Tag(2), 222).unwrap();
                    p.send_i64(1, Tag(1), 111).unwrap();
                    0
                } else {
                    let first = p.recv_i64(0, Tag(1)).unwrap();
                    let second = p.recv_i64(0, Tag(2)).unwrap();
                    first * 1000 + second
                }
            })
            .unwrap();
        assert_eq!(out[1], 111_222);
    }

    #[test]
    fn virtual_time_accumulates_network_cost() {
        // Two hops on a ring with 1µs latency: receiver's clock must be at
        // least the arrival time of the message.
        let w = World::new(4, Topology::ring(4), LinkProfile::new(1_000, 1 << 30));
        let (_, stats) = w
            .run_stats(|p| {
                if p.rank() == 0 {
                    p.send_i64(2, Tag::DEFAULT, 1).unwrap();
                } else if p.rank() == 2 {
                    p.recv_i64(0, Tag::DEFAULT).unwrap();
                }
            })
            .unwrap();
        assert!(
            stats[2].virtual_time_ns >= 2_000,
            "vt {}",
            stats[2].virtual_time_ns
        );
        assert_eq!(stats[0].messages_sent, 1);
        assert_eq!(stats[0].bytes_sent, 8);
        assert_eq!(stats[3].messages_sent, 0);
    }

    #[test]
    fn self_send_rejected() {
        let w = ring4();
        let errs = w
            .run(|p| p.send_i64(p.rank(), Tag::DEFAULT, 0).unwrap_err())
            .unwrap();
        assert!(errs.iter().all(|e| *e == MpiError::SelfSend));
    }

    #[test]
    fn bad_rank_rejected() {
        let w = ring4();
        let errs = w
            .run(|p| p.send_i64(99, Tag::DEFAULT, 0).unwrap_err())
            .unwrap();
        assert!(matches!(
            errs[0],
            MpiError::RankOutOfRange { rank: 99, size: 4 }
        ));
    }

    #[test]
    fn world_size_validation() {
        let net = Network::new(Topology::ring(2), LinkProfile::new(1, 1));
        assert!(matches!(
            World::with_network(5, net),
            Err(WorldError::BadSize { .. })
        ));
    }

    #[test]
    fn compute_advances_virtual_clock() {
        let w = ring4();
        let (_, stats) = w.run_stats(|p| p.compute(5_000)).unwrap();
        assert!(stats.iter().all(|s| s.virtual_time_ns == 5_000));
    }
}
