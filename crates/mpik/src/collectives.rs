//! The standard collectives, implemented over point-to-point messaging.
//!
//! Algorithms are the textbook ones the course teaches: binomial trees for
//! broadcast/reduce (log p rounds), central coordinator for barrier, linear
//! scatter/gather from the root, a ring for allgather and pairwise exchange
//! for alltoall. Every collective uses reserved tags so it composes with
//! application traffic.

use crate::proc::{decode_vec_i64, MpiError, Proc, Reduce, Tag};

const T_BARRIER_IN: Tag = Tag(Tag::RESERVED);
const T_BARRIER_OUT: Tag = Tag(Tag::RESERVED + 1);
const T_BCAST: Tag = Tag(Tag::RESERVED + 2);
const T_REDUCE: Tag = Tag(Tag::RESERVED + 3);
const T_SCATTER: Tag = Tag(Tag::RESERVED + 4);
const T_GATHER: Tag = Tag(Tag::RESERVED + 5);
const T_ALLGATHER: Tag = Tag(Tag::RESERVED + 6);
const T_ALLTOALL: Tag = Tag(Tag::RESERVED + 7);

impl Proc {
    /// Synchronize all ranks: nobody returns until everybody entered.
    ///
    /// Central-coordinator algorithm (rank 0 collects then releases), the
    /// version presented first in the course module.
    pub fn barrier(&mut self) -> Result<(), MpiError> {
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        if self.rank() == 0 {
            for _ in 1..size {
                self.recv_any(T_BARRIER_IN)?;
            }
            for r in 1..size {
                self.send(r, T_BARRIER_OUT, Vec::new())?;
            }
        } else {
            self.send(0, T_BARRIER_IN, Vec::new())?;
            self.recv(0, T_BARRIER_OUT)?;
        }
        Ok(())
    }

    /// Broadcast `data` from `root` to every rank; returns the payload.
    ///
    /// Binomial tree: log2(p) rounds.
    pub fn bcast(&mut self, root: usize, data: Option<Vec<u8>>) -> Result<Vec<u8>, MpiError> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::RankOutOfRange { rank: root, size });
        }
        // Work in a rotated rank space where the root is 0.
        let vrank = (self.rank() + size - root) % size;
        let mut payload = if vrank == 0 {
            data.unwrap_or_default()
        } else {
            // Receive from the parent: clear the lowest set bit.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % size;
            self.recv(parent, T_BCAST)?.data
        };
        // Forward to children: set each bit above the lowest set bit.
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        let mut bit = 1usize;
        while bit < size {
            if (bit.trailing_zeros()) < lowest {
                let child_v = vrank | bit;
                if child_v != vrank && child_v < size {
                    let child = (child_v + root) % size;
                    let copy = payload.clone();
                    self.send(child, T_BCAST, copy)?;
                }
            }
            bit <<= 1;
        }
        // Keep ownership straight for the root without data.
        if payload.is_empty() && vrank == 0 {
            payload = Vec::new();
        }
        Ok(payload)
    }

    /// Broadcast one i64 from `root`.
    pub fn bcast_i64(&mut self, root: usize, v: Option<i64>) -> Result<i64, MpiError> {
        let data = self.bcast(root, v.map(|x| x.to_le_bytes().to_vec()))?;
        crate::proc::decode_i64(&data)
    }

    /// Reduce every rank's `v` to `root` with `op`; root gets the result,
    /// others get their partial (MPI returns undefined there; we return the
    /// local partial for debuggability).
    ///
    /// Binomial tree, mirroring [`Proc::bcast`].
    pub fn reduce_i64(&mut self, root: usize, v: i64, op: Reduce) -> Result<i64, MpiError> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::RankOutOfRange { rank: root, size });
        }
        let vrank = (self.rank() + size - root) % size;
        let mut acc = v;
        // Receive from children (those that differ by one higher bit).
        let lowest = if vrank == 0 {
            usize::BITS
        } else {
            vrank.trailing_zeros()
        };
        let mut bit = 1usize;
        let mut child_bits = Vec::new();
        while bit < size {
            if bit.trailing_zeros() < lowest {
                let child_v = vrank | bit;
                if child_v != vrank && child_v < size {
                    child_bits.push(child_v);
                }
            }
            bit <<= 1;
        }
        // Children must be drained highest-first (reverse of bcast order).
        for child_v in child_bits.into_iter().rev() {
            let child = (child_v + root) % size;
            let got = self.recv_i64(child, T_REDUCE)?;
            acc = op.apply(acc, got);
        }
        if vrank != 0 {
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % size;
            self.send_i64(parent, T_REDUCE, acc)?;
        }
        Ok(acc)
    }

    /// Allreduce: every rank gets `op` applied over all ranks' values.
    pub fn allreduce_i64(&mut self, v: i64, op: Reduce) -> Result<i64, MpiError> {
        let total = self.reduce_i64(0, v, op)?;
        self.bcast_i64(0, (self.rank() == 0).then_some(total))
    }

    /// Scatter: root holds `size` chunks, each rank receives chunk `rank`.
    pub fn scatter_i64(
        &mut self,
        root: usize,
        chunks: Option<&[Vec<i64>]>,
    ) -> Result<Vec<i64>, MpiError> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::RankOutOfRange { rank: root, size });
        }
        if self.rank() == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), size, "scatter needs one chunk per rank");
            for (r, chunk) in chunks.iter().enumerate() {
                if r != root {
                    self.send_vec_i64(r, T_SCATTER, chunk)?;
                }
            }
            Ok(chunks[root].clone())
        } else {
            self.recv_vec_i64(root, T_SCATTER)
        }
    }

    /// Gather: every rank sends its vector to root; root returns all in
    /// rank order, others return just their own.
    pub fn gather_i64(&mut self, root: usize, mine: &[i64]) -> Result<Vec<Vec<i64>>, MpiError> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::RankOutOfRange { rank: root, size });
        }
        if self.rank() == root {
            let mut all = vec![Vec::new(); size];
            all[root] = mine.to_vec();
            for (r, slot) in all.iter_mut().enumerate() {
                if r != root {
                    *slot = self.recv_vec_i64(r, T_GATHER)?;
                }
            }
            Ok(all)
        } else {
            self.send_vec_i64(root, T_GATHER, mine)?;
            Ok(vec![mine.to_vec()])
        }
    }

    /// Allgather by ring: p-1 rounds, each rank forwards the newest block.
    pub fn allgather_i64(&mut self, mine: &[i64]) -> Result<Vec<Vec<i64>>, MpiError> {
        let size = self.size();
        let rank = self.rank();
        let mut all: Vec<Vec<i64>> = vec![Vec::new(); size];
        all[rank] = mine.to_vec();
        if size == 1 {
            return Ok(all);
        }
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        // Round k: send the block that originated at (rank - k).
        let mut send_block = rank;
        for _ in 0..size - 1 {
            let payload = all[send_block].clone();
            self.send_vec_i64(next, T_ALLGATHER, &payload)?;
            let got = self.recv_vec_i64(prev, T_ALLGATHER)?;
            send_block = (send_block + size - 1) % size;
            all[send_block] = got;
        }
        Ok(all)
    }

    /// Alltoall: rank i's `blocks[j]` lands at rank j's result index i.
    /// Pairwise exchange.
    pub fn alltoall_i64(&mut self, blocks: &[Vec<i64>]) -> Result<Vec<Vec<i64>>, MpiError> {
        let size = self.size();
        let rank = self.rank();
        assert_eq!(blocks.len(), size, "alltoall needs one block per rank");
        let mut out = vec![Vec::new(); size];
        out[rank] = blocks[rank].clone();
        // Rotation algorithm: in round k, send the block addressed to
        // (rank + k) and receive the block coming from (rank - k). Sends
        // are buffered (never block), so the schedule is deadlock-free
        // without any pairwise ordering protocol.
        for k in 1..size {
            let to = (rank + k) % size;
            let from = (rank + size - k) % size;
            self.send_vec_i64(to, T_ALLTOALL, &blocks[to])?;
            out[from] = self.recv_vec_i64(from, T_ALLTOALL)?;
        }
        Ok(out)
    }

    /// Decode helper re-export for applications that use raw [`Proc::bcast`].
    pub fn decode_vec(data: &[u8]) -> Result<Vec<i64>, MpiError> {
        decode_vec_i64(data)
    }
}

#[cfg(test)]
mod tests {
    use crate::proc::{Reduce, Tag};
    use crate::world::World;
    use simnet::{LinkProfile, Topology};

    fn world(n: usize) -> World {
        World::new(
            n,
            Topology::fully_connected(n.max(2)),
            LinkProfile::new(100, 1 << 30),
        )
    }

    #[test]
    fn barrier_all_sizes() {
        for n in [1usize, 2, 3, 5, 8] {
            let w = world(n);
            let out = w.run(|p| {
                p.barrier().unwrap();
                p.rank()
            });
            assert_eq!(out.unwrap().len(), n);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [2usize, 3, 4, 7, 8] {
            for root in 0..n {
                let w = world(n);
                let out = w
                    .run(|p| {
                        let v = (p.rank() == root).then_some(4242 + root as i64);
                        p.bcast_i64(root, v).unwrap()
                    })
                    .unwrap();
                assert!(
                    out.iter().all(|&v| v == 4242 + root as i64),
                    "n={n} root={root} {out:?}"
                );
            }
        }
    }

    #[test]
    fn reduce_sum_and_max() {
        for n in [2usize, 3, 6, 8] {
            let w = world(n);
            let out = w
                .run(|p| p.reduce_i64(0, p.rank() as i64 + 1, Reduce::Sum).unwrap())
                .unwrap();
            let expect: i64 = (1..=n as i64).sum();
            assert_eq!(out[0], expect, "n={n}");
            let w = world(n);
            let out = w
                .run(|p| p.reduce_i64(0, p.rank() as i64, Reduce::Max).unwrap())
                .unwrap();
            assert_eq!(out[0], n as i64 - 1);
        }
    }

    #[test]
    fn allreduce_everyone_agrees() {
        for n in [2usize, 4, 5] {
            let w = world(n);
            let out = w
                .run(|p| p.allreduce_i64(2, Reduce::Prod).unwrap())
                .unwrap();
            assert!(out.iter().all(|&v| v == 1 << n), "n={n} {out:?}");
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let n = 4;
        let w = world(n);
        let out = w
            .run(|p| {
                let chunks: Option<Vec<Vec<i64>>> = (p.rank() == 1)
                    .then(|| (0..n as i64).map(|r| vec![r * 10, r * 10 + 1]).collect());
                let mine = p.scatter_i64(1, chunks.as_deref()).unwrap();
                let gathered = p.gather_i64(1, &mine).unwrap();
                (mine, gathered)
            })
            .unwrap();
        assert_eq!(out[2].0, vec![20, 21]);
        assert_eq!(out[1].1.len(), n);
        assert_eq!(out[1].1[3], vec![30, 31]);
        // Non-roots only echo their own chunk back.
        assert_eq!(out[0].1, vec![vec![0, 1]]);
    }

    #[test]
    fn allgather_ring() {
        for n in [1usize, 2, 3, 5] {
            let w = world(n);
            let out = w
                .run(|p| p.allgather_i64(&[p.rank() as i64 * 100]).unwrap())
                .unwrap();
            for (r, all) in out.iter().enumerate() {
                assert_eq!(all.len(), n, "rank {r}");
                for (i, block) in all.iter().enumerate() {
                    assert_eq!(block, &vec![i as i64 * 100], "rank {r} block {i}");
                }
            }
        }
    }

    #[test]
    fn alltoall_transpose() {
        let n = 4;
        let w = world(n);
        let out = w
            .run(|p| {
                let blocks: Vec<Vec<i64>> = (0..n)
                    .map(|dst| vec![(p.rank() * 10 + dst) as i64])
                    .collect();
                p.alltoall_i64(&blocks).unwrap()
            })
            .unwrap();
        // Rank j's block i must be what rank i addressed to j: i*10 + j.
        for (j, blocks) in out.iter().enumerate() {
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(b, &vec![(i * 10 + j) as i64], "rank {j} from {i}");
            }
        }
    }

    #[test]
    fn collectives_compose_with_user_traffic() {
        let n = 3;
        let w = world(n);
        let out = w
            .run(|p| {
                // User message in flight across a barrier must still match.
                if p.rank() == 0 {
                    p.send_i64(1, Tag(7), 99).unwrap();
                }
                p.barrier().unwrap();
                if p.rank() == 1 {
                    p.recv_i64(0, Tag(7)).unwrap()
                } else {
                    0
                }
            })
            .unwrap();
        assert_eq!(out[1], 99);
    }

    #[test]
    fn bcast_bad_root_rejected() {
        let w = world(2);
        let out = w.run(|p| p.bcast_i64(9, Some(1)).is_err()).unwrap();
        assert!(out.iter().all(|&e| e));
    }
}
