//! The TCP accept loop: one worker thread per connection (the portal's
//! traffic is a classroom, not a CDN), hardened against misbehaving
//! clients: per-connection read/write deadlines (slow-loris defence), a
//! request-size limit, a bounded in-flight connection count that sheds
//! excess load with `503 Retry-After`, and a graceful shutdown that stops
//! accepting but lets in-flight requests finish.

use crate::http::{HttpError, Request, Response, Status};
use crate::router::Router;
use obs::Obs;
use parking_lot::Mutex;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Hardening knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read deadline; a client that stalls mid-request past
    /// this gets `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Largest accepted request body; larger declared bodies get `413`
    /// without the bytes ever being buffered.
    pub max_body: usize,
    /// Connections handled concurrently; beyond this, new connections are
    /// shed immediately with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// How long [`ServerHandle::shutdown`] waits for in-flight requests to
    /// finish before giving up on them.
    pub drain_grace: Duration,
    /// Emit one structured `http.access` event per completed request
    /// (method, path, status, bytes, duration) into the attached obs event
    /// log. Covers the pre-router rejections (408/413/400) that would
    /// otherwise vanish silently. No-op unless an obs is attached.
    pub access_log: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: crate::http::MAX_BODY,
            max_inflight: 64,
            drain_grace: Duration::from_secs(5),
            access_log: false,
        }
    }
}

/// A running server, returned by [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    inflight: Arc<AtomicUsize>,
    drain_grace: Duration,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections shed with 503 because the server was at capacity.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections currently being handled.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Stop accepting, join the accept thread, then wait (bounded by the
    /// configured drain grace) for in-flight requests to complete.
    pub fn shutdown(mut self) {
        self.stop_and_drain();
    }

    fn stop_and_drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.drain_grace;
        while self.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_drain();
    }
}

/// The HTTP server: a router behind a TCP listener.
pub struct Server {
    router: Arc<Mutex<Router>>,
    config: ServerConfig,
    obs: Option<Arc<Obs>>,
}

impl Default for Server {
    fn default() -> Self {
        Self::new(Router::new())
    }
}

impl Server {
    /// Wrap a router with default hardening limits. If the router carries an
    /// obs domain, the server-level counters (sheds, timeouts, inflight)
    /// land there too.
    pub fn new(router: Router) -> Server {
        Server::with_config(router, ServerConfig::default())
    }

    /// Wrap a router with explicit limits.
    pub fn with_config(router: Router, config: ServerConfig) -> Server {
        let obs = router.obs().cloned();
        let mut server = Server {
            router: Arc::new(Mutex::new(router)),
            config,
            obs: None,
        };
        if let Some(obs) = obs {
            server = server.with_obs(obs);
        }
        server
    }

    /// Attach (or replace) the telemetry domain for connection-level
    /// counters and the access log (builder style).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Server {
        obs.metrics.describe(
            "ccp_httpd_shed_total",
            "connections shed at capacity with 503",
        );
        obs.metrics.describe(
            "ccp_httpd_request_timeouts_total",
            "requests cut off by the read deadline",
        );
        obs.metrics.describe(
            "ccp_httpd_rejected_total",
            "requests rejected before routing, by reason",
        );
        self.obs = Some(obs);
        self
    }

    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve on a background thread.
    pub fn spawn(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let inflight = Arc::new(AtomicUsize::new(0));
        let router = self.router;
        let config = self.config;
        let obs = self.obs;
        let drain_grace = config.drain_grace;
        let stop2 = Arc::clone(&stop);
        let served2 = Arc::clone(&served);
        let shed2 = Arc::clone(&shed);
        let inflight2 = Arc::clone(&inflight);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if inflight2.load(Ordering::SeqCst) >= config.max_inflight {
                    shed_connection(stream, &config, obs.as_deref());
                    shed2.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Count before spawning so a burst cannot overshoot the cap.
                let now_inflight = inflight2.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(o) = &obs {
                    o.metrics
                        .gauge("ccp_httpd_inflight", &[])
                        .set(now_inflight as i64);
                }
                let router = Arc::clone(&router);
                let served = Arc::clone(&served2);
                let inflight = Arc::clone(&inflight2);
                let config = config.clone();
                let obs = obs.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &router, &config, obs.as_deref());
                    served.fetch_add(1, Ordering::Relaxed);
                    let left = inflight.fetch_sub(1, Ordering::SeqCst) - 1;
                    if let Some(o) = &obs {
                        o.metrics.gauge("ccp_httpd_inflight", &[]).set(left as i64);
                    }
                });
            }
        });
        Ok(ServerHandle {
            addr: local,
            stop,
            served,
            shed,
            inflight,
            drain_grace,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Refuse a connection at capacity: fixed response, no router dispatch, no
/// slot in the inflight budget. The half-close + drain dance avoids an RST
/// (closing with unread request bytes would wipe the client's receive
/// buffer before it sees the 503).
fn shed_connection(mut stream: TcpStream, config: &ServerConfig, obs: Option<&Obs>) {
    if let Some(o) = obs {
        o.metrics.counter("ccp_httpd_shed_total", &[]).inc();
        if config.access_log {
            o.events.record(
                epoch_secs(),
                "http.access",
                &[
                    ("method", "-"),
                    ("path", "-"),
                    ("status", "503"),
                    ("bytes", "0"),
                    ("duration_us", "0"),
                ],
            );
        }
    }
    let write_timeout = config.write_timeout;
    std::thread::spawn(move || {
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = Response::error(
            Status::SERVICE_UNAVAILABLE,
            "server at capacity, retry shortly",
        )
        .with_header("Retry-After", "1")
        .write_to(&mut stream);
        let _ = stream.shutdown(Shutdown::Write);
        let mut scratch = [0u8; 512];
        while let Ok(n) = stream.read(&mut scratch) {
            if n == 0 {
                break;
            }
        }
    });
}

fn handle_connection(
    stream: TcpStream,
    router: &Mutex<Router>,
    config: &ServerConfig,
    obs: Option<&Obs>,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let mut request_line = (String::from("-"), String::from("-"));
    let response = match Request::parse_with_limit(&mut reader, config.max_body) {
        Ok(mut req) => {
            request_line = (req.method.to_string(), req.path.clone());
            router.lock().dispatch(&mut req)
        }
        Err(HttpError::TooLarge { declared, limit }) => {
            if let Some(o) = obs {
                o.metrics
                    .counter("ccp_httpd_rejected_total", &[("reason", "too_large")])
                    .inc();
            }
            Response::error(
                Status::PAYLOAD_TOO_LARGE,
                format!("body of {declared} bytes exceeds limit {limit}"),
            )
        }
        Err(HttpError::Timeout) => {
            if let Some(o) = obs {
                o.metrics
                    .counter("ccp_httpd_request_timeouts_total", &[])
                    .inc();
            }
            Response::error(Status::REQUEST_TIMEOUT, "request not received in time")
        }
        Err(e) => {
            if let Some(o) = obs {
                o.metrics
                    .counter("ccp_httpd_rejected_total", &[("reason", "bad_request")])
                    .inc();
            }
            Response::error(Status::BAD_REQUEST, e.to_string())
        }
    };
    let _ = response.write_to(&mut writer);
    if let Some(o) = obs {
        if config.access_log {
            o.events.record(
                epoch_secs(),
                "http.access",
                &[
                    ("method", &request_line.0),
                    ("path", &request_line.1),
                    ("status", &response.status.0.to_string()),
                    ("bytes", &response.body.len().to_string()),
                    (
                        "duration_us",
                        &(started.elapsed().as_micros() as u64).to_string(),
                    ),
                ],
            );
        }
    }
}

fn epoch_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use std::io::{Read, Write};

    fn raw_request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::text("pong"));
        router.post("/echo", |req| Response::text(req.body_str().to_string()));
        router.get("/jobs/:id", |req| {
            Response::text(format!("job={}", req.param("id").unwrap()))
        });
        router.get("/slow", |_| {
            std::thread::sleep(Duration::from_millis(300));
            Response::text("done")
        });
        router
    }

    fn test_server() -> ServerHandle {
        Server::new(test_router()).spawn("127.0.0.1:0").unwrap()
    }

    #[test]
    fn serves_get_over_real_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.ends_with("pong"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn serves_post_body_roundtrip() {
        let h = test_server();
        let resp = raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(resp.ends_with("hello"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn path_params_over_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /jobs/17 HTTP/1.1\r\n\r\n");
        assert!(resp.ends_with("job=17"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn bad_requests_get_400() {
        let h = test_server();
        let resp = raw_request(h.addr(), "BOGUS /x HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn unknown_route_404s() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /missing HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let h = test_server();
        let addr = h.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n")))
            .collect();
        for t in handles {
            assert!(t.join().unwrap().ends_with("pong"));
        }
        assert!(h.served() >= 8);
        h.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_over_socket() {
        let config = ServerConfig {
            max_body: 64,
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        // Declared length over the limit: rejected from the header alone,
        // before any body bytes arrive.
        let resp = raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413 Payload Too Large"), "{resp}");
        // At the limit still works.
        let body = "x".repeat(64);
        let resp = raw_request(
            h.addr(),
            &format!("POST /echo HTTP/1.1\r\nContent-Length: 64\r\n\r\n{body}"),
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn slow_loris_hits_read_timeout() {
        let config = ServerConfig {
            read_timeout: Duration::from_millis(80),
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Dribble half a request line and stall: the server must cut us off
        // with 408 instead of holding the worker forever.
        s.write_all(b"GET /ping HT").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");
        h.shutdown();
    }

    #[test]
    fn capacity_overflow_sheds_with_retry_after() {
        let config = ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let addr = h.addr();
        // Occupy the single slot with a slow request...
        let hog = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...then get shed on the next connection.
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n");
        assert!(
            resp.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{resp}"
        );
        assert!(resp.contains("Retry-After: 1"), "{resp}");
        assert!(hog.join().unwrap().ends_with("done"));
        assert_eq!(h.shed(), 1);
        // Slot free again: normal service resumes.
        assert!(raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n").ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn access_log_and_pre_router_counters() {
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let config = ServerConfig {
            max_body: 64,
            read_timeout: Duration::from_millis(100),
            access_log: true,
            ..ServerConfig::default()
        };
        let h = Server::with_config(router, config)
            .spawn("127.0.0.1:0")
            .unwrap();

        raw_request(h.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        // 413: declared body over the limit.
        raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
        );
        // 408: stalled request.
        {
            let mut s = TcpStream::connect(h.addr()).unwrap();
            s.write_all(b"GET /pi").unwrap();
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
        }
        while h.served() < 3 {
            std::thread::sleep(Duration::from_millis(5));
        }
        h.shutdown();

        assert_eq!(
            obs.metrics
                .counter("ccp_httpd_rejected_total", &[("reason", "too_large")])
                .get(),
            1
        );
        assert_eq!(
            obs.metrics
                .counter("ccp_httpd_request_timeouts_total", &[])
                .get(),
            1
        );
        let log = obs.events.recent(10);
        assert_eq!(log.len(), 3, "{log:?}");
        assert!(log.iter().all(|e| e.kind == "http.access"));
        let ok = log
            .iter()
            .find(|e| e.field("status") == Some("200"))
            .expect("200 logged");
        assert_eq!(ok.field("method"), Some("GET"));
        assert_eq!(ok.field("path"), Some("/ping"));
        assert_eq!(ok.field("bytes"), Some("4"), "pong is 4 bytes");
        // Pre-router rejections appear with placeholder request lines.
        assert!(log.iter().any(|e| e.field("status") == Some("413")));
        assert!(log
            .iter()
            .any(|e| e.field("status") == Some("408") && e.field("path") == Some("-")));
    }

    #[test]
    fn access_log_off_by_default() {
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let h = Server::new(router).spawn("127.0.0.1:0").unwrap();
        raw_request(h.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        while h.served() < 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        h.shutdown();
        // Metrics still flow; the event log stays quiet.
        assert!(obs.metrics.series_count() > 0);
        assert_eq!(obs.events.len(), 0);
    }

    #[test]
    fn shed_connections_are_counted_in_obs() {
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let config = ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        };
        let h = Server::with_config(router, config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let addr = h.addr();
        let hog = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        hog.join().unwrap();
        h.shutdown();
        assert_eq!(obs.metrics.counter("ccp_httpd_shed_total", &[]).get(), 1);
    }

    #[test]
    fn graceful_shutdown_drains_inflight_requests() {
        let h = test_server();
        let addr = h.addr();
        let slow = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Shutdown while the request is mid-flight: it must still complete.
        h.shutdown();
        let resp = slow.join().unwrap();
        assert!(resp.ends_with("done"), "{resp}");
    }

    #[test]
    fn dispatch_without_socket() {
        // The webportal drives the router in-process for most tests.
        let mut router = Router::new();
        router.get("/x", |_| Response::text("y"));
        let mut req = Request::synthetic(Method::Get, "/x", b"");
        assert_eq!(router.dispatch(&mut req).body_str(), "y");
    }
}
