//! The TCP accept loop: one worker thread per connection (the portal's
//! traffic is a classroom, not a CDN), hardened against misbehaving
//! clients: per-connection read/write deadlines (slow-loris defence), a
//! request-size limit, a bounded in-flight connection count that sheds
//! excess load with `503 Retry-After`, and a graceful shutdown that stops
//! accepting but lets in-flight requests finish.

use crate::http::{HttpError, Request, Response, Status};
use crate::router::Router;
use parking_lot::Mutex;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hardening knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read deadline; a client that stalls mid-request past
    /// this gets `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Largest accepted request body; larger declared bodies get `413`
    /// without the bytes ever being buffered.
    pub max_body: usize,
    /// Connections handled concurrently; beyond this, new connections are
    /// shed immediately with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// How long [`ServerHandle::shutdown`] waits for in-flight requests to
    /// finish before giving up on them.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: crate::http::MAX_BODY,
            max_inflight: 64,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// A running server, returned by [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    inflight: Arc<AtomicUsize>,
    drain_grace: Duration,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections shed with 503 because the server was at capacity.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections currently being handled.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Stop accepting, join the accept thread, then wait (bounded by the
    /// configured drain grace) for in-flight requests to complete.
    pub fn shutdown(mut self) {
        self.stop_and_drain();
    }

    fn stop_and_drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.drain_grace;
        while self.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_drain();
    }
}

/// The HTTP server: a router behind a TCP listener.
pub struct Server {
    router: Arc<Mutex<Router>>,
    config: ServerConfig,
}

impl Default for Server {
    fn default() -> Self {
        Self::new(Router::new())
    }
}

impl Server {
    /// Wrap a router with default hardening limits.
    pub fn new(router: Router) -> Server {
        Server::with_config(router, ServerConfig::default())
    }

    /// Wrap a router with explicit limits.
    pub fn with_config(router: Router, config: ServerConfig) -> Server {
        Server { router: Arc::new(Mutex::new(router)), config }
    }

    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve on a background thread.
    pub fn spawn(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let inflight = Arc::new(AtomicUsize::new(0));
        let router = self.router;
        let config = self.config;
        let drain_grace = config.drain_grace;
        let stop2 = Arc::clone(&stop);
        let served2 = Arc::clone(&served);
        let shed2 = Arc::clone(&shed);
        let inflight2 = Arc::clone(&inflight);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if inflight2.load(Ordering::SeqCst) >= config.max_inflight {
                    shed_connection(stream, &config);
                    shed2.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Count before spawning so a burst cannot overshoot the cap.
                inflight2.fetch_add(1, Ordering::SeqCst);
                let router = Arc::clone(&router);
                let served = Arc::clone(&served2);
                let inflight = Arc::clone(&inflight2);
                let config = config.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &router, &config);
                    served.fetch_add(1, Ordering::Relaxed);
                    inflight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        Ok(ServerHandle {
            addr: local,
            stop,
            served,
            shed,
            inflight,
            drain_grace,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Refuse a connection at capacity: fixed response, no router dispatch, no
/// slot in the inflight budget. The half-close + drain dance avoids an RST
/// (closing with unread request bytes would wipe the client's receive
/// buffer before it sees the 503).
fn shed_connection(mut stream: TcpStream, config: &ServerConfig) {
    let write_timeout = config.write_timeout;
    std::thread::spawn(move || {
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = Response::error(Status::SERVICE_UNAVAILABLE, "server at capacity, retry shortly")
            .with_header("Retry-After", "1")
            .write_to(&mut stream);
        let _ = stream.shutdown(Shutdown::Write);
        let mut scratch = [0u8; 512];
        while let Ok(n) = stream.read(&mut scratch) {
            if n == 0 {
                break;
            }
        }
    });
}

fn handle_connection(stream: TcpStream, router: &Mutex<Router>, config: &ServerConfig) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let response = match Request::parse_with_limit(&mut reader, config.max_body) {
        Ok(mut req) => router.lock().dispatch(&mut req),
        Err(HttpError::TooLarge { declared, limit }) => Response::error(
            Status::PAYLOAD_TOO_LARGE,
            format!("body of {declared} bytes exceeds limit {limit}"),
        ),
        Err(HttpError::Timeout) => {
            Response::error(Status::REQUEST_TIMEOUT, "request not received in time")
        }
        Err(e) => Response::error(Status::BAD_REQUEST, e.to_string()),
    };
    let _ = response.write_to(&mut writer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use std::io::{Read, Write};

    fn raw_request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::text("pong"));
        router.post("/echo", |req| Response::text(req.body_str().to_string()));
        router.get("/jobs/:id", |req| {
            Response::text(format!("job={}", req.param("id").unwrap()))
        });
        router.get("/slow", |_| {
            std::thread::sleep(Duration::from_millis(300));
            Response::text("done")
        });
        router
    }

    fn test_server() -> ServerHandle {
        Server::new(test_router()).spawn("127.0.0.1:0").unwrap()
    }

    #[test]
    fn serves_get_over_real_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.ends_with("pong"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn serves_post_body_roundtrip() {
        let h = test_server();
        let resp = raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(resp.ends_with("hello"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn path_params_over_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /jobs/17 HTTP/1.1\r\n\r\n");
        assert!(resp.ends_with("job=17"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn bad_requests_get_400() {
        let h = test_server();
        let resp = raw_request(h.addr(), "BOGUS /x HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn unknown_route_404s() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /missing HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let h = test_server();
        let addr = h.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n"))
            })
            .collect();
        for t in handles {
            assert!(t.join().unwrap().ends_with("pong"));
        }
        assert!(h.served() >= 8);
        h.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_over_socket() {
        let config = ServerConfig { max_body: 64, ..ServerConfig::default() };
        let h = Server::with_config(test_router(), config).spawn("127.0.0.1:0").unwrap();
        // Declared length over the limit: rejected from the header alone,
        // before any body bytes arrive.
        let resp = raw_request(h.addr(), "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 413 Payload Too Large"), "{resp}");
        // At the limit still works.
        let body = "x".repeat(64);
        let resp = raw_request(
            h.addr(),
            &format!("POST /echo HTTP/1.1\r\nContent-Length: 64\r\n\r\n{body}"),
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn slow_loris_hits_read_timeout() {
        let config = ServerConfig { read_timeout: Duration::from_millis(80), ..ServerConfig::default() };
        let h = Server::with_config(test_router(), config).spawn("127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Dribble half a request line and stall: the server must cut us off
        // with 408 instead of holding the worker forever.
        s.write_all(b"GET /ping HT").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");
        h.shutdown();
    }

    #[test]
    fn capacity_overflow_sheds_with_retry_after() {
        let config = ServerConfig { max_inflight: 1, ..ServerConfig::default() };
        let h = Server::with_config(test_router(), config).spawn("127.0.0.1:0").unwrap();
        let addr = h.addr();
        // Occupy the single slot with a slow request...
        let hog = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...then get shed on the next connection.
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503 Service Unavailable"), "{resp}");
        assert!(resp.contains("Retry-After: 1"), "{resp}");
        assert!(hog.join().unwrap().ends_with("done"));
        assert_eq!(h.shed(), 1);
        // Slot free again: normal service resumes.
        assert!(raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n").ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_inflight_requests() {
        let h = test_server();
        let addr = h.addr();
        let slow = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Shutdown while the request is mid-flight: it must still complete.
        h.shutdown();
        let resp = slow.join().unwrap();
        assert!(resp.ends_with("done"), "{resp}");
    }

    #[test]
    fn dispatch_without_socket() {
        // The webportal drives the router in-process for most tests.
        let mut router = Router::new();
        router.get("/x", |_| Response::text("y"));
        let mut req = Request::synthetic(Method::Get, "/x", b"");
        assert_eq!(router.dispatch(&mut req).body_str(), "y");
    }
}
