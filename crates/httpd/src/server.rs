//! The front-end server: an epoll reactor with an M:N green-task worker
//! pool where the platform supports it (Linux x86_64/aarch64), falling
//! back to a thread-per-connection engine elsewhere. Both engines share
//! the same hardening: per-connection read/write deadlines (slow-loris
//! defence), a request-size limit, a bounded connection budget that
//! sheds excess load with `503 Retry-After`, and a graceful shutdown
//! that stops accepting but lets in-flight requests finish.

use crate::http::{HttpError, Request, Response, Status};
use crate::reactor;
use crate::router::Router;
use obs::Obs;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Which connection engine [`Server::spawn`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reactor where supported, threads elsewhere.
    #[default]
    Auto,
    /// Epoll reactor + worker pool; spawn fails on unsupported targets.
    Reactor,
    /// One OS thread per connection (the pre-reactor engine).
    Threads,
}

/// Hardening knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read deadline; a client that stalls mid-request past
    /// this gets `408 Request Timeout`.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Largest accepted request body; larger declared bodies get `413`
    /// without the bytes ever being buffered.
    pub max_body: usize,
    /// Connection budget: open connections beyond this are shed
    /// immediately with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// How long [`ServerHandle::shutdown`] waits for in-flight requests to
    /// finish before giving up on them.
    pub drain_grace: Duration,
    /// Emit one structured `http.access` event per completed request
    /// (method, path, status, bytes, duration) into the attached obs event
    /// log. Covers the pre-router rejections (408/413/400) that would
    /// otherwise vanish silently. No-op unless an obs is attached.
    pub access_log: bool,
    /// Engine selection; [`Engine::Auto`] picks the reactor when the
    /// platform has epoll.
    pub engine: Engine,
    /// Reactor worker threads (`0` = one per core, clamped to 2..=8).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: crate::http::MAX_BODY,
            max_inflight: 64,
            drain_grace: Duration::from_secs(5),
            access_log: false,
            engine: Engine::Auto,
            workers: 0,
        }
    }
}

/// Counters both engines publish and [`ServerHandle`] reads.
#[derive(Default)]
pub(crate) struct Shared {
    /// Shutdown requested.
    pub(crate) stop: AtomicBool,
    /// Responses completed (everything except shed 503s).
    pub(crate) served: AtomicU64,
    /// Connections shed with 503 at the capacity budget.
    pub(crate) shed: AtomicU64,
    /// Requests currently mid-flight.
    pub(crate) active: AtomicUsize,
    /// Open (admitted) connections.
    pub(crate) open: AtomicUsize,
}

enum EngineRt {
    Threads {
        accept: Option<JoinHandle<()>>,
    },
    Reactor {
        core: Arc<reactor::Core>,
        thread: Option<JoinHandle<()>>,
    },
}

/// A running server, returned by [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    drain_grace: Duration,
    engine: EngineRt,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections shed with 503 because the server was at capacity.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Requests currently being handled.
    pub fn inflight(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Open connections (idle keep-alives included).
    pub fn open_connections(&self) -> usize {
        self.shared.open.load(Ordering::SeqCst)
    }

    /// Stop accepting, then wait (bounded by the configured drain grace)
    /// for in-flight requests to complete. Never needs to reach the
    /// listener over the network: the reactor is woken by its eventfd and
    /// the thread engine polls its accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_drain();
    }

    fn stop_and_drain(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        match &mut self.engine {
            EngineRt::Threads { accept } => {
                if let Some(t) = accept.take() {
                    let _ = t.join();
                }
                let deadline = Instant::now() + self.drain_grace;
                while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            EngineRt::Reactor { core, thread } => {
                core.wake();
                // The reactor performs the bounded drain before exiting.
                if let Some(t) = thread.take() {
                    let _ = t.join();
                }
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_drain();
    }
}

/// The HTTP server: a router behind a TCP listener.
pub struct Server {
    router: Arc<Router>,
    config: ServerConfig,
    obs: Option<Arc<Obs>>,
}

impl Default for Server {
    fn default() -> Self {
        Self::new(Router::new())
    }
}

impl Server {
    /// Wrap a router with default hardening limits. If the router carries an
    /// obs domain, the server-level counters (sheds, timeouts, inflight)
    /// land there too.
    pub fn new(router: Router) -> Server {
        Server::with_config(router, ServerConfig::default())
    }

    /// Wrap a router with explicit limits.
    pub fn with_config(router: Router, config: ServerConfig) -> Server {
        let obs = router.obs().cloned();
        let mut server = Server {
            router: Arc::new(router),
            config,
            obs: None,
        };
        if let Some(obs) = obs {
            server = server.with_obs(obs);
        }
        server
    }

    /// Attach (or replace) the telemetry domain for connection-level
    /// counters and the access log (builder style). Families are
    /// registered eagerly so they appear in the exposition (at zero)
    /// from the moment the server exists, not after the first event.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Server {
        let m = &obs.metrics;
        m.describe(
            "ccp_httpd_shed_total",
            "connections shed at capacity with 503",
        );
        m.describe(
            "ccp_httpd_request_timeouts_total",
            "requests cut off by the read deadline",
        );
        m.describe(
            "ccp_httpd_rejected_total",
            "requests rejected before routing, by reason",
        );
        m.describe(
            "ccp_httpd_open_connections",
            "connections currently open (idle keep-alives included)",
        );
        m.describe(
            "ccp_httpd_keepalive_reuses_total",
            "requests served on an already-open connection",
        );
        m.describe(
            "ccp_httpd_reactor_wakeups_total",
            "reactor epoll wakeups that delivered at least one event",
        );
        m.describe(
            "ccp_httpd_tasks_parked",
            "connection tasks parked waiting for readiness",
        );
        let _ = m.counter("ccp_httpd_shed_total", &[]);
        let _ = m.counter("ccp_httpd_request_timeouts_total", &[]);
        let _ = m.counter("ccp_httpd_rejected_total", &[("reason", "too_large")]);
        let _ = m.counter("ccp_httpd_rejected_total", &[("reason", "bad_request")]);
        let _ = m.gauge("ccp_httpd_open_connections", &[]);
        let _ = m.counter("ccp_httpd_keepalive_reuses_total", &[]);
        let _ = m.counter("ccp_httpd_reactor_wakeups_total", &[]);
        let _ = m.gauge("ccp_httpd_tasks_parked", &[]);
        self.obs = Some(obs);
        self
    }

    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve in the background.
    pub fn spawn(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared::default());
        let use_reactor = match self.config.engine {
            Engine::Threads => false,
            Engine::Reactor => true,
            Engine::Auto => crate::sys::SUPPORTED,
        };
        if use_reactor {
            let rt = reactor::spawn(
                listener,
                self.config.clone(),
                Arc::clone(&self.router),
                self.obs.clone(),
                Arc::clone(&shared),
            )?;
            return Ok(ServerHandle {
                addr: local,
                shared,
                drain_grace: self.config.drain_grace,
                engine: EngineRt::Reactor {
                    core: rt.core,
                    thread: rt.thread,
                },
            });
        }
        let router = self.router;
        let config = self.config;
        let obs = self.obs;
        let drain_grace = config.drain_grace;
        let shared2 = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            // Nonblocking accept so shutdown needs no network nudge: the
            // loop just observes the stop flag on its next poll tick.
            let _ = listener.set_nonblocking(true);
            loop {
                if shared2.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                };
                // accept() on Linux does not inherit O_NONBLOCK, but be
                // explicit: the handler uses blocking reads + deadlines.
                let _ = stream.set_nonblocking(false);
                if shared2.active.load(Ordering::SeqCst) >= config.max_inflight {
                    shed_connection(stream, &config, obs.as_deref());
                    shared2.shed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Count before spawning so a burst cannot overshoot the cap.
                let now_inflight = shared2.active.fetch_add(1, Ordering::SeqCst) + 1;
                shared2.open.fetch_add(1, Ordering::SeqCst);
                if let Some(o) = &obs {
                    o.metrics
                        .gauge("ccp_httpd_inflight", &[])
                        .set(now_inflight as i64);
                    o.metrics.gauge("ccp_httpd_open_connections", &[]).add(1);
                }
                let router = Arc::clone(&router);
                let shared = Arc::clone(&shared2);
                let config = config.clone();
                let obs = obs.clone();
                std::thread::spawn(move || {
                    handle_connection(stream, &router, &config, obs.as_deref());
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    let left = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                    shared.open.fetch_sub(1, Ordering::SeqCst);
                    if let Some(o) = &obs {
                        o.metrics.gauge("ccp_httpd_inflight", &[]).set(left as i64);
                        o.metrics.gauge("ccp_httpd_open_connections", &[]).sub(1);
                    }
                });
            }
        });
        Ok(ServerHandle {
            addr: local,
            shared,
            drain_grace,
            engine: EngineRt::Threads {
                accept: Some(accept_thread),
            },
        })
    }
}

/// Refuse a connection at capacity: fixed response, no router dispatch, no
/// slot in the inflight budget. The half-close + drain dance avoids an RST
/// (closing with unread request bytes would wipe the client's receive
/// buffer before it sees the 503).
fn shed_connection(mut stream: TcpStream, config: &ServerConfig, obs: Option<&Obs>) {
    if let Some(o) = obs {
        o.metrics.counter("ccp_httpd_shed_total", &[]).inc();
        if config.access_log {
            o.events.record(
                epoch_secs(),
                "http.access",
                &[
                    ("method", "-"),
                    ("path", "-"),
                    ("status", "503"),
                    ("bytes", "0"),
                    ("duration_us", "0"),
                ],
            );
        }
    }
    let write_timeout = config.write_timeout;
    std::thread::spawn(move || {
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = Response::error(
            Status::SERVICE_UNAVAILABLE,
            "server at capacity, retry shortly",
        )
        .with_header("Retry-After", "1")
        .write_to(&mut stream);
        let _ = stream.shutdown(Shutdown::Write);
        let mut scratch = [0u8; 512];
        while let Ok(n) = stream.read(&mut scratch) {
            if n == 0 {
                break;
            }
        }
    });
}

fn handle_connection(stream: TcpStream, router: &Router, config: &ServerConfig, obs: Option<&Obs>) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let mut request_line = (String::from("-"), String::from("-"));
    let response = match Request::parse_with_limit(&mut reader, config.max_body) {
        Ok(mut req) => {
            request_line = (req.method.to_string(), req.path.clone());
            router.dispatch(&mut req)
        }
        Err(HttpError::TooLarge { declared, limit }) => {
            if let Some(o) = obs {
                o.metrics
                    .counter("ccp_httpd_rejected_total", &[("reason", "too_large")])
                    .inc();
            }
            Response::error(
                Status::PAYLOAD_TOO_LARGE,
                format!("body of {declared} bytes exceeds limit {limit}"),
            )
        }
        Err(HttpError::Timeout) => {
            if let Some(o) = obs {
                o.metrics
                    .counter("ccp_httpd_request_timeouts_total", &[])
                    .inc();
            }
            Response::error(Status::REQUEST_TIMEOUT, "request not received in time")
        }
        Err(e) => {
            if let Some(o) = obs {
                o.metrics
                    .counter("ccp_httpd_rejected_total", &[("reason", "bad_request")])
                    .inc();
            }
            Response::error(Status::BAD_REQUEST, e.to_string())
        }
    };
    let _ = response.write_to(&mut writer);
    if let Some(o) = obs {
        if config.access_log {
            o.events.record(
                epoch_secs(),
                "http.access",
                &[
                    ("method", &request_line.0),
                    ("path", &request_line.1),
                    ("status", &response.status.0.to_string()),
                    ("bytes", &response.body.len().to_string()),
                    (
                        "duration_us",
                        &(started.elapsed().as_micros() as u64).to_string(),
                    ),
                ],
            );
        }
    }
}

pub(crate) fn epoch_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::test_support::{raw_request, read_response};
    use std::io::{Read, Write};

    fn test_router() -> Router {
        let mut router = Router::new();
        router.get("/ping", |_| Response::text("pong"));
        router.post("/echo", |req| Response::text(req.body_str().to_string()));
        router.get("/jobs/:id", |req| {
            Response::text(format!("job={}", req.param("id").unwrap()))
        });
        router.get("/slow", |_| {
            std::thread::sleep(Duration::from_millis(300));
            Response::text("done")
        });
        router
    }

    fn test_server() -> ServerHandle {
        Server::new(test_router()).spawn("127.0.0.1:0").unwrap()
    }

    fn engines() -> Vec<Engine> {
        if crate::sys::SUPPORTED {
            vec![Engine::Reactor, Engine::Threads]
        } else {
            vec![Engine::Threads]
        }
    }

    #[test]
    fn serves_get_over_real_socket() {
        // Both engines answer the same on-the-wire traffic.
        for engine in engines() {
            let config = ServerConfig {
                engine,
                ..ServerConfig::default()
            };
            let h = Server::with_config(test_router(), config)
                .spawn("127.0.0.1:0")
                .unwrap();
            let resp = raw_request(h.addr(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{engine:?}: {resp}");
            assert!(resp.ends_with("pong"), "{engine:?}: {resp}");
            h.shutdown();
        }
    }

    #[test]
    fn serves_post_body_roundtrip() {
        let h = test_server();
        let resp = raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(resp.ends_with("hello"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn path_params_over_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /jobs/17 HTTP/1.1\r\n\r\n");
        assert!(resp.ends_with("job=17"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn bad_requests_get_400() {
        let h = test_server();
        let resp = raw_request(h.addr(), "BOGUS /x HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn unknown_route_404s() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /missing HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let h = test_server();
        let addr = h.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n")))
            .collect();
        for t in handles {
            assert!(t.join().unwrap().ends_with("pong"));
        }
        assert!(h.served() >= 8);
        h.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_over_socket() {
        let config = ServerConfig {
            max_body: 64,
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        // Declared length over the limit: rejected from the header alone,
        // before any body bytes arrive.
        let resp = raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413 Payload Too Large"), "{resp}");
        // At the limit still works.
        let body = "x".repeat(64);
        let resp = raw_request(
            h.addr(),
            &format!("POST /echo HTTP/1.1\r\nContent-Length: 64\r\n\r\n{body}"),
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn slow_loris_hits_read_timeout() {
        let config = ServerConfig {
            read_timeout: Duration::from_millis(80),
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Dribble half a request line and stall: the server must cut us off
        // with 408 instead of holding the worker forever.
        s.write_all(b"GET /ping HT").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");
        h.shutdown();
    }

    #[test]
    fn slow_loris_partial_headers_hit_read_timeout() {
        // Same attack, but stalled mid-headers with the request line
        // complete: the incremental parser must not treat a valid prefix
        // as a request, and the deadline must still fire.
        let config = ServerConfig {
            read_timeout: Duration::from_millis(80),
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\nHost: t\r\nX-Dribble: ye")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");
        h.shutdown();
    }

    #[test]
    fn keep_alive_reuses_connection() {
        if !crate::sys::SUPPORTED {
            return; // keep-alive is a reactor feature
        }
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let h = Server::new(router).spawn("127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for i in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let resp = read_response(&mut s);
            assert!(resp.starts_with("HTTP/1.1 200"), "request {i}: {resp}");
            assert!(
                resp.contains("Connection: keep-alive"),
                "request {i}: {resp}"
            );
            assert!(resp.ends_with("pong"), "request {i}: {resp}");
        }
        // Final request without keep-alive: server closes after it.
        s.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("Connection: close"), "{rest}");
        assert!(rest.ends_with("pong"), "{rest}");
        assert_eq!(h.served(), 4);
        if crate::sys::SUPPORTED {
            assert_eq!(
                obs.metrics
                    .counter("ccp_httpd_keepalive_reuses_total", &[])
                    .get(),
                3,
                "three requests rode an already-open connection"
            );
        }
        h.shutdown();
    }

    #[test]
    fn pipelined_second_request_in_buffer() {
        if !crate::sys::SUPPORTED {
            return; // pipelining needs the reactor's incremental parser
        }
        let h = test_server();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Two requests in one write: the second is already buffered when
        // the first response goes out.
        s.write_all(
            b"GET /ping HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
              GET /jobs/9 HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        let first = read_response(&mut s);
        assert!(first.ends_with("pong"), "{first}");
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.ends_with("job=9"), "{rest}");
        assert_eq!(h.served(), 2);
        h.shutdown();
    }

    #[test]
    fn capacity_overflow_sheds_with_retry_after() {
        let config = ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        };
        let h = Server::with_config(test_router(), config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let addr = h.addr();
        // Occupy the single slot with a slow request...
        let hog = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...then get shed on the next connection.
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n");
        assert!(
            resp.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{resp}"
        );
        assert!(resp.contains("Retry-After: 1"), "{resp}");
        assert!(hog.join().unwrap().ends_with("done"));
        assert_eq!(h.shed(), 1);
        // Slot free again: normal service resumes.
        assert!(raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n").ends_with("pong"));
        h.shutdown();
    }

    #[test]
    fn access_log_and_pre_router_counters() {
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let config = ServerConfig {
            max_body: 64,
            read_timeout: Duration::from_millis(100),
            access_log: true,
            ..ServerConfig::default()
        };
        let h = Server::with_config(router, config)
            .spawn("127.0.0.1:0")
            .unwrap();

        raw_request(h.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        // 413: declared body over the limit.
        raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
        );
        // 408: stalled request.
        {
            let mut s = TcpStream::connect(h.addr()).unwrap();
            s.write_all(b"GET /pi").unwrap();
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
        }
        while h.served() < 3 {
            std::thread::sleep(Duration::from_millis(5));
        }
        h.shutdown();

        assert_eq!(
            obs.metrics
                .counter("ccp_httpd_rejected_total", &[("reason", "too_large")])
                .get(),
            1
        );
        assert_eq!(
            obs.metrics
                .counter("ccp_httpd_request_timeouts_total", &[])
                .get(),
            1
        );
        let log = obs.events.recent(10);
        assert_eq!(log.len(), 3, "{log:?}");
        assert!(log.iter().all(|e| e.kind == "http.access"));
        let ok = log
            .iter()
            .find(|e| e.field("status") == Some("200"))
            .expect("200 logged");
        assert_eq!(ok.field("method"), Some("GET"));
        assert_eq!(ok.field("path"), Some("/ping"));
        assert_eq!(ok.field("bytes"), Some("4"), "pong is 4 bytes");
        // Pre-router rejections appear with placeholder request lines.
        assert!(log.iter().any(|e| e.field("status") == Some("413")));
        assert!(log
            .iter()
            .any(|e| e.field("status") == Some("408") && e.field("path") == Some("-")));
    }

    #[test]
    fn access_log_off_by_default() {
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let h = Server::new(router).spawn("127.0.0.1:0").unwrap();
        raw_request(h.addr(), "GET /ping HTTP/1.1\r\n\r\n");
        while h.served() < 1 {
            std::thread::sleep(Duration::from_millis(5));
        }
        h.shutdown();
        // Metrics still flow; the event log stays quiet.
        assert!(obs.metrics.series_count() > 0);
        assert_eq!(obs.events.len(), 0);
    }

    #[test]
    fn shed_connections_are_counted_in_obs() {
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let config = ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        };
        let h = Server::with_config(router, config)
            .spawn("127.0.0.1:0")
            .unwrap();
        let addr = h.addr();
        let hog = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        hog.join().unwrap();
        h.shutdown();
        assert_eq!(obs.metrics.counter("ccp_httpd_shed_total", &[]).get(), 1);
    }

    #[test]
    fn graceful_shutdown_drains_inflight_requests() {
        let h = test_server();
        let addr = h.addr();
        let slow = std::thread::spawn(move || raw_request(addr, "GET /slow HTTP/1.1\r\n\r\n"));
        while h.inflight() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Shutdown while the request is mid-flight: it must still complete.
        h.shutdown();
        let resp = slow.join().unwrap();
        assert!(resp.ends_with("done"), "{resp}");
    }

    #[test]
    fn shutdown_never_needs_the_listener_port() {
        // The old engine nudged its own blocking accept with a TCP
        // connect to the listener — which hung when the port was
        // unreachable. Both engines must now shut down promptly with no
        // traffic at all.
        for engine in engines() {
            let config = ServerConfig {
                engine,
                ..ServerConfig::default()
            };
            let h = Server::with_config(test_router(), config)
                .spawn("127.0.0.1:0")
                .unwrap();
            let started = Instant::now();
            h.shutdown();
            assert!(
                started.elapsed() < Duration::from_secs(2),
                "{engine:?} shutdown took {:?}",
                started.elapsed()
            );
        }
    }

    #[test]
    fn open_connections_tracks_idle_keepalives() {
        if !crate::sys::SUPPORTED {
            return;
        }
        let obs = Arc::new(Obs::new());
        let mut router = test_router();
        router.set_obs(Arc::clone(&obs));
        let h = Server::new(router).spawn("127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let resp = read_response(&mut s);
        assert!(resp.ends_with("pong"), "{resp}");
        // Request done, connection idle: still open, no longer inflight.
        // (The worker decrements inflight just after the final flush, so
        // allow it a beat.)
        while h.inflight() != 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.open_connections(), 1);
        assert_eq!(
            obs.metrics.gauge("ccp_httpd_open_connections", &[]).get(),
            1
        );
        drop(s);
        h.shutdown();
    }

    #[test]
    fn dispatch_without_socket() {
        // The webportal drives the router in-process for most tests.
        let mut router = Router::new();
        router.get("/x", |_| Response::text("y"));
        let mut req = Request::synthetic(Method::Get, "/x", b"");
        assert_eq!(router.dispatch(&mut req).body_str(), "y");
    }
}
