//! The TCP accept loop: one worker thread per connection (the portal's
//! traffic is a classroom, not a CDN), with graceful shutdown.

use crate::http::{Request, Response, Status};
use crate::router::Router;
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server, returned by [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// The HTTP server: a router behind a TCP listener.
pub struct Server {
    router: Arc<Mutex<Router>>,
}

impl Default for Server {
    fn default() -> Self {
        Self::new(Router::new())
    }
}

impl Server {
    /// Wrap a router.
    pub fn new(router: Router) -> Server {
        Server { router: Arc::new(Mutex::new(router)) }
    }

    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve on a background thread.
    pub fn spawn(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let router = self.router;
        let stop2 = Arc::clone(&stop);
        let served2 = Arc::clone(&served);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let router = Arc::clone(&router);
                let served = Arc::clone(&served2);
                std::thread::spawn(move || {
                    handle_connection(stream, &router);
                    served.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        Ok(ServerHandle { addr: local, stop, served, accept_thread: Some(accept_thread) })
    }
}

fn handle_connection(stream: TcpStream, router: &Mutex<Router>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let response = match Request::parse(&mut reader) {
        Ok(mut req) => router.lock().dispatch(&mut req),
        Err(e) => Response::error(Status::BAD_REQUEST, e.to_string()),
    };
    let _ = response.write_to(&mut writer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use std::io::{Read, Write};

    fn raw_request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_server() -> ServerHandle {
        let mut router = Router::new();
        router.get("/ping", |_| Response::text("pong"));
        router.post("/echo", |req| Response::text(req.body_str().to_string()));
        router.get("/jobs/:id", |req| {
            Response::text(format!("job={}", req.param("id").unwrap()))
        });
        Server::new(router).spawn("127.0.0.1:0").unwrap()
    }

    #[test]
    fn serves_get_over_real_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.ends_with("pong"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn serves_post_body_roundtrip() {
        let h = test_server();
        let resp = raw_request(
            h.addr(),
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(resp.ends_with("hello"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn path_params_over_socket() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /jobs/17 HTTP/1.1\r\n\r\n");
        assert!(resp.ends_with("job=17"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn bad_requests_get_400() {
        let h = test_server();
        let resp = raw_request(h.addr(), "BOGUS /x HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn unknown_route_404s() {
        let h = test_server();
        let resp = raw_request(h.addr(), "GET /missing HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        h.shutdown();
    }

    #[test]
    fn concurrent_requests() {
        let h = test_server();
        let addr = h.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || raw_request(addr, "GET /ping HTTP/1.1\r\n\r\n"))
            })
            .collect();
        for t in handles {
            assert!(t.join().unwrap().ends_with("pong"));
        }
        assert!(h.served() >= 8);
        h.shutdown();
    }

    #[test]
    fn dispatch_without_socket() {
        // The webportal drives the router in-process for most tests.
        let mut router = Router::new();
        router.get("/x", |_| Response::text("y"));
        let mut req = Request::synthetic(Method::Get, "/x", b"");
        assert_eq!(router.dispatch(&mut req).body_str(), "y");
    }
}
