//! A hashed timer wheel for per-connection deadlines.
//!
//! The reactor arms one deadline per parked connection (read deadline
//! while waiting for request bytes, write deadline while flushing a
//! response). Deadlines are coarse — tens of milliseconds of slack is
//! fine for a slow-loris cutoff — so a fixed-slot wheel beats a heap: arm
//! is O(1) push, cancel is free (entries carry a sequence number and
//! stale ones are skipped on expiry), and each reactor tick drains only
//! the slots the clock hand passed over.

/// One armed deadline. `seq` is the connection's park sequence number at
/// arm time: every park/unpark bumps the sequence, so an entry whose
/// `seq` no longer matches is a cancelled timer and expires into nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Slab token of the parked connection.
    pub token: usize,
    /// Park sequence the deadline belongs to.
    pub seq: u64,
    /// Absolute deadline, in wheel-clock milliseconds.
    pub at_ms: u64,
}

/// The wheel: `slots` rings of entries, `tick_ms` milliseconds per slot.
/// Entries further out than one revolution stay in their slot and are
/// re-examined (their `at_ms` keeps them alive) each pass — deadlines
/// here are seconds against a multi-second revolution, so overflow
/// re-queues are rare.
pub struct TimerWheel {
    slots: Vec<Vec<Deadline>>,
    tick_ms: u64,
    /// The last slot index the hand fully drained.
    cursor: u64,
    /// Entries currently armed (stale ones included until swept).
    armed: usize,
}

impl TimerWheel {
    /// A wheel with `slots` slots of `tick_ms` granularity.
    pub fn new(slots: usize, tick_ms: u64) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            tick_ms: tick_ms.max(1),
            cursor: 0,
            armed: 0,
        }
    }

    /// Arm a deadline. `now_ms` only guards against arming in the past.
    pub fn arm(&mut self, now_ms: u64, deadline: Deadline) {
        let at = deadline.at_ms.max(now_ms + 1);
        // Ceiling tick: the hand must reach the slot *at or after* the
        // deadline; flooring would park the entry one tick behind the
        // hand and cost a whole revolution.
        let tick = at.div_ceil(self.tick_ms);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Deadline {
            at_ms: at,
            ..deadline
        });
        self.armed += 1;
    }

    /// Advance the hand to `now_ms`, appending every due entry to `out`.
    /// Stale (cancelled) entries are the caller's problem to recognise by
    /// sequence number; the wheel just delivers what expired.
    pub fn advance(&mut self, now_ms: u64, out: &mut Vec<Deadline>) {
        let target = now_ms / self.tick_ms;
        let n = self.slots.len() as u64;
        // Sweep at most one full revolution — beyond that every slot has
        // already been examined once this call.
        let first = self.cursor + 1;
        let last = target.min(self.cursor + n);
        for tick in first..=last {
            let slot = (tick % n) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].at_ms <= now_ms {
                    out.push(entries.swap_remove(i));
                    self.armed -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = self.cursor.max(target);
    }

    /// Milliseconds until the next armed deadline, or `None` when empty.
    /// An O(slots + entries) scan — the reactor calls this once per loop
    /// to size its poll timeout, and both factors are small.
    pub fn next_deadline_in(&self, now_ms: u64) -> Option<u64> {
        self.slots
            .iter()
            .flatten()
            .map(|d| d.at_ms.saturating_sub(now_ms))
            .min()
    }

    /// Armed entries, stale included (sizes the expiry scratch buffer).
    pub fn armed(&self) -> usize {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(token: usize, seq: u64, at_ms: u64) -> Deadline {
        Deadline { token, seq, at_ms }
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new(16, 10);
        w.arm(0, d(1, 1, 95));
        let mut out = Vec::new();
        w.advance(90, &mut out);
        assert!(out.is_empty(), "too early");
        w.advance(100, &mut out);
        assert_eq!(out, vec![d(1, 1, 95)]);
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn past_deadlines_clamp_forward() {
        let mut w = TimerWheel::new(16, 10);
        w.advance(500, &mut Vec::new());
        w.arm(500, d(2, 7, 100)); // already past: clamps to now+1
        let mut out = Vec::new();
        w.advance(520, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 2);
    }

    #[test]
    fn entries_beyond_one_revolution_survive() {
        let mut w = TimerWheel::new(8, 10); // 80ms revolution
        w.arm(0, d(3, 1, 250));
        let mut out = Vec::new();
        w.advance(100, &mut out);
        w.advance(200, &mut out);
        assert!(out.is_empty(), "three revolutions early");
        w.advance(260, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn many_deadlines_in_one_slot() {
        let mut w = TimerWheel::new(4, 10);
        for t in 0..10 {
            w.arm(0, d(t, 1, 40 + (t as u64 % 2) * 40)); // 40ms and 80ms, same slot
        }
        let mut out = Vec::new();
        w.advance(45, &mut out);
        assert_eq!(out.len(), 5, "only the 40ms half fired");
        out.clear();
        w.advance(85, &mut out);
        assert_eq!(out.len(), 5, "the 80ms half fired a revolution later");
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn next_deadline_sizes_poll_timeout() {
        let mut w = TimerWheel::new(16, 10);
        assert_eq!(w.next_deadline_in(0), None);
        w.arm(0, d(1, 1, 300));
        w.arm(0, d(2, 1, 120));
        assert_eq!(w.next_deadline_in(100), Some(20));
        assert_eq!(w.next_deadline_in(150), Some(0), "overdue clamps to zero");
    }
}
