//! Query strings, urlencoded form bodies and cookies.

use std::collections::BTreeMap;

/// Percent-decode a urlencoded component (`+` means space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 <= bytes.len() - 1 + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a component for safe embedding in URLs and forms.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Parse `a=1&b=two` into a map (later keys win; keys without `=` map to "").
pub fn parse_query(q: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for pair in q.split('&') {
        if pair.is_empty() {
            continue;
        }
        match pair.split_once('=') {
            Some((k, v)) => map.insert(url_decode(k), url_decode(v)),
            None => map.insert(url_decode(pair), String::new()),
        };
    }
    map
}

/// Parse a `Cookie:` header into name -> value.
pub fn parse_cookies(header: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for part in header.split(';') {
        if let Some((k, v)) = part.split_once('=') {
            map.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_basics() {
        assert_eq!(url_decode("a+b"), "a b");
        assert_eq!(url_decode("caf%C3%A9"), "café");
        assert_eq!(url_decode("%2Fhome%2Falice"), "/home/alice");
        // Malformed escapes pass through.
        assert_eq!(url_decode("100%"), "100%");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in [
            "hello world",
            "/home/alice/lab 1.mini",
            "a=b&c=d",
            "naïve ☃",
        ] {
            assert_eq!(url_decode(&url_encode(s)), s, "{s}");
        }
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("path=%2Fhome&sort=name&flag&x=1&x=2");
        assert_eq!(q.get("path").map(String::as_str), Some("/home"));
        assert_eq!(q.get("sort").map(String::as_str), Some("name"));
        assert_eq!(q.get("flag").map(String::as_str), Some(""));
        assert_eq!(q.get("x").map(String::as_str), Some("2"), "later key wins");
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn cookie_parsing() {
        let c = parse_cookies("sid=abc123; theme=dark;broken; x=1");
        assert_eq!(c.get("sid").map(String::as_str), Some("abc123"));
        assert_eq!(c.get("theme").map(String::as_str), Some("dark"));
        assert_eq!(c.get("x").map(String::as_str), Some("1"));
        assert!(!c.contains_key("broken"));
    }
}

/// One part of a `multipart/form-data` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipartPart {
    /// The `name` from Content-Disposition.
    pub name: String,
    /// The `filename`, when the part is a file input.
    pub filename: Option<String>,
    /// Part body bytes.
    pub data: Vec<u8>,
}

/// Extract the boundary token from a Content-Type header value like
/// `multipart/form-data; boundary=----x`.
pub fn multipart_boundary(content_type: &str) -> Option<String> {
    let (kind, rest) = content_type.split_once(';')?;
    if !kind.trim().eq_ignore_ascii_case("multipart/form-data") {
        return None;
    }
    for param in rest.split(';') {
        let (k, v) = param.split_once('=')?;
        if k.trim().eq_ignore_ascii_case("boundary") {
            return Some(v.trim().trim_matches('"').to_string());
        }
    }
    None
}

/// Parse a multipart/form-data body ("the download, and upload of multiple
/// files", §IV). Tolerates both `\r\n` and bare `\n` line endings.
pub fn parse_multipart(body: &[u8], boundary: &str) -> Vec<MultipartPart> {
    let delim = format!("--{boundary}");
    let mut parts = Vec::new();
    // Split on the delimiter; each chunk between delimiters is a part.
    let body_str_safe = body; // raw bytes; search manually
    let delim_bytes = delim.as_bytes();
    let mut positions = Vec::new();
    let mut i = 0;
    while i + delim_bytes.len() <= body_str_safe.len() {
        if &body_str_safe[i..i + delim_bytes.len()] == delim_bytes {
            positions.push(i);
            i += delim_bytes.len();
        } else {
            i += 1;
        }
    }
    for w in positions.windows(2) {
        let chunk = &body[w[0] + delim_bytes.len()..w[1]];
        // Terminal marker "--" means no more parts.
        if chunk.starts_with(b"--") {
            break;
        }
        // Strip one leading newline, split headers from data at the blank line.
        let chunk = strip_leading_newline(chunk);
        let Some((head, data)) = split_blank_line(chunk) else {
            continue;
        };
        let headers = String::from_utf8_lossy(head);
        let mut name = String::new();
        let mut filename = None;
        for line in headers.lines() {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("content-disposition:") {
                for param in line.split(';') {
                    let param = param.trim();
                    if let Some(v) = param.strip_prefix("name=") {
                        name = v.trim_matches('"').to_string();
                    } else if let Some(v) = param.strip_prefix("filename=") {
                        filename = Some(v.trim_matches('"').to_string());
                    }
                }
            }
        }
        // Data ends before the newline that precedes the next delimiter.
        let data = strip_trailing_newline(data);
        parts.push(MultipartPart {
            name,
            filename,
            data: data.to_vec(),
        });
    }
    parts
}

fn strip_leading_newline(b: &[u8]) -> &[u8] {
    if b.starts_with(b"\r\n") {
        &b[2..]
    } else if b.starts_with(b"\n") {
        &b[1..]
    } else {
        b
    }
}

fn strip_trailing_newline(b: &[u8]) -> &[u8] {
    if b.ends_with(b"\r\n") {
        &b[..b.len() - 2]
    } else if b.ends_with(b"\n") {
        &b[..b.len() - 1]
    } else {
        b
    }
}

fn split_blank_line(b: &[u8]) -> Option<(&[u8], &[u8])> {
    for (i, w) in b.windows(4).enumerate() {
        if w == b"\r\n\r\n" {
            return Some((&b[..i], &b[i + 4..]));
        }
    }
    for (i, w) in b.windows(2).enumerate() {
        if w == b"\n\n" {
            return Some((&b[..i], &b[i + 2..]));
        }
    }
    None
}

#[cfg(test)]
mod multipart_tests {
    use super::*;

    fn sample_body(boundary: &str) -> Vec<u8> {
        format!(
            "--{b}\r\nContent-Disposition: form-data; name=\"note\"\r\n\r\njust text\r\n--{b}\r\nContent-Disposition: form-data; name=\"file1\"; filename=\"a.mini\"\r\nContent-Type: text/plain\r\n\r\nfn main() {{ }}\r\n--{b}\r\nContent-Disposition: form-data; name=\"file2\"; filename=\"b.txt\"\r\n\r\nbytes\x00here\r\n--{b}--\r\n",
            b = boundary
        )
        .into_bytes()
    }

    #[test]
    fn boundary_extraction() {
        assert_eq!(
            multipart_boundary("multipart/form-data; boundary=----WebKit123"),
            Some("----WebKit123".to_string())
        );
        assert_eq!(
            multipart_boundary("multipart/form-data; boundary=\"quoted\""),
            Some("quoted".to_string())
        );
        assert_eq!(multipart_boundary("application/json"), None);
        assert_eq!(multipart_boundary("multipart/form-data"), None);
    }

    #[test]
    fn parses_fields_and_files() {
        let body = sample_body("XYZ");
        let parts = parse_multipart(&body, "XYZ");
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].name, "note");
        assert_eq!(parts[0].filename, None);
        assert_eq!(parts[0].data, b"just text");
        assert_eq!(parts[1].filename.as_deref(), Some("a.mini"));
        assert_eq!(parts[1].data, b"fn main() { }");
        assert_eq!(parts[2].data, b"bytes\x00here");
    }

    #[test]
    fn tolerates_bare_newlines() {
        let body = b"--B\nContent-Disposition: form-data; name=\"x\"\n\nvalue\n--B--\n".to_vec();
        let parts = parse_multipart(&body, "B");
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].data, b"value");
    }

    #[test]
    fn empty_and_garbage_bodies() {
        assert!(parse_multipart(b"", "B").is_empty());
        assert!(parse_multipart(b"no delimiters here", "B").is_empty());
        // Missing blank line in a part: part skipped, no panic.
        let body = b"--B\nheader-without-blank\n--B--".to_vec();
        assert!(parse_multipart(&body, "B").is_empty());
    }
}
