//! HTTP/1.1 message types, parsing and serialization.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Request methods the portal uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
    /// HEAD
    Head,
}

impl Method {
    /// Parse from the request line.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        })
    }
}

/// Response status codes used by the portal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 201
    pub const CREATED: Status = Status(201);
    /// 204
    pub const NO_CONTENT: Status = Status(204);
    /// 302
    pub const FOUND: Status = Status(302);
    /// 400
    pub const BAD_REQUEST: Status = Status(400);
    /// 401
    pub const UNAUTHORIZED: Status = Status(401);
    /// 403
    pub const FORBIDDEN: Status = Status(403);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 405
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    /// 408
    pub const REQUEST_TIMEOUT: Status = Status(408);
    /// 409
    pub const CONFLICT: Status = Status(409);
    /// 410
    pub const GONE: Status = Status(410);
    /// 413
    pub const PAYLOAD_TOO_LARGE: Status = Status(413);
    /// 500
    pub const INTERNAL: Status = Status(500);
    /// 503
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            302 => "Found",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path without the query string.
    pub path: String,
    /// Raw query string ("" when absent).
    pub query: String,
    /// Header map, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Path parameters filled by the router (`:name` captures).
    pub params: BTreeMap<String, String>,
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / headers.
    Malformed(&'static str),
    /// Body larger than the configured limit.
    TooLarge {
        /// Declared content length.
        declared: usize,
        /// Limit.
        limit: usize,
    },
    /// Socket error while reading.
    Io(String),
    /// The client stalled past the read deadline (slow-loris defence).
    Timeout,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Timeout => write!(f, "client read timed out"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Maximum accepted body (uploads included): 8 MiB.
pub const MAX_BODY: usize = 8 << 20;

/// Maximum accepted head (request line + headers): 32 KiB. Only the
/// incremental parser enforces this — it must bound how much a client can
/// dribble without ever completing a head; the blocking parser's
/// slow-loris defence is the socket read deadline.
pub const MAX_HEAD: usize = 32 << 10;

/// Map an io error to the right protocol error: a socket deadline expiring
/// (`TimedOut` on most platforms, `WouldBlock` on unix sockets with
/// `SO_RCVTIMEO`) is a stalled client, not a malformed request.
fn io_err(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

impl Request {
    /// Parse one request from a buffered stream with the default
    /// [`MAX_BODY`] limit.
    pub fn parse<R: Read>(stream: &mut BufReader<R>) -> Result<Request, HttpError> {
        Request::parse_with_limit(stream, MAX_BODY)
    }

    /// Parse one request, rejecting bodies whose declared length exceeds
    /// `max_body` *before* reading them (the bytes are never buffered).
    pub fn parse_with_limit<R: Read>(
        stream: &mut BufReader<R>,
        max_body: usize,
    ) -> Result<Request, HttpError> {
        let mut line = String::new();
        stream.read_line(&mut line).map_err(io_err)?;
        if line.is_empty() {
            return Err(HttpError::Malformed("empty request"));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or(HttpError::Malformed("bad method"))?;
        let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::Malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported version"));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let mut headers = BTreeMap::new();
        loop {
            let mut hl = String::new();
            stream.read_line(&mut hl).map_err(io_err)?;
            let hl = hl.trim_end();
            if hl.is_empty() {
                break;
            }
            let (k, v) = hl
                .split_once(':')
                .ok_or(HttpError::Malformed("bad header"))?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let body = match headers.get("content-length") {
            Some(cl) => {
                let n: usize = cl
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
                if n > max_body {
                    return Err(HttpError::TooLarge {
                        declared: n,
                        limit: max_body,
                    });
                }
                let mut buf = vec![0u8; n];
                stream.read_exact(&mut buf).map_err(io_err)?;
                buf
            }
            None => Vec::new(),
        };
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            params: BTreeMap::new(),
        })
    }

    /// Incrementally parse one request from `buf` (the bytes received so
    /// far on a nonblocking socket). Returns `Ok(None)` when the buffer
    /// holds a valid *prefix* of a request and more bytes are needed, and
    /// `Ok(Some((request, consumed)))` once a full request is present —
    /// `consumed` bytes belong to it, anything after is the next pipelined
    /// request. Errors are reported as soon as they are decidable: a bad
    /// request line or header fails on its first complete line, and an
    /// oversized `Content-Length` fails before any body byte is buffered.
    pub fn parse_bytes(buf: &[u8], max_body: usize) -> Result<Option<(Request, usize)>, HttpError> {
        fn take_line<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Option<&'a str>, HttpError> {
            match buf[*pos..].iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let line = &buf[*pos..*pos + nl];
                    *pos += nl + 1;
                    let s = std::str::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-utf8 header"))?;
                    Ok(Some(s.trim_end()))
                }
                None if buf.len() - *pos > MAX_HEAD => {
                    Err(HttpError::Malformed("request head too large"))
                }
                None => Ok(None),
            }
        }
        let mut pos = 0usize;
        let Some(line) = take_line(buf, &mut pos)? else {
            return Ok(None);
        };
        let mut parts = line.splitn(3, ' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or(HttpError::Malformed("bad method"))?;
        let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::Malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported version"));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let mut headers = BTreeMap::new();
        loop {
            if pos > MAX_HEAD {
                return Err(HttpError::Malformed("request head too large"));
            }
            let Some(hl) = take_line(buf, &mut pos)? else {
                return Ok(None);
            };
            if hl.is_empty() {
                break;
            }
            let (k, v) = hl
                .split_once(':')
                .ok_or(HttpError::Malformed("bad header"))?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
        let body_len = match headers.get("content-length") {
            Some(cl) => {
                let n: usize = cl
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length"))?;
                if n > max_body {
                    return Err(HttpError::TooLarge {
                        declared: n,
                        limit: max_body,
                    });
                }
                n
            }
            None => 0,
        };
        if buf.len() - pos < body_len {
            return Ok(None);
        }
        let body = buf[pos..pos + body_len].to_vec();
        Ok(Some((
            Request {
                method,
                path,
                query,
                headers,
                body,
                params: BTreeMap::new(),
            },
            pos + body_len,
        )))
    }

    /// Whether the client asked to reuse the connection. HTTP/1.1 defaults
    /// to persistent connections, but the portal is conservative: it keeps
    /// the socket open only on an explicit `Connection: keep-alive`, so
    /// clients that read to EOF (curl-style one-shots, every pre-reactor
    /// test) still get the close they expect.
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }

    /// Body as UTF-8 (empty string when not valid).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// A header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// A router-captured path parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Build a synthetic request (tests and in-process portal calls).
    pub fn synthetic(method: Method, path_and_query: &str, body: &[u8]) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path_and_query.to_string(), String::new()),
        };
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: body.to_vec(),
            params: BTreeMap::new(),
        }
    }

    /// Add a header to a synthetic request (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_string());
        self
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers in insertion order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: Status) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// 200 text/plain.
    pub fn text(body: impl Into<String>) -> Response {
        Response::new(Status::OK)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// 200 text/html.
    pub fn html(body: impl Into<String>) -> Response {
        Response::new(Status::OK)
            .with_header("Content-Type", "text/html; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// A JSON response with the given status.
    pub fn json(status: Status, value: &crate::json::Json) -> Response {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(value.to_string().into_bytes())
    }

    /// 302 redirect.
    pub fn redirect(location: &str) -> Response {
        Response::new(Status::FOUND).with_header("Location", location)
    }

    /// Error response with a plain-text body.
    pub fn error(status: Status, message: impl Into<String>) -> Response {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(message.into().into_bytes())
    }

    /// Add a header (builder).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set the body (builder).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Set a session cookie (HttpOnly, path=/).
    pub fn with_cookie(self, name: &str, value: &str) -> Response {
        self.with_header("Set-Cookie", &format!("{name}={value}; Path=/; HttpOnly"))
    }

    /// Serialize onto a socket (always `Connection: close` — the blocking
    /// engine never reuses connections).
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        self.write_into(&mut out, false);
        w.write_all(&out)?;
        w.flush()
    }

    /// Serialize into a memory buffer, choosing the `Connection` header.
    /// The reactor builds the whole wire image up front so its write path
    /// is a plain nonblocking flush of `out`.
    pub fn write_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        use std::io::Write as _;
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\n",
            self.status.0,
            self.status.reason()
        );
        let mut has_len = false;
        for (k, v) in &self.headers {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            let _ = write!(out, "{k}: {v}\r\n");
        }
        if !has_len {
            let _ = write!(out, "Content-Length: {}\r\n", self.body.len());
        }
        let conn = if keep_alive { "keep-alive" } else { "close" };
        let _ = write!(out, "Connection: {conn}\r\n\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Body as UTF-8 for assertions.
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        Request::parse(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parse_get_with_query() {
        let r = parse("GET /files?path=/home/a&sort=name HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/files");
        assert_eq!(r.query, "path=/home/a&sort=name");
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn parse_post_with_body() {
        let r = parse("POST /login HTTP/1.1\r\nContent-Length: 9\r\n\r\nuser=alic").unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body_str(), "user=alic");
    }

    #[test]
    fn header_names_case_folded() {
        let r = parse("GET / HTTP/1.1\r\nX-Custom-Thing: v\r\n\r\n").unwrap();
        assert_eq!(r.header("x-custom-thing"), Some("v"));
        assert_eq!(r.header("X-CUSTOM-THING"), Some("v"));
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(parse("").is_err());
        assert!(parse("FROB / HTTP/1.1\r\n\r\n").is_err());
        assert!(parse("GET /\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge { .. })));
    }

    #[test]
    fn custom_body_limit_enforced() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 6\r\n\r\nabcdef";
        let mut r = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        assert!(matches!(
            Request::parse_with_limit(&mut r, 5),
            Err(HttpError::TooLarge {
                declared: 6,
                limit: 5
            })
        ));
        let mut r = BufReader::new(Cursor::new(raw.as_bytes().to_vec()));
        assert_eq!(
            Request::parse_with_limit(&mut r, 6).unwrap().body_str(),
            "abcdef"
        );
    }

    #[test]
    fn new_status_reasons() {
        assert_eq!(Status::REQUEST_TIMEOUT.reason(), "Request Timeout");
        assert_eq!(Status::SERVICE_UNAVAILABLE.reason(), "Service Unavailable");
        assert_eq!(Status::GONE.reason(), "Gone");
    }

    #[test]
    fn response_serialization() {
        let r = Response::text("hello").with_cookie("sid", "abc123");
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 5"));
        assert!(s.contains("Set-Cookie: sid=abc123; Path=/; HttpOnly"));
        assert!(s.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn redirect_and_error_helpers() {
        let r = Response::redirect("/login");
        assert_eq!(r.status, Status::FOUND);
        assert_eq!(r.header("location"), Some("/login"));
        let e = Response::error(Status::FORBIDDEN, "no");
        assert_eq!(e.status.0, 403);
        assert_eq!(e.body_str(), "no");
        assert_eq!(Status(418).reason(), "Unknown");
    }

    #[test]
    fn incremental_parse_partial_then_complete() {
        let raw = b"POST /login HTTP/1.1\r\nContent-Length: 9\r\n\r\nuser=alic";
        for cut in 0..raw.len() {
            assert!(
                Request::parse_bytes(&raw[..cut], MAX_BODY)
                    .unwrap()
                    .is_none(),
                "prefix of {cut} bytes parsed as complete"
            );
        }
        let (r, consumed) = Request::parse_bytes(raw, MAX_BODY).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body_str(), "user=alic");
    }

    #[test]
    fn incremental_parse_leaves_pipelined_tail() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (r, consumed) = Request::parse_bytes(raw, MAX_BODY).unwrap().unwrap();
        assert_eq!(r.path, "/a");
        let (r2, consumed2) = Request::parse_bytes(&raw[consumed..], MAX_BODY)
            .unwrap()
            .unwrap();
        assert_eq!(r2.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn incremental_parse_errors_eagerly() {
        // A complete-but-bad request line fails before the head finishes.
        assert!(Request::parse_bytes(b"FROB / HTTP/1.1\r\nHost", MAX_BODY).is_err());
        // Oversized declared body fails before any body byte arrives.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n";
        assert!(matches!(
            Request::parse_bytes(raw, 5),
            Err(HttpError::TooLarge {
                declared: 10,
                limit: 5
            })
        ));
        // An endless dribble of header bytes trips the head cap.
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'x', MAX_HEAD + 2));
        assert!(Request::parse_bytes(&big, MAX_BODY).is_err());
    }

    #[test]
    fn keep_alive_is_explicit_opt_in() {
        let raw = b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let (r, _) = Request::parse_bytes(raw, MAX_BODY).unwrap().unwrap();
        assert!(r.wants_keep_alive());
        let raw = b"GET / HTTP/1.1\r\n\r\n";
        let (r, _) = Request::parse_bytes(raw, MAX_BODY).unwrap().unwrap();
        assert!(!r.wants_keep_alive(), "no header means close");
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (r, _) = Request::parse_bytes(raw, MAX_BODY).unwrap().unwrap();
        assert!(!r.wants_keep_alive());
    }

    #[test]
    fn write_into_picks_connection_header() {
        let r = Response::text("hi");
        let mut ka = Vec::new();
        r.write_into(&mut ka, true);
        let s = String::from_utf8(ka).unwrap();
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
        let mut cl = Vec::new();
        r.write_into(&mut cl, false);
        assert!(String::from_utf8(cl)
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn synthetic_requests() {
        let r = Request::synthetic(Method::Post, "/api/run?seed=4", b"{}")
            .with_header("Cookie", "sid=1");
        assert_eq!(r.query, "seed=4");
        assert_eq!(r.header("cookie"), Some("sid=1"));
    }
}
