//! HTML escaping and tiny page-assembly helpers for the portal UI.

/// Escape text for safe inclusion in HTML content or attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Wrap `body` in the portal's page chrome.
pub fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{}</title>\
         <style>body{{font-family:sans-serif;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:4px 8px}}pre{{background:#f4f4f4;padding:1em}}</style>\
         </head><body><h1>{}</h1>{}</body></html>",
        escape(title),
        escape(title),
        body
    )
}

/// Render rows as an HTML table; `headers` and each row are escaped.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", escape(h)));
    }
    out.push_str("</tr>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            out.push_str(&format!("<td>{}</td>", escape(cell)));
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_neutralizes_html() {
        assert_eq!(
            escape("<script>alert('x')</script>"),
            "&lt;script&gt;alert(&#39;x&#39;)&lt;/script&gt;"
        );
        assert_eq!(escape("a & b \"q\""), "a &amp; b &quot;q&quot;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn page_escapes_title_not_body() {
        let p = page("<Home>", "<b>bold</b>");
        assert!(p.contains("<title>&lt;Home&gt;</title>"));
        assert!(p.contains("<b>bold</b>"));
    }

    #[test]
    fn table_renders_and_escapes() {
        let t = table(
            &["Name", "Size"],
            &[vec!["a<b".to_string(), "10".to_string()]],
        );
        assert!(t.contains("<th>Name</th>"));
        assert!(t.contains("<td>a&lt;b</td>"));
        assert!(t.contains("<td>10</td>"));
    }
}
