//! Raw readiness primitives for the reactor: `epoll`, `eventfd` and a
//! best-effort `RLIMIT_NOFILE` raise, issued as direct syscalls.
//!
//! No third-party crate is on the allowed dependency list (`libc`, `mio`,
//! `polling` all out of reach), and `std` exposes nonblocking sockets but
//! no readiness notification, so the handful of kernel entry points the
//! reactor needs are invoked through inline assembly on the two Linux
//! targets the portal deploys to (x86_64, aarch64). Everything is wrapped
//! in safe RAII types here; the rest of the crate never sees a raw
//! syscall. On other targets [`SUPPORTED`] is `false` and the server falls
//! back to the thread-per-connection engine.

/// Whether the epoll reactor can run on this target.
pub const SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PRLIMIT64: usize = 302;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PRLIMIT64: usize = 261;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    /// Kernel return convention: `[-4095, -1]` is `-errno`.
    fn check(ret: isize) -> io::Result<usize> {
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    const EINTR: i32 = 4;

    /// `epoll_event`: packed on x86_64 (12 bytes), naturally aligned on
    /// every other architecture (16 bytes). Matching the kernel ABI here
    /// is load-bearing — `epoll_wait` writes this layout directly.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;
    const EFD_CLOEXEC: usize = 0x80000;
    const EFD_NONBLOCK: usize = 0x800;

    pub fn epoll_create() -> io::Result<RawFd> {
        check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })
            .map(|fd| fd as RawFd)
    }

    pub fn epoll_ctl(epfd: RawFd, op: usize, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op,
                fd as usize,
                &mut ev as *mut EpollEvent as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        epoll_ctl(epfd, EPOLL_CTL_ADD, fd, events, data)
    }

    pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        epoll_ctl(epfd, EPOLL_CTL_MOD, fd, events, data)
    }

    pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
        epoll_ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for events; retries on `EINTR` so callers never see it.
    pub fn epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0, // no sigmask
                    8, // kernel sigset size
                )
            };
            match check(ret) {
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                other => return other,
            }
        }
    }

    pub fn eventfd() -> io::Result<RawFd> {
        check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })
            .map(|fd| fd as RawFd)
    }

    pub fn fd_write_u64(fd: RawFd, v: u64) -> io::Result<usize> {
        let buf = v.to_ne_bytes();
        check(unsafe { syscall6(nr::WRITE, fd as usize, buf.as_ptr() as usize, 8, 0, 0, 0) })
    }

    pub fn fd_read_u64(fd: RawFd) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        check(unsafe { syscall6(nr::READ, fd as usize, buf.as_mut_ptr() as usize, 8, 0, 0, 0) })
            .map(|_| u64::from_ne_bytes(buf))
    }

    pub fn close(fd: RawFd) {
        let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    }

    #[repr(C)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: usize = 7;

    /// Raise the soft fd limit to the hard limit; returns the resulting
    /// soft limit (best effort — failures just keep the current limit).
    pub fn raise_nofile_limit() -> u64 {
        let mut old = Rlimit64 { cur: 0, max: 0 };
        let got = unsafe {
            syscall6(
                nr::PRLIMIT64,
                0, // self
                RLIMIT_NOFILE,
                0,
                &mut old as *mut Rlimit64 as usize,
                0,
                0,
            )
        };
        if check(got).is_err() {
            return 1024;
        }
        if old.cur >= old.max {
            return old.cur;
        }
        let want = Rlimit64 {
            cur: old.max,
            max: old.max,
        };
        let set = unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &want as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        };
        if check(set).is_ok() {
            old.max
        } else {
            old.cur
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub use supported::*;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod supported {
    use super::imp;
    use std::io;
    use std::os::fd::RawFd;

    /// What a parked task is waiting for.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Interest {
        /// Readable (or peer half-close).
        Read,
        /// Writable.
        Write,
    }

    impl Interest {
        fn bits(self) -> u32 {
            match self {
                // RDHUP so a peer close wakes a parked reader immediately
                // instead of waiting for its deadline.
                Interest::Read => imp::EPOLLIN | imp::EPOLLRDHUP,
                Interest::Write => imp::EPOLLOUT,
            }
        }
    }

    /// One delivered readiness event.
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        /// The `token` the fd was registered with.
        pub token: u64,
        /// Readable / peer-closed / error — anything that should unpark a
        /// reader. Errors are folded in so the task discovers them from
        /// the actual `read`/`write` result.
        pub readable: bool,
        /// Writable (or error, same folding).
        pub writable: bool,
    }

    /// An epoll instance. All registrations are `EPOLLONESHOT`: an armed
    /// fd fires at most once and stays quiet until re-armed, which gives
    /// the reactor single-ownership hand-off for free (events can only
    /// arrive for *parked* tasks; running tasks are disarmed).
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// A new epoll instance (CLOEXEC).
        pub fn new() -> io::Result<Epoll> {
            Ok(Epoll {
                fd: imp::epoll_create()?,
            })
        }

        /// Register `fd` disarmed; arm it later with [`Epoll::rearm`].
        pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            imp::epoll_add(self.fd, fd, imp::EPOLLONESHOT, token)
        }

        /// Register `fd` armed for `interest` (one shot).
        pub fn register_armed(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            imp::epoll_add(self.fd, fd, interest.bits() | imp::EPOLLONESHOT, token)
        }

        /// Arm a registered fd for one `interest` event.
        pub fn rearm(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            imp::epoll_mod(self.fd, fd, interest.bits() | imp::EPOLLONESHOT, token)
        }

        /// Remove a registration (idempotent-enough: errors ignored by
        /// callers that are closing the fd anyway).
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            imp::epoll_del(self.fd, fd)
        }

        /// Wait up to `timeout_ms` (`-1` = forever) and append delivered
        /// events to `out`. Returns the number delivered.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let mut raw = [imp::EpollEvent { events: 0, data: 0 }; 256];
            let n = imp::epoll_wait(self.fd, &mut raw, timeout_ms)?;
            for ev in raw.iter().take(n) {
                let bits = ev.events;
                let err = bits & (imp::EPOLLERR | imp::EPOLLHUP) != 0;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (imp::EPOLLIN | imp::EPOLLRDHUP) != 0 || err,
                    writable: bits & imp::EPOLLOUT != 0 || err,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            imp::close(self.fd);
        }
    }

    /// An `eventfd`-backed wakeup handle: any thread can [`Waker::wake`]
    /// the reactor out of `epoll_wait`. Replaces the old "connect a no-op
    /// TCP client to our own listener" shutdown nudge, which hung when the
    /// listener address was unreachable.
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        /// A new eventfd, registered level-free (caller arms it).
        pub fn new() -> io::Result<Waker> {
            Ok(Waker {
                fd: imp::eventfd()?,
            })
        }

        /// The raw fd, for epoll registration.
        pub fn fd(&self) -> RawFd {
            self.fd
        }

        /// Nudge the reactor (async-signal-safe, never blocks: the
        /// counter saturates rather than the write parking).
        pub fn wake(&self) {
            let _ = imp::fd_write_u64(self.fd, 1);
        }

        /// Drain the counter so the next `wake` edge-triggers again.
        pub fn drain(&self) {
            let _ = imp::fd_read_u64(self.fd);
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            imp::close(self.fd);
        }
    }

    /// Raise `RLIMIT_NOFILE` soft → hard (the load generator and the
    /// 100k-session front end both want headroom); returns the resulting
    /// soft limit.
    pub fn raise_nofile_limit() -> u64 {
        imp::raise_nofile_limit()
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub use unsupported::*;

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod unsupported {
    //! Typed stand-ins so the reactor module still type-checks on targets
    //! without epoll; [`super::SUPPORTED`] gates every runtime entry.
    use std::io;
    use std::os::fd::RawFd;

    /// See the Linux implementation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Interest {
        /// Readable.
        Read,
        /// Writable.
        Write,
    }

    /// See the Linux implementation.
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        /// Registration token.
        pub token: u64,
        /// Readable.
        pub readable: bool,
        /// Writable.
        pub writable: bool,
    }

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll reactor requires linux x86_64/aarch64",
        )
    }

    /// See the Linux implementation.
    pub struct Epoll;

    impl Epoll {
        /// Always fails on this target.
        pub fn new() -> io::Result<Epoll> {
            Err(unsupported())
        }

        /// Unreachable (constructor fails).
        pub fn register(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (constructor fails).
        pub fn register_armed(&self, _fd: RawFd, _i: Interest, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (constructor fails).
        pub fn rearm(&self, _fd: RawFd, _i: Interest, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (constructor fails).
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (constructor fails).
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// See the Linux implementation.
    pub struct Waker;

    impl Waker {
        /// Always fails on this target.
        pub fn new() -> io::Result<Waker> {
            Err(unsupported())
        }

        /// Unreachable (constructor fails).
        pub fn fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (constructor fails).
        pub fn wake(&self) {}

        /// Unreachable (constructor fails).
        pub fn drain(&self) {}
    }

    /// No-op on this target.
    pub fn raise_nofile_limit() -> u64 {
        1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_matches_cfg() {
        assert_eq!(
            SUPPORTED,
            cfg!(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))
        );
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    mod linux {
        use super::super::*;
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        #[test]
        fn waker_wakes_epoll_wait() {
            let ep = Epoll::new().unwrap();
            let waker = Waker::new().unwrap();
            ep.register_armed(waker.fd(), Interest::Read, 7).unwrap();
            let mut events = Vec::new();
            // Nothing pending: times out empty.
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
            waker.wake();
            assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            waker.drain();
            // Oneshot: quiet until re-armed.
            events.clear();
            waker.wake();
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
            ep.rearm(waker.fd(), Interest::Read, 7).unwrap();
            assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        }

        #[test]
        fn socket_readability_delivered() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            let ep = Epoll::new().unwrap();
            ep.register(server.as_raw_fd(), 42).unwrap();
            ep.rearm(server.as_raw_fd(), Interest::Read, 42).unwrap();
            let mut events = Vec::new();
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no bytes yet");
            client.write_all(b"x").unwrap();
            assert_eq!(ep.wait(&mut events, 2000).unwrap(), 1);
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);
            ep.deregister(server.as_raw_fd()).unwrap();
        }

        #[test]
        fn nofile_limit_is_sane() {
            assert!(raise_nofile_limit() >= 1024);
        }
    }
}
