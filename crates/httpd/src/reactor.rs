//! The epoll reactor + M:N green-task engine.
//!
//! One reactor thread multiplexes every connection over a single
//! [`Epoll`] instance; a small fixed pool of workers runs connection
//! *tasks* — plain state machines boxed in a slab — whenever readiness
//! (or a deadline) makes progress possible. A connection costs a slab
//! slot and two byte buffers instead of an OS thread and its stack,
//! which is what moves the capacity ceiling from "hundreds of threads"
//! to "as many sockets as the fd limit allows".
//!
//! Ownership protocol (the part that keeps this correct without an
//! async runtime):
//!
//! * every fd is registered `EPOLLONESHOT` and armed **only while its
//!   task is parked** in the slab — a running task's fd is disarmed, so
//!   readiness events can only ever refer to parked tasks;
//! * unparking (by event or by deadline) atomically takes the boxed
//!   task out of its slot and hands it to exactly one worker;
//! * each park bumps the slot's sequence number; timer-wheel entries
//!   carry the sequence they were armed under, so a deadline that fires
//!   after its park ended expires into nothing (lazy cancellation).
//!
//! Shutdown replaces the old "connect a no-op TCP client to our own
//! listener" nudge: an `eventfd` [`Waker`] kicks the reactor out of
//! `epoll_wait`, the listener is deregistered, idle connections are
//! closed, and in-flight requests get `drain_grace` to finish.

use crate::http::{HttpError, Request, Response, Status};
use crate::router::Router;
use crate::server::{epoch_secs, ServerConfig, Shared};
use crate::sys::{Epoll, Event, Interest, Waker};
use crate::wheel::{Deadline, TimerWheel};
use obs::{Counter, Gauge, Obs};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token reserved for the shutdown eventfd.
const TOKEN_WAKER: u64 = u64::MAX;
/// Token reserved for the TCP listener.
const TOKEN_LISTENER: u64 = u64::MAX - 1;
/// Bytes read per `read` call while filling a request buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Keep-alive buffers are shrunk back to this between requests so an
/// idle connection's footprint stays bounded.
const BUF_KEEP: usize = 16 * 1024;
/// How long a shed (503) connection may dribble request bytes before we
/// give up on the RST-avoiding drain.
const SHED_DRAIN_MS: u64 = 250;

/// Cached metric handles (`Counter`/`Gauge` are `Arc`-backed atomics, so
/// cloning once up front keeps the hot path registry-free).
struct Metrics {
    open: Gauge,
    parked: Gauge,
    wakeups: Counter,
    keepalive: Counter,
    inflight: Gauge,
    shed: Counter,
    timeouts: Counter,
    rejected_too_large: Counter,
    rejected_bad: Counter,
}

impl Metrics {
    fn new(o: &Obs) -> Metrics {
        Metrics {
            open: o.metrics.gauge("ccp_httpd_open_connections", &[]),
            parked: o.metrics.gauge("ccp_httpd_tasks_parked", &[]),
            wakeups: o.metrics.counter("ccp_httpd_reactor_wakeups_total", &[]),
            keepalive: o.metrics.counter("ccp_httpd_keepalive_reuses_total", &[]),
            inflight: o.metrics.gauge("ccp_httpd_inflight", &[]),
            shed: o.metrics.counter("ccp_httpd_shed_total", &[]),
            timeouts: o.metrics.counter("ccp_httpd_request_timeouts_total", &[]),
            rejected_too_large: o
                .metrics
                .counter("ccp_httpd_rejected_total", &[("reason", "too_large")]),
            rejected_bad: o
                .metrics
                .counter("ccp_httpd_rejected_total", &[("reason", "bad_request")]),
        }
    }
}

/// One connection task: a state machine over two buffers. ~100 bytes of
/// state plus buffer capacity — the whole point of M:N.
struct Conn {
    stream: TcpStream,
    /// Bytes received and not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// Serialized response bytes not yet written.
    out: Vec<u8>,
    out_pos: usize,
    /// The current response's `Connection` decision.
    keep_alive: bool,
    /// Shed/refused path: half-close after the response, then sink
    /// request bytes until the peer closes (avoids an RST racing the
    /// response out of the client's receive buffer).
    draining: bool,
    /// A request is mid-flight on this connection (first byte seen,
    /// response not fully flushed). Counted in [`Shared::active`].
    active: bool,
    /// Requests completed on this connection (keep-alive reuse count).
    served: u64,
    /// This is a 503-shed connection (counted separately from `open`).
    shed: bool,
    /// Start of the current request, for the access log.
    started: Instant,
}

impl Conn {
    fn new(stream: TcpStream, shed: bool) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            keep_alive: false,
            draining: shed,
            active: false,
            served: 0,
            shed,
            started: Instant::now(),
        }
    }
}

enum Slot {
    Vacant,
    /// Task waiting for readiness or a deadline; fd armed.
    Parked(Box<Conn>),
    /// Task owned by the queue or a worker; fd disarmed.
    Running,
}

struct Slab {
    slots: Vec<Slot>,
    /// Park sequence per slot; bumped on every park *and* unpark so
    /// stale timer entries can be recognised.
    seqs: Vec<u64>,
    free: Vec<usize>,
}

impl Slab {
    fn alloc(&mut self) -> usize {
        match self.free.pop() {
            Some(t) => t,
            None => {
                self.slots.push(Slot::Vacant);
                self.seqs.push(0);
                self.slots.len() - 1
            }
        }
    }

    /// Take a parked task out of its slot (→ `Running`), or `None` if the
    /// slot is not currently parked (the event/timer lost the race).
    fn take_parked(&mut self, token: usize) -> Option<Box<Conn>> {
        if token >= self.slots.len() || !matches!(self.slots[token], Slot::Parked(_)) {
            return None;
        }
        self.seqs[token] += 1;
        match std::mem::replace(&mut self.slots[token], Slot::Running) {
            Slot::Parked(conn) => Some(conn),
            _ => unreachable!(),
        }
    }

    fn release(&mut self, token: usize) {
        self.seqs[token] += 1;
        self.slots[token] = Slot::Vacant;
        self.free.push(token);
    }
}

/// Ready-to-run work: an unparked task and why it woke.
struct Work {
    token: usize,
    conn: Box<Conn>,
    timed_out: bool,
}

/// Per-worker run queues with steal-from-the-back, the long-lived
/// sibling of the batch pool in `checker::pool`.
struct Queues {
    queues: Vec<Mutex<VecDeque<Work>>>,
    gate: Mutex<()>,
    cv: Condvar,
    pending: AtomicUsize,
    busy: AtomicUsize,
    rr: AtomicUsize,
    stop: AtomicBool,
}

impl Queues {
    fn new(workers: usize) -> Queues {
        Queues {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        }
    }

    fn push(&self, w: Work) {
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i].lock().unwrap().push_back(w);
        self.pending.fetch_add(1, Ordering::SeqCst);
        let _g = self.gate.lock().unwrap();
        self.cv.notify_one();
    }

    fn pop(&self, home: usize) -> Option<Work> {
        let n = self.queues.len();
        for k in 0..n {
            let i = (home + k) % n;
            let mut q = self.queues[i].lock().unwrap();
            // Own queue from the front (FIFO fairness), steals from the
            // back (coarse work, fewer collisions).
            let w = if k == 0 { q.pop_front() } else { q.pop_back() };
            if let Some(w) = w {
                drop(q);
                // Claim busy *before* releasing pending so the drain
                // check never sees in-hand work vanish from both.
                self.busy.fetch_add(1, Ordering::SeqCst);
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(w);
            }
        }
        None
    }
}

/// Everything the reactor thread, the workers and [`ServerHandle`]
/// share.
///
/// [`ServerHandle`]: crate::server::ServerHandle
pub(crate) struct Core {
    epoll: Epoll,
    waker: Waker,
    config: ServerConfig,
    router: Arc<Router>,
    obs: Option<Arc<Obs>>,
    metrics: Option<Metrics>,
    shared: Arc<Shared>,
    slab: Mutex<Slab>,
    wheel: Mutex<TimerWheel>,
    queues: Queues,
    /// Base of the wheel's millisecond clock.
    epoch: Instant,
    /// Grace expired: parks are refused, remaining tasks close.
    hard_stop: AtomicBool,
    /// Shed connections still draining (bounded separately).
    shed_open: AtomicUsize,
}

impl Core {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Kick the reactor out of `epoll_wait` (shutdown path).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// A running reactor: the shared core plus the reactor thread handle.
pub(crate) struct ReactorHandle {
    pub(crate) core: Arc<Core>,
    pub(crate) thread: Option<JoinHandle<()>>,
}

/// Start the engine on `listener`. Fails only if the kernel refuses an
/// epoll instance or an eventfd.
pub(crate) fn spawn(
    listener: TcpListener,
    config: ServerConfig,
    router: Arc<Router>,
    obs: Option<Arc<Obs>>,
    shared: Arc<Shared>,
) -> std::io::Result<ReactorHandle> {
    crate::sys::raise_nofile_limit();
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let waker = Waker::new()?;
    epoll.register_armed(waker.fd(), Interest::Read, TOKEN_WAKER)?;
    epoll.register_armed(listener.as_raw_fd(), Interest::Read, TOKEN_LISTENER)?;
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    } else {
        config.workers
    };
    let metrics = obs.as_deref().map(Metrics::new);
    let core = Arc::new(Core {
        epoll,
        waker,
        config,
        router,
        obs,
        metrics,
        shared,
        slab: Mutex::new(Slab {
            slots: Vec::new(),
            seqs: Vec::new(),
            free: Vec::new(),
        }),
        // 256 slots × 16ms ≈ 4s revolution: every portal deadline fits
        // in a couple of revolutions.
        wheel: Mutex::new(TimerWheel::new(256, 16)),
        queues: Queues::new(workers),
        epoch: Instant::now(),
        hard_stop: AtomicBool::new(false),
        shed_open: AtomicUsize::new(0),
    });
    let mut worker_threads = Vec::with_capacity(workers);
    for i in 0..workers {
        let core = Arc::clone(&core);
        worker_threads.push(
            std::thread::Builder::new()
                .name(format!("httpd-worker-{i}"))
                .spawn(move || worker_loop(&core, i))?,
        );
    }
    let core2 = Arc::clone(&core);
    let thread = std::thread::Builder::new()
        .name("httpd-reactor".into())
        .spawn(move || reactor_loop(&core2, listener, worker_threads))?;
    Ok(ReactorHandle {
        core,
        thread: Some(thread),
    })
}

fn reactor_loop(core: &Core, listener: TcpListener, workers: Vec<JoinHandle<()>>) {
    let mut events: Vec<Event> = Vec::new();
    let mut due: Vec<Deadline> = Vec::new();
    let mut stopping = false;
    let mut listener_open = true;
    let mut drain_deadline = Instant::now();
    loop {
        let now = core.now_ms();
        // Poll timeout: next wheel deadline, capped so late parks (armed
        // while we sleep) and the stop flag are noticed promptly.
        let cap: u64 = if stopping {
            5
        } else if core.shared.open.load(Ordering::SeqCst) > 0
            || core.shed_open.load(Ordering::SeqCst) > 0
        {
            100
        } else {
            500
        };
        let timeout = core
            .wheel
            .lock()
            .unwrap()
            .next_deadline_in(now)
            .map_or(cap, |ms| ms.min(cap)) as i32;
        events.clear();
        if core.epoll.wait(&mut events, timeout).is_err() {
            std::thread::sleep(Duration::from_millis(5));
        }
        if !events.is_empty() {
            if let Some(m) = &core.metrics {
                m.wakeups.inc();
            }
        }
        for ev in &events {
            match ev.token {
                TOKEN_WAKER => {
                    core.waker.drain();
                    let _ = core
                        .epoll
                        .rearm(core.waker.fd(), Interest::Read, TOKEN_WAKER);
                }
                TOKEN_LISTENER => {
                    accept_burst(core, &listener, stopping);
                    if listener_open && !stopping {
                        let _ =
                            core.epoll
                                .rearm(listener.as_raw_fd(), Interest::Read, TOKEN_LISTENER);
                    }
                }
                t => unpark(core, t as usize, false),
            }
        }
        due.clear();
        let now = core.now_ms();
        core.wheel.lock().unwrap().advance(now, &mut due);
        for d in &due {
            expire(core, d);
        }
        if !stopping && core.shared.stop.load(Ordering::SeqCst) {
            stopping = true;
            drain_deadline = Instant::now() + core.config.drain_grace;
            if listener_open {
                let _ = core.epoll.deregister(listener.as_raw_fd());
                listener_open = false;
            }
        }
        if stopping {
            close_idle_parked(core);
            let quiesced = core.shared.active.load(Ordering::SeqCst) == 0
                && core.queues.pending.load(Ordering::SeqCst) == 0
                && core.queues.busy.load(Ordering::SeqCst) == 0;
            if quiesced || Instant::now() >= drain_deadline {
                break;
            }
        }
    }
    // Grace spent (or everything drained): refuse further parks, stop the
    // workers, and close whatever is left.
    core.hard_stop.store(true, Ordering::SeqCst);
    core.queues.stop.store(true, Ordering::SeqCst);
    {
        let _g = core.queues.gate.lock().unwrap();
        core.queues.cv.notify_all();
    }
    for t in workers {
        let _ = t.join();
    }
    let leftovers: Vec<Box<Conn>> = {
        let mut slab = core.slab.lock().unwrap();
        (0..slab.slots.len())
            .filter_map(|t| {
                let c = slab.take_parked(t);
                if c.is_some() {
                    slab.release(t);
                }
                c
            })
            .collect()
    };
    for conn in leftovers {
        if let Some(m) = &core.metrics {
            m.parked.sub(1);
        }
        drop_conn_counts(core, &conn);
    }
    for q in &core.queues.queues {
        let mut q = q.lock().unwrap();
        while let Some(w) = q.pop_front() {
            core.queues.pending.fetch_sub(1, Ordering::SeqCst);
            drop_conn_counts(core, &w.conn);
        }
    }
}

fn accept_burst(core: &Core, listener: &TcpListener, stopping: bool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stopping {
                    continue;
                }
                admit(core, stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

fn admit(core: &Core, stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    // Backpressure off the open-connections gauge: beyond the budget the
    // client gets an immediate 503 + Retry-After instead of a queue slot.
    if core.shared.open.load(Ordering::SeqCst) >= core.config.max_inflight {
        shed(core, stream);
        return;
    }
    core.shared.open.fetch_add(1, Ordering::SeqCst);
    if let Some(m) = &core.metrics {
        m.open.add(1);
    }
    enroll(core, Box::new(Conn::new(stream, false)));
}

fn shed(core: &Core, stream: TcpStream) {
    core.shared.shed.fetch_add(1, Ordering::Relaxed);
    if let Some(o) = core.obs.as_deref() {
        if let Some(m) = &core.metrics {
            m.shed.inc();
        }
        if core.config.access_log {
            o.events.record(
                epoch_secs(),
                "http.access",
                &[
                    ("method", "-"),
                    ("path", "-"),
                    ("status", "503"),
                    ("bytes", "0"),
                    ("duration_us", "0"),
                ],
            );
        }
    }
    // The polite 503 + drain costs an fd for up to SHED_DRAIN_MS; under a
    // flood, cap the drainers and just close.
    if core.shed_open.load(Ordering::SeqCst) >= core.config.max_inflight.max(64) {
        return;
    }
    core.shed_open.fetch_add(1, Ordering::SeqCst);
    let mut conn = Box::new(Conn::new(stream, true));
    Response::error(
        Status::SERVICE_UNAVAILABLE,
        "server at capacity, retry shortly",
    )
    .with_header("Retry-After", "1")
    .write_into(&mut conn.out, false);
    enroll(core, conn);
}

/// Register a fresh connection's fd and queue its first run (bytes may
/// already be waiting; the task parks itself if not).
fn enroll(core: &Core, conn: Box<Conn>) {
    let fd = conn.stream.as_raw_fd();
    let token = core.slab.lock().unwrap().alloc();
    if core.epoll.register(fd, token as u64).is_err() {
        core.slab.lock().unwrap().release(token);
        drop_conn_counts(core, &conn);
        return;
    }
    core.queues.push(Work {
        token,
        conn,
        timed_out: false,
    });
}

/// Move a parked task to the run queue. `timed_out` tells the task why.
fn unpark(core: &Core, token: usize, timed_out: bool) {
    let conn = core.slab.lock().unwrap().take_parked(token);
    if let Some(conn) = conn {
        if let Some(m) = &core.metrics {
            m.parked.sub(1);
        }
        core.queues.push(Work {
            token,
            conn,
            timed_out,
        });
    }
}

/// A wheel entry fired: only acts if the park it was armed under is
/// still the current one (sequence check = lazy cancellation).
fn expire(core: &Core, d: &Deadline) {
    {
        let slab = core.slab.lock().unwrap();
        if d.token >= slab.seqs.len() || slab.seqs[d.token] != d.seq {
            return;
        }
    }
    unpark(core, d.token, true);
}

/// During drain: close parked connections with no request mid-flight
/// (idle keep-alives, never-spoke clients, shed drainers).
fn close_idle_parked(core: &Core) {
    let victims: Vec<Box<Conn>> = {
        let mut slab = core.slab.lock().unwrap();
        (0..slab.slots.len())
            .filter_map(|t| {
                let idle = matches!(&slab.slots[t], Slot::Parked(c) if !c.active);
                if !idle {
                    return None;
                }
                let c = slab.take_parked(t);
                if c.is_some() {
                    slab.release(t);
                }
                c
            })
            .collect()
    };
    for conn in victims {
        if let Some(m) = &core.metrics {
            m.parked.sub(1);
        }
        drop_conn_counts(core, &conn);
    }
}

/// Undo a connection's contribution to every gauge; the fd closes when
/// the `Conn` drops.
fn drop_conn_counts(core: &Core, conn: &Conn) {
    let _ = core.epoll.deregister(conn.stream.as_raw_fd());
    if conn.shed {
        core.shed_open.fetch_sub(1, Ordering::SeqCst);
    } else {
        core.shared.open.fetch_sub(1, Ordering::SeqCst);
        if let Some(m) = &core.metrics {
            m.open.sub(1);
        }
    }
    if conn.active {
        let left = core.shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
        if let Some(m) = &core.metrics {
            m.inflight.set(left as i64);
        }
    }
}

fn worker_loop(core: &Core, home: usize) {
    loop {
        if let Some(w) = core.queues.pop(home) {
            drive_work(core, w);
            core.queues.busy.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if core.queues.stop.load(Ordering::SeqCst) {
            return;
        }
        let guard = core.queues.gate.lock().unwrap();
        if core.queues.pending.load(Ordering::SeqCst) == 0
            && !core.queues.stop.load(Ordering::SeqCst)
        {
            let _ = core
                .queues
                .cv
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap();
        }
    }
}

fn drive_work(core: &Core, w: Work) {
    let Work {
        token,
        mut conn,
        timed_out,
    } = w;
    match drive(core, &mut conn, timed_out) {
        Next::Park(interest, timeout) => park(core, token, conn, interest, timeout),
        Next::Close => {
            core.slab.lock().unwrap().release(token);
            drop_conn_counts(core, &conn);
        }
    }
}

/// Re-park a task: slot in the slab, deadline on the wheel, fd armed —
/// strictly in that order (the fd arm is the publication point).
fn park(core: &Core, token: usize, conn: Box<Conn>, interest: Interest, timeout: Duration) {
    if core.hard_stop.load(Ordering::SeqCst) {
        core.slab.lock().unwrap().release(token);
        drop_conn_counts(core, &conn);
        return;
    }
    let fd = conn.stream.as_raw_fd();
    let seq = {
        let mut slab = core.slab.lock().unwrap();
        slab.seqs[token] += 1;
        let seq = slab.seqs[token];
        slab.slots[token] = Slot::Parked(conn);
        seq
    };
    if let Some(m) = &core.metrics {
        m.parked.add(1);
    }
    let now = core.now_ms();
    core.wheel.lock().unwrap().arm(
        now,
        Deadline {
            token,
            seq,
            at_ms: now + timeout.as_millis() as u64,
        },
    );
    if core.epoll.rearm(fd, interest, token as u64).is_err() {
        // Readiness is unobservable: pull the task back out and close.
        let conn = core.slab.lock().unwrap().take_parked(token);
        if let Some(conn) = conn {
            core.slab.lock().unwrap().release(token);
            if let Some(m) = &core.metrics {
                m.parked.sub(1);
            }
            drop_conn_counts(core, &conn);
        }
    }
}

enum Next {
    Park(Interest, Duration),
    Close,
}

enum IoStep {
    Progress,
    WouldBlock,
    Closed,
}

/// Run one connection task until it blocks or finishes: flush pending
/// output, parse buffered requests (pipelining included), read more
/// bytes, repeat.
fn drive(core: &Core, conn: &mut Conn, timed_out: bool) -> Next {
    if timed_out && !on_timeout(core, conn) {
        return Next::Close;
    }
    loop {
        if conn.out_pos < conn.out.len() {
            match flush(conn) {
                IoStep::Progress => {
                    conn.out.clear();
                    conn.out_pos = 0;
                    if conn.draining {
                        // 503 fully sent: half-close, then sink whatever
                        // the client was mid-sending so it sees the
                        // response rather than an RST.
                        let _ = conn.stream.shutdown(Shutdown::Write);
                    } else {
                        finish_response(core, conn);
                        if !conn.keep_alive {
                            return Next::Close;
                        }
                        if conn.buf.capacity() > 4 * BUF_KEEP {
                            conn.buf.shrink_to(BUF_KEEP);
                        }
                        if conn.out.capacity() > 4 * BUF_KEEP {
                            conn.out.shrink_to(BUF_KEEP);
                        }
                    }
                }
                IoStep::WouldBlock => {
                    return Next::Park(Interest::Write, core.config.write_timeout)
                }
                IoStep::Closed => return Next::Close,
            }
            continue;
        }
        if conn.draining {
            return match sink(conn) {
                IoStep::WouldBlock => {
                    Next::Park(Interest::Read, Duration::from_millis(SHED_DRAIN_MS))
                }
                _ => Next::Close,
            };
        }
        match Request::parse_bytes(&conn.buf, core.config.max_body) {
            Ok(Some((mut req, consumed))) => {
                conn.buf.drain(..consumed);
                respond(core, conn, &mut req);
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                reject(core, conn, e);
                continue;
            }
        }
        match fill(conn) {
            IoStep::Progress => {
                if !conn.active && !conn.buf.is_empty() {
                    begin_request(core, conn);
                }
                continue;
            }
            IoStep::WouldBlock => return Next::Park(Interest::Read, core.config.read_timeout),
            IoStep::Closed => {
                if conn.buf.is_empty() {
                    // Peer hung up between requests: not an error.
                    return Next::Close;
                }
                reject(core, conn, HttpError::Malformed("truncated request"));
                continue;
            }
        }
    }
}

/// A parked deadline fired. Returns `false` when the connection should
/// just close (idle keep-alive, stalled response writer, shed drainer)
/// and `true` when a `408` has been queued for a stalled request.
fn on_timeout(core: &Core, conn: &mut Conn) -> bool {
    let mid_request = !conn.draining && conn.out_pos >= conn.out.len() && !conn.buf.is_empty();
    if !mid_request {
        return false;
    }
    if let Some(m) = &core.metrics {
        m.timeouts.inc();
    }
    conn.buf.clear();
    let resp = Response::error(Status::REQUEST_TIMEOUT, "request not received in time");
    send_response(core, conn, &resp, ("-", "-"), false);
    true
}

fn begin_request(core: &Core, conn: &mut Conn) {
    conn.active = true;
    conn.started = Instant::now();
    let now = core.shared.active.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(m) = &core.metrics {
        m.inflight.set(now as i64);
    }
}

/// A response left the building: count it served and retire the active
/// request (shed responses never come through here).
fn finish_response(core: &Core, conn: &mut Conn) {
    core.shared.served.fetch_add(1, Ordering::Relaxed);
    if conn.active {
        conn.active = false;
        let left = core.shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
        if let Some(m) = &core.metrics {
            m.inflight.set(left as i64);
        }
    }
}

/// Serialize `resp` into the connection's output buffer and emit the
/// access-log event. `line` is the logged method/path (placeholders for
/// pre-router rejections, matching the blocking engine).
fn send_response(
    core: &Core,
    conn: &mut Conn,
    resp: &Response,
    line: (&str, &str),
    keep_alive: bool,
) {
    conn.keep_alive = keep_alive;
    conn.out_pos = 0;
    resp.write_into(&mut conn.out, keep_alive);
    if let Some(o) = core.obs.as_deref() {
        if core.config.access_log {
            let dur = if conn.active {
                conn.started.elapsed().as_micros() as u64
            } else {
                0
            };
            o.events.record(
                epoch_secs(),
                "http.access",
                &[
                    ("method", line.0),
                    ("path", line.1),
                    ("status", &resp.status.0.to_string()),
                    ("bytes", &resp.body.len().to_string()),
                    ("duration_us", &dur.to_string()),
                ],
            );
        }
    }
}

fn respond(core: &Core, conn: &mut Conn, req: &mut Request) {
    if !conn.active {
        // Pipelined follow-up: the request completed out of already
        // buffered bytes without another read.
        begin_request(core, conn);
    }
    if conn.served > 0 {
        if let Some(m) = &core.metrics {
            m.keepalive.inc();
        }
    }
    let resp = core.router.dispatch(req);
    let keep_alive = req.wants_keep_alive() && !core.shared.stop.load(Ordering::SeqCst);
    let method = req.method.to_string();
    send_response(core, conn, &resp, (&method, &req.path), keep_alive);
    conn.served += 1;
}

/// Pre-router rejection (parse error / oversized body): mirrors the
/// blocking engine's status mapping and counters.
fn reject(core: &Core, conn: &mut Conn, e: HttpError) {
    if !conn.active {
        begin_request(core, conn);
    }
    let resp = match e {
        HttpError::TooLarge { declared, limit } => {
            if let Some(m) = &core.metrics {
                m.rejected_too_large.inc();
            }
            Response::error(
                Status::PAYLOAD_TOO_LARGE,
                format!("body of {declared} bytes exceeds limit {limit}"),
            )
        }
        other => {
            if let Some(m) = &core.metrics {
                m.rejected_bad.inc();
            }
            Response::error(Status::BAD_REQUEST, other.to_string())
        }
    };
    conn.buf.clear();
    send_response(core, conn, &resp, ("-", "-"), false);
}

fn flush(conn: &mut Conn) -> IoStep {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return IoStep::Closed,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return IoStep::WouldBlock,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return IoStep::Closed,
        }
    }
    IoStep::Progress
}

/// One chunked read into the request buffer.
fn fill(conn: &mut Conn) -> IoStep {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return IoStep::Closed,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                return IoStep::Progress;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return IoStep::WouldBlock,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return IoStep::Closed,
        }
    }
}

/// Discard request bytes from a half-closed shed connection until EOF.
fn sink(conn: &mut Conn) -> IoStep {
    let mut scratch = [0u8; 512];
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => return IoStep::Closed,
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return IoStep::WouldBlock,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return IoStep::Closed,
        }
    }
}
