//! Method + path-pattern routing with `:param` captures.

use crate::http::{Method, Request, Response, Status};
use std::collections::BTreeMap;

type Handler = Box<dyn Fn(&mut Request) -> Response + Send + Sync>;

struct Route {
    method: Method,
    /// Pattern segments; `:name` captures one segment.
    segments: Vec<String>,
    handler: Handler,
}

impl Route {
    fn matches(&self, method: Method, path: &str) -> Option<BTreeMap<String, String>> {
        if method != self.method {
            return None;
        }
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        if parts.len() != self.segments.len() {
            return None;
        }
        let mut params = BTreeMap::new();
        for (seg, part) in self.segments.iter().zip(&parts) {
            if let Some(name) = seg.strip_prefix(':') {
                params.insert(name.to_string(), crate::forms::url_decode(part));
            } else if seg != part {
                return None;
            }
        }
        Some(params)
    }
}

/// The router: ordered route list, first match wins.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a route; patterns look like `/api/jobs/:id/stdin`.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Response + Send + Sync + 'static,
    {
        let segments = pattern.split('/').filter(|s| !s.is_empty()).map(String::from).collect();
        self.routes.push(Route { method, segments, handler: Box::new(handler) });
        self
    }

    /// GET shorthand.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, handler)
    }

    /// POST shorthand.
    pub fn post<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, handler)
    }

    /// Dispatch a request: 404 when no pattern matches, 405 when the path
    /// matches under a different method.
    pub fn dispatch(&self, req: &mut Request) -> Response {
        for route in &self.routes {
            if let Some(params) = route.matches(req.method, &req.path) {
                req.params = params;
                return (route.handler)(req);
            }
        }
        // Distinguish 405 (path exists under another method) from 404.
        let parts: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let path_known = self.routes.iter().any(|r| {
            parts.len() == r.segments.len()
                && r.segments.iter().zip(&parts).all(|(seg, part)| seg.starts_with(':') || seg == part)
        });
        if path_known {
            Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed")
        } else {
            Response::error(Status::NOT_FOUND, format!("no route for {} {}", req.method, req.path))
        }
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/", |_| Response::text("home"));
        r.get("/jobs", |_| Response::text("list"));
        r.post("/jobs", |_| Response::text("create"));
        r.get("/jobs/:id", |req| Response::text(format!("job {}", req.param("id").unwrap())));
        r.post("/jobs/:id/stdin", |req| {
            Response::text(format!("stdin {} <- {}", req.param("id").unwrap(), req.body_str()))
        });
        r
    }

    fn get(r: &Router, path: &str) -> Response {
        let mut req = Request::synthetic(Method::Get, path, b"");
        r.dispatch(&mut req)
    }

    #[test]
    fn static_routes() {
        let r = router();
        assert_eq!(get(&r, "/").body_str(), "home");
        assert_eq!(get(&r, "/jobs").body_str(), "list");
    }

    #[test]
    fn method_distinguishes() {
        let r = router();
        let mut req = Request::synthetic(Method::Post, "/jobs", b"");
        assert_eq!(r.dispatch(&mut req).body_str(), "create");
    }

    #[test]
    fn params_captured_and_decoded() {
        let r = router();
        assert_eq!(get(&r, "/jobs/42").body_str(), "job 42");
        assert_eq!(get(&r, "/jobs/a%20b").body_str(), "job a b");
        let mut req = Request::synthetic(Method::Post, "/jobs/7/stdin", b"input!");
        assert_eq!(r.dispatch(&mut req).body_str(), "stdin 7 <- input!");
    }

    #[test]
    fn not_found_and_wrong_shape() {
        let r = router();
        assert_eq!(get(&r, "/nope").status, Status::NOT_FOUND);
        assert_eq!(get(&r, "/jobs/1/2/3").status, Status::NOT_FOUND);
    }

    #[test]
    fn trailing_slash_equivalence() {
        let r = router();
        assert_eq!(get(&r, "/jobs/").body_str(), "list");
    }

    #[test]
    fn first_match_wins() {
        let mut r = Router::new();
        r.get("/x/:a", |_| Response::text("first"));
        r.get("/x/specific", |_| Response::text("second"));
        assert_eq!(get(&r, "/x/specific").body_str(), "first");
        assert_eq!(r.len(), 2);
    }
}
