//! Method + path-pattern routing with `:param` captures.

use crate::http::{Method, Request, Response, Status};
use obs::Obs;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

type Handler = Box<dyn Fn(&mut Request) -> Response + Send + Sync>;

struct Route {
    method: Method,
    /// Pattern segments; `:name` captures one segment.
    segments: Vec<String>,
    /// Original pattern string, used as the low-cardinality `route` metric
    /// label (never the raw request path, which would explode the series).
    pattern: String,
    handler: Handler,
}

impl Route {
    fn matches(&self, method: Method, path: &str) -> Option<BTreeMap<String, String>> {
        if method != self.method {
            return None;
        }
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        if parts.len() != self.segments.len() {
            return None;
        }
        let mut params = BTreeMap::new();
        for (seg, part) in self.segments.iter().zip(&parts) {
            if let Some(name) = seg.strip_prefix(':') {
                params.insert(name.to_string(), crate::forms::url_decode(part));
            } else if seg != part {
                return None;
            }
        }
        Some(params)
    }
}

/// The router: ordered route list, first match wins.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    obs: Option<Arc<Obs>>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a route; patterns look like `/api/jobs/:id/stdin`.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Response + Send + Sync + 'static,
    {
        let segments = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        self.routes.push(Route {
            method,
            segments,
            pattern: pattern.to_string(),
            handler: Box::new(handler),
        });
        self
    }

    /// Record per-request telemetry into `obs`: a
    /// `ccp_httpd_requests_total{method,route,status}` counter and a
    /// `ccp_httpd_request_duration_us{route}` histogram per dispatch.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        obs.metrics.describe(
            "ccp_httpd_requests_total",
            "requests dispatched by method, route, and status",
        );
        obs.metrics.describe(
            "ccp_httpd_request_duration_us",
            "request handling latency per route",
        );
        obs.metrics
            .describe("ccp_httpd_inflight", "connections currently being handled");
        obs.metrics.gauge("ccp_httpd_inflight", &[]);
        self.obs = Some(obs);
    }

    /// The attached telemetry domain, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// GET shorthand.
    pub fn get<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Get, pattern, handler)
    }

    /// POST shorthand.
    pub fn post<F>(&mut self, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&mut Request) -> Response + Send + Sync + 'static,
    {
        self.add(Method::Post, pattern, handler)
    }

    /// Dispatch a request: 404 when no pattern matches, 405 when the path
    /// matches under a different method.
    pub fn dispatch(&self, req: &mut Request) -> Response {
        let started = self.obs.as_ref().map(|_| Instant::now());
        let (response, route_label) = self.dispatch_inner(req);
        if let (Some(obs), Some(started)) = (&self.obs, started) {
            let us = started.elapsed().as_micros() as u64;
            obs.metrics
                .counter(
                    "ccp_httpd_requests_total",
                    &[
                        ("method", &req.method.to_string()),
                        ("route", route_label),
                        ("status", &response.status.0.to_string()),
                    ],
                )
                .inc();
            obs.metrics
                .histogram(
                    "ccp_httpd_request_duration_us",
                    &[("route", route_label)],
                    obs::DURATION_US_BOUNDS,
                )
                .record(us);
        }
        response
    }

    /// The match loop, returning the response plus the metric route label.
    fn dispatch_inner<'a>(&'a self, req: &mut Request) -> (Response, &'a str) {
        for route in &self.routes {
            if let Some(params) = route.matches(req.method, &req.path) {
                req.params = params;
                return ((route.handler)(req), route.pattern.as_str());
            }
        }
        // Distinguish 405 (path exists under another method) from 404.
        let parts: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let path_known = self.routes.iter().any(|r| {
            parts.len() == r.segments.len()
                && r.segments
                    .iter()
                    .zip(&parts)
                    .all(|(seg, part)| seg.starts_with(':') || seg == part)
        });
        if path_known {
            (
                Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed"),
                "unmatched",
            )
        } else {
            (
                Response::error(
                    Status::NOT_FOUND,
                    format!("no route for {} {}", req.method, req.path),
                ),
                "unmatched",
            )
        }
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/", |_| Response::text("home"));
        r.get("/jobs", |_| Response::text("list"));
        r.post("/jobs", |_| Response::text("create"));
        r.get("/jobs/:id", |req| {
            Response::text(format!("job {}", req.param("id").unwrap()))
        });
        r.post("/jobs/:id/stdin", |req| {
            Response::text(format!(
                "stdin {} <- {}",
                req.param("id").unwrap(),
                req.body_str()
            ))
        });
        r
    }

    fn get(r: &Router, path: &str) -> Response {
        let mut req = Request::synthetic(Method::Get, path, b"");
        r.dispatch(&mut req)
    }

    #[test]
    fn static_routes() {
        let r = router();
        assert_eq!(get(&r, "/").body_str(), "home");
        assert_eq!(get(&r, "/jobs").body_str(), "list");
    }

    #[test]
    fn method_distinguishes() {
        let r = router();
        let mut req = Request::synthetic(Method::Post, "/jobs", b"");
        assert_eq!(r.dispatch(&mut req).body_str(), "create");
    }

    #[test]
    fn params_captured_and_decoded() {
        let r = router();
        assert_eq!(get(&r, "/jobs/42").body_str(), "job 42");
        assert_eq!(get(&r, "/jobs/a%20b").body_str(), "job a b");
        let mut req = Request::synthetic(Method::Post, "/jobs/7/stdin", b"input!");
        assert_eq!(r.dispatch(&mut req).body_str(), "stdin 7 <- input!");
    }

    #[test]
    fn not_found_and_wrong_shape() {
        let r = router();
        assert_eq!(get(&r, "/nope").status, Status::NOT_FOUND);
        assert_eq!(get(&r, "/jobs/1/2/3").status, Status::NOT_FOUND);
    }

    #[test]
    fn trailing_slash_equivalence() {
        let r = router();
        assert_eq!(get(&r, "/jobs/").body_str(), "list");
    }

    #[test]
    fn dispatch_records_route_labeled_metrics() {
        let mut r = router();
        let obs = Arc::new(Obs::new());
        r.set_obs(Arc::clone(&obs));
        get(&r, "/jobs/42");
        get(&r, "/jobs/43");
        get(&r, "/nope");
        // Parametrized paths collapse onto the pattern label.
        let hits = obs.metrics.counter(
            "ccp_httpd_requests_total",
            &[("method", "GET"), ("route", "/jobs/:id"), ("status", "200")],
        );
        assert_eq!(hits.get(), 2);
        let misses = obs.metrics.counter(
            "ccp_httpd_requests_total",
            &[("method", "GET"), ("route", "unmatched"), ("status", "404")],
        );
        assert_eq!(misses.get(), 1);
        let hist = obs.metrics.histogram(
            "ccp_httpd_request_duration_us",
            &[("route", "/jobs/:id")],
            obs::DURATION_US_BOUNDS,
        );
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn first_match_wins() {
        let mut r = Router::new();
        r.get("/x/:a", |_| Response::text("first"));
        r.get("/x/specific", |_| Response::text("second"));
        assert_eq!(get(&r, "/x/specific").body_str(), "first");
        assert_eq!(r.len(), 2);
    }
}
