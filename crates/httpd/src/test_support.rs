//! On-the-wire test helpers shared by the server/reactor tests here and
//! the integration suites downstream (webportal, smoke scripts). Not
//! part of the serving path; compiled into the library so other crates'
//! tests can use it without copy-pasting raw-socket plumbing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Open a connection, send `raw`, and read to EOF. The one-shot client
/// shape every pre-reactor test used inline.
///
/// # Panics
/// On any socket error — these helpers are for tests.
pub fn raw_request(addr: SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// Read exactly one HTTP response (head + `Content-Length` body) off a
/// stream, leaving the connection open — what keep-alive and pipelining
/// tests need, where `read_to_string` would block forever.
///
/// # Panics
/// On socket errors, EOF mid-response, or a malformed head.
pub fn read_response(s: &mut TcpStream) -> String {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = s.read(&mut byte).unwrap();
        assert!(n > 0, "eof before response head complete");
        head.push(byte[0]);
        assert!(head.len() < 64 << 10, "response head never terminated");
    }
    let head_str = String::from_utf8(head).unwrap();
    let mut len = 0usize;
    for line in head_str.lines() {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                len = v.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    head_str + &String::from_utf8_lossy(&body)
}
