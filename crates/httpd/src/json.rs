//! A JSON value type with parser and serializer.
//!
//! `serde_json` is not on the allowed dependency list, so the portal's API
//! endpoints use this hand-rolled codec. Covers RFC 8259 minus `\u` escapes
//! for non-BMP characters (the portal never emits them).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// null
    Null,
    /// true/false
    Bool(bool),
    /// Numbers are kept as f64 (adequate for the portal's counters).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand string.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand number.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(JsonError {
                at: p.i,
                message: "trailing characters".into(),
            });
        }
        Ok(v)
    }
}

/// Serialize a histogram-quantile estimate: `None` (empty histogram) maps
/// to `null`, a rank landing in the overflow bucket (`f64::INFINITY`, see
/// `Histogram::quantile` in the obs crate) maps to the string `"+Inf"` —
/// bare `inf` is not valid JSON — and finite values stay numbers.
pub fn quantile_json(q: Option<f64>) -> Json {
    match q {
        None => Json::Null,
        Some(v) if v.is_infinite() => Json::str("+Inf"),
        Some(v) => Json::num(v),
    }
}

/// JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.i,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("surrogate escapes unsupported"))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(self.err(format!("bad escape {other:?}"))),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("nonempty");
                    s.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            message: format!("bad number `{text}`"),
        })
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                escape_into(s, &mut out);
                write!(f, "\"{out}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut out = String::new();
                    escape_into(k, &mut out);
                    write!(f, "\"{out}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "roundtrip {text}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::str("line1\nline2\t\"quoted\" \\slash");
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse(r#""Ab""#).unwrap().as_str(), Some("Ab"));
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(Json::parse("1e3").unwrap().as_num(), Some(1000.0));
        assert_eq!(Json::parse("-2.5E-1").unwrap().as_num(), Some(-0.25));
    }

    #[test]
    fn integer_rendering_avoids_dot_zero() {
        assert_eq!(Json::num(5).to_string(), "5");
        assert_eq!(Json::num(5.5).to_string(), "5.5");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn object_keys_sorted_deterministically() {
        let v = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.to_string(), "{\"a\":2,\"z\":1}");
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![("ok", Json::Bool(true)), ("n", Json::num(3))]);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::Bool(true).as_str(), None);
    }

    #[test]
    fn non_ascii_preserved() {
        let v = Json::parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
