//! # httpd — a hand-rolled HTTP/1.1 server substrate
//!
//! "The means of remote access to the cluster resources are provided by the
//! use of a web browser" (§I). No HTTP framework is on the allowed
//! dependency list, so this crate implements the slice of HTTP/1.1 the
//! portal needs, from `std::net` up:
//!
//! * [`http`] — request parsing / response serialization, status codes;
//! * [`router`] — method + path-pattern routing with `:param` captures;
//! * [`server`] — a threaded TCP accept loop with graceful shutdown;
//! * [`json`] — a JSON value type, parser and serializer (RFC 8259 subset:
//!   no surrogate-pair escapes);
//! * [`forms`] — query strings, urlencoded bodies, cookies;
//! * [`html`] — escaping and tiny page-assembly helpers.

pub mod forms;
pub mod html;
pub mod http;
pub mod json;
pub mod router;
pub mod server;

pub use http::{Method, Request, Response, Status};
pub use json::Json;
pub use router::Router;
pub use server::{Server, ServerConfig, ServerHandle};
