//! # httpd — a hand-rolled HTTP/1.1 server substrate
//!
//! "The means of remote access to the cluster resources are provided by the
//! use of a web browser" (§I). No HTTP framework is on the allowed
//! dependency list, so this crate implements the slice of HTTP/1.1 the
//! portal needs, from `std::net` up:
//!
//! * [`http`] — request parsing (blocking and incremental) / response
//!   serialization, status codes;
//! * [`router`] — method + path-pattern routing with `:param` captures;
//! * [`server`] — the front end: an epoll reactor with an M:N green-task
//!   worker pool where supported, thread-per-connection elsewhere, with
//!   graceful shutdown either way;
//! * [`sys`] — raw epoll/eventfd readiness primitives (no `libc`);
//! * [`wheel`] — the timer wheel enforcing per-connection deadlines;
//! * [`json`] — a JSON value type, parser and serializer (RFC 8259 subset:
//!   no surrogate-pair escapes);
//! * [`forms`] — query strings, urlencoded bodies, cookies;
//! * [`html`] — escaping and tiny page-assembly helpers.

pub mod forms;
pub mod html;
pub mod http;
pub mod json;
mod reactor;
pub mod router;
pub mod server;
pub mod sys;
pub mod test_support;
pub mod wheel;

pub use http::{Method, Request, Response, Status};
pub use json::Json;
pub use router::Router;
pub use server::{Engine, Server, ServerConfig, ServerHandle};
