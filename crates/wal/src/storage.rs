//! Storage backends for the journal: a trait, a production file backend and
//! an in-memory backend with torn-write crash injection for tests.

use crate::journal::WalError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Where journal bytes live. The journal is written through this trait so
/// tests can substitute an in-memory backend that models torn writes: bytes
/// appended but not yet synced may partially survive a crash.
///
/// `Sync` is required so a portal holding a journal can sit behind a
/// reader-writer lock; every method takes `&mut self`, so implementors get
/// it for free unless they contain unsynchronized interior mutability.
pub trait WalStorage: std::fmt::Debug + Send + Sync {
    /// Append raw bytes to the log (buffered; not durable until [`sync`]).
    ///
    /// [`sync`]: WalStorage::sync
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;
    /// Make every appended byte durable.
    fn sync(&mut self) -> Result<(), WalError>;
    /// Read the entire log as currently stored.
    fn read_log(&mut self) -> Result<Vec<u8>, WalError>;
    /// Truncate the log to `len` bytes (drops a torn/corrupt tail).
    fn truncate_log(&mut self, len: u64) -> Result<(), WalError>;
    /// Drop the whole log (after its contents were folded into a snapshot).
    fn reset_log(&mut self) -> Result<(), WalError>;
    /// Atomically replace the snapshot blob.
    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), WalError>;
    /// Read the current snapshot blob, if one exists.
    fn read_snapshot(&mut self) -> Result<Option<Vec<u8>>, WalError>;
    /// Current log length in bytes.
    fn log_len(&self) -> Result<u64, WalError>;
}

// ---- production backend: real files ------------------------------------

/// File-backed storage: `<dir>/<name>.wal` for the log, `<dir>/<name>.snap`
/// for the snapshot (replaced via write-to-temp + rename).
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    name: String,
    log: File,
}

impl FileStorage {
    /// Open (creating as needed) the log for stream `name` under `dir`.
    pub fn open(dir: impl AsRef<Path>, name: &str) -> Result<FileStorage, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(format!("{name}.wal")))?;
        Ok(FileStorage {
            dir,
            name: name.to_string(),
            log,
        })
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(format!("{}.wal", self.name))
    }

    fn snap_path(&self) -> PathBuf {
        self.dir.join(format!("{}.snap", self.name))
    }
}

impl WalStorage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.log.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.log.sync_data()?;
        Ok(())
    }

    fn read_log(&mut self) -> Result<Vec<u8>, WalError> {
        Ok(std::fs::read(self.log_path())?)
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), WalError> {
        self.log.set_len(len)?;
        self.log.sync_data()?;
        Ok(())
    }

    fn reset_log(&mut self) -> Result<(), WalError> {
        self.truncate_log(0)
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let tmp = self.dir.join(format!("{}.snap.tmp", self.name));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.snap_path())?;
        // Best-effort directory sync so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn read_snapshot(&mut self) -> Result<Option<Vec<u8>>, WalError> {
        match std::fs::read(self.snap_path()) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn log_len(&self) -> Result<u64, WalError> {
        Ok(std::fs::metadata(self.log_path())?.len())
    }
}

// ---- test backend: in-memory with crash injection ----------------------

#[derive(Debug, Default)]
struct MemBacking {
    log: Vec<u8>,
    /// Prefix of `log` that has been fsynced (guaranteed to survive a crash).
    synced_len: usize,
    snap: Option<Vec<u8>>,
}

/// In-memory storage whose backing survives the `Journal` that owns it:
/// clones share the same backing, so a test can keep a handle, "crash" the
/// journal at an arbitrary byte boundary, and reopen from the survivors.
///
/// Crash model: synced bytes always survive; unsynced appended bytes survive
/// only up to the cut point chosen by [`MemStorage::crash`] (a torn write).
/// Snapshot replacement is modelled as atomic, mirroring the rename-based
/// file backend.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemBacking>>,
}

impl MemStorage {
    /// Fresh empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    // A poisoned lock only means another test thread panicked mid-write;
    // the bytes themselves are still the best available truth.
    fn lock(&self) -> MutexGuard<'_, MemBacking> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Simulate a crash: unsynced bytes past `pending_kept` are lost (a torn
    /// tail write), everything surviving is treated as durable on "disk".
    pub fn crash(&self, pending_kept: usize) {
        let mut b = self.lock();
        let keep = b.log.len().min(b.synced_len + pending_kept);
        b.log.truncate(keep);
        b.synced_len = keep;
    }

    /// Flip every bit of one stored log byte (bit-rot injection).
    pub fn corrupt_byte(&self, offset: usize) {
        let mut b = self.lock();
        if let Some(byte) = b.log.get_mut(offset) {
            *byte ^= 0xff;
        }
    }

    /// Total log bytes currently stored (synced + pending).
    pub fn log_bytes(&self) -> usize {
        self.lock().log.len()
    }

    /// Log bytes guaranteed durable.
    pub fn synced_bytes(&self) -> usize {
        self.lock().synced_len
    }
}

impl WalStorage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.lock().log.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let mut b = self.lock();
        b.synced_len = b.log.len();
        Ok(())
    }

    fn read_log(&mut self) -> Result<Vec<u8>, WalError> {
        Ok(self.lock().log.clone())
    }

    fn truncate_log(&mut self, len: u64) -> Result<(), WalError> {
        let mut b = self.lock();
        b.log.truncate(len as usize);
        b.synced_len = b.synced_len.min(len as usize);
        Ok(())
    }

    fn reset_log(&mut self) -> Result<(), WalError> {
        let mut b = self.lock();
        b.log.clear();
        b.synced_len = 0;
        Ok(())
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.lock().snap = Some(bytes.to_vec());
        Ok(())
    }

    fn read_snapshot(&mut self) -> Result<Option<Vec<u8>>, WalError> {
        Ok(self.lock().snap.clone())
    }

    fn log_len(&self) -> Result<u64, WalError> {
        Ok(self.lock().log.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_cuts_pending_only() {
        let mut s = MemStorage::new();
        s.append(b"durable").unwrap();
        s.sync().unwrap();
        s.append(b"pending").unwrap();
        let handle = s.clone();
        handle.crash(3);
        assert_eq!(s.read_log().unwrap(), b"durablepen");
        assert_eq!(handle.synced_bytes(), 10);
    }

    #[test]
    fn mem_snapshot_roundtrip_and_reset() {
        let mut s = MemStorage::new();
        assert_eq!(s.read_snapshot().unwrap(), None);
        s.write_snapshot(b"state").unwrap();
        s.append(b"tail").unwrap();
        s.reset_log().unwrap();
        assert_eq!(s.read_snapshot().unwrap().unwrap(), b"state");
        assert_eq!(s.log_len().unwrap(), 0);
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = FileStorage::open(&dir, "t").unwrap();
            s.append(b"abc").unwrap();
            s.sync().unwrap();
            s.write_snapshot(b"snap").unwrap();
        }
        {
            let mut s = FileStorage::open(&dir, "t").unwrap();
            assert_eq!(s.read_log().unwrap(), b"abc");
            assert_eq!(s.read_snapshot().unwrap().unwrap(), b"snap");
            s.truncate_log(1).unwrap();
            assert_eq!(s.read_log().unwrap(), b"a");
            s.reset_log().unwrap();
            assert_eq!(s.log_len().unwrap(), 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
