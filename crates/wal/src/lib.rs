//! # wal — durable portal state
//!
//! An append-only, checksummed, length-prefixed record log with group-commit
//! batching, periodic snapshot + compaction, and cold-start recovery that
//! truncates torn trailing records. `vfs` and `sched` log every mutating
//! operation through a [`Journal`]; on boot the portal replays the latest
//! valid snapshot plus the log tail and reports what it found.
//!
//! The storage boundary is the [`WalStorage`] trait: production uses
//! [`FileStorage`] (real files, tmp-write + rename snapshots), tests use
//! [`MemStorage`] whose crash injection cuts unsynced bytes at an arbitrary
//! boundary — the torn-write model the recovery path is proven against.
//!
//! ```
//! use wal::{FsyncPolicy, Journal, MemStorage};
//!
//! let storage = MemStorage::new();
//! let (mut j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 0).unwrap();
//! j.append(b"create /home/alice").unwrap();
//! drop(j); // "crash"
//! let (_, recovered) = Journal::open(Box::new(storage), FsyncPolicy::Always, 0).unwrap();
//! assert_eq!(recovered.records[0].1, b"create /home/alice");
//! ```

pub mod codec;
pub mod journal;
pub mod storage;

pub use codec::{fnv1a64, CodecError, Dec, Enc};
pub use journal::{FsyncPolicy, Journal, JournalHooks, Lsn, Recovered, RecoveryReport, WalError};
pub use storage::{FileStorage, MemStorage, WalStorage};
