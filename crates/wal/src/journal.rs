//! The journal proper: append, group-commit fsync, snapshot + compaction,
//! and cold-start recovery with torn-tail truncation.
//!
//! # On-disk record format
//!
//! ```text
//! [len: u32 LE] [lsn: u64 LE] [crc: u64 LE] [payload: len-16 bytes]
//! ```
//!
//! `len` counts everything after itself; `crc` is FNV-1a 64 over the LSN
//! bytes followed by the payload. LSNs are assigned monotonically from 1
//! and never reused — a snapshot records the LSN it covers, and the log is
//! reset so the tail holds exactly the records after it.

use crate::codec::fnv1a64;
use crate::storage::WalStorage;
use std::fmt;
use std::time::Instant;

/// Log sequence number: 1-based, strictly monotonic per journal.
pub type Lsn = u64;

/// Record header bytes after the length field (lsn + crc).
const RECORD_HEADER: usize = 16;
/// Upper bound on a single record, to reject garbage lengths early.
const MAX_RECORD: u32 = 1 << 30;
/// Snapshot blob magic: "CCPW".
const SNAP_MAGIC: u32 = 0x4343_5057;
const SNAP_VERSION: u32 = 1;

/// Everything that can go wrong in the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying storage failed (message carries the OS error).
    Io(String),
    /// Stored bytes did not parse as a valid record stream.
    Corrupt(&'static str),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "wal i/o error: {m}"),
            WalError::Corrupt(m) => write!(f, "wal corruption: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

/// When appended records hit the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append (safest, slowest).
    Always,
    /// Group commit: sync once every `n` appends (and on [`Journal::flush`]).
    EveryN(u64),
    /// Never sync implicitly; only [`Journal::flush`] makes data durable.
    Never,
}

/// What recovery found and did, surfaced through `Portal` and `/api/health`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN covered by the snapshot that seeded recovery, if one was loaded.
    pub snapshot_lsn: Option<Lsn>,
    /// A snapshot blob existed but failed validation and was ignored.
    pub snapshot_corrupt: bool,
    /// Valid tail records replayed after the snapshot.
    pub records_replayed: u64,
    /// Trailing bytes discarded as a torn (incomplete) final write.
    pub torn_bytes: u64,
    /// Records dropped for checksum/sequence violations (recovery stops at
    /// the first bad record; everything after it is discarded too).
    pub corrupt_records: u64,
    /// Highest LSN reconstructed (snapshot + tail).
    pub last_lsn: Lsn,
    /// Wall time spent reading and validating, in microseconds.
    pub wall_us: u64,
    /// Replay callbacks that failed at the subsystem layer (filled in by the
    /// owner applying the records; always 0 straight out of [`Journal::open`]).
    pub replay_errors: u64,
}

/// The state recovered by [`Journal::open`], for the owner to apply.
#[derive(Debug)]
pub struct Recovered {
    /// Validated snapshot payload, if one was stored.
    pub snapshot: Option<Vec<u8>>,
    /// Valid tail records in LSN order.
    pub records: Vec<(Lsn, Vec<u8>)>,
    /// What happened during recovery.
    pub report: RecoveryReport,
}

/// Telemetry callbacks so the durability layer stays metrics-agnostic; the
/// portal wires these to `ccp_wal_*` counters.
pub trait JournalHooks: Send + Sync {
    /// One record appended (`bytes` = full framed size).
    fn on_append(&self, bytes: u64);
    /// One fsync issued.
    fn on_fsync(&self);
    /// One snapshot installed (log compacted).
    fn on_snapshot(&self);
    /// Wall-clock time one group commit spent waiting on the storage sync,
    /// for contention profiling. Default: ignored.
    fn on_fsync_wait(&self, _us: u64) {}
}

/// An append-only checksummed record log over a [`WalStorage`].
pub struct Journal {
    storage: Box<dyn WalStorage>,
    fsync: FsyncPolicy,
    snapshot_interval: u64,
    next_lsn: Lsn,
    durable_lsn: Lsn,
    appends_since_sync: u64,
    records_since_snapshot: u64,
    hooks: Option<Box<dyn JournalHooks>>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("storage", &self.storage)
            .field("fsync", &self.fsync)
            .field("snapshot_interval", &self.snapshot_interval)
            .field("next_lsn", &self.next_lsn)
            .field("durable_lsn", &self.durable_lsn)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Open a journal over `storage`, recovering whatever it holds: load the
    /// latest valid snapshot, parse the tail, truncate any torn or corrupt
    /// suffix, and hand back the pieces for the owner to replay.
    ///
    /// `snapshot_interval` is the number of appended records after which
    /// [`Journal::wants_snapshot`] turns true (0 disables auto-compaction).
    pub fn open(
        mut storage: Box<dyn WalStorage>,
        fsync: FsyncPolicy,
        snapshot_interval: u64,
    ) -> Result<(Journal, Recovered), WalError> {
        let t0 = Instant::now();
        let mut report = RecoveryReport::default();

        // 1. Snapshot: magic/version/lsn/crc-validated payload, or nothing.
        let mut snapshot = None;
        let mut base_lsn: Lsn = 0;
        if let Some(blob) = storage.read_snapshot()? {
            match parse_snapshot(&blob) {
                Some((lsn, payload)) => {
                    base_lsn = lsn;
                    report.snapshot_lsn = Some(lsn);
                    snapshot = Some(payload);
                }
                None => report.snapshot_corrupt = true,
            }
        }

        // 2. Tail records: stop at the first torn or invalid record and
        //    truncate the log back to the last valid prefix, so a second
        //    recovery of the same storage is a no-op (idempotence).
        let log = storage.read_log()?;
        let mut records = Vec::new();
        let mut off = 0usize;
        let mut expected = base_lsn + 1;
        loop {
            let remaining = log.len() - off;
            if remaining == 0 {
                break;
            }
            if remaining < 4 {
                report.torn_bytes = remaining as u64;
                break;
            }
            let len = u32::from_le_bytes([log[off], log[off + 1], log[off + 2], log[off + 3]]);
            if len < RECORD_HEADER as u32 || len > MAX_RECORD {
                report.corrupt_records = 1;
                report.torn_bytes = remaining as u64;
                break;
            }
            if remaining - 4 < len as usize {
                report.torn_bytes = remaining as u64;
                break;
            }
            let body = &log[off + 4..off + 4 + len as usize];
            let lsn = u64::from_le_bytes(body[..8].try_into().expect("8-byte slice"));
            let crc = u64::from_le_bytes(body[8..16].try_into().expect("8-byte slice"));
            let payload = &body[16..];
            if crc != fnv1a64(&[&body[..8], payload]) || lsn != expected {
                report.corrupt_records = 1;
                report.torn_bytes = remaining as u64;
                break;
            }
            records.push((lsn, payload.to_vec()));
            expected += 1;
            off += 4 + len as usize;
        }
        if off < log.len() {
            storage.truncate_log(off as u64)?;
        }
        storage.sync()?;

        report.records_replayed = records.len() as u64;
        report.last_lsn = expected - 1;
        report.wall_us = t0.elapsed().as_micros() as u64;

        let journal = Journal {
            storage,
            fsync,
            snapshot_interval,
            next_lsn: expected,
            durable_lsn: expected - 1,
            appends_since_sync: 0,
            records_since_snapshot: records.len() as u64,
            hooks: None,
        };
        Ok((
            journal,
            Recovered {
                snapshot,
                records,
                report,
            },
        ))
    }

    /// Attach telemetry callbacks (builder style).
    pub fn with_hooks(mut self, hooks: Box<dyn JournalHooks>) -> Journal {
        self.hooks = Some(hooks);
        self
    }

    /// Append one payload as a framed record; returns its LSN. Durability
    /// follows the [`FsyncPolicy`] — an `Ok` here means written, not
    /// necessarily synced (check [`Journal::durable_lsn`]).
    pub fn append(&mut self, payload: &[u8]) -> Result<Lsn, WalError> {
        let lsn = self.next_lsn;
        let lsn_bytes = lsn.to_le_bytes();
        let crc = fnv1a64(&[&lsn_bytes, payload]);
        let len = (RECORD_HEADER + payload.len()) as u32;
        let mut rec = Vec::with_capacity(4 + len as usize);
        rec.extend_from_slice(&len.to_le_bytes());
        rec.extend_from_slice(&lsn_bytes);
        rec.extend_from_slice(&crc.to_le_bytes());
        rec.extend_from_slice(payload);
        self.storage.append(&rec)?;
        self.next_lsn += 1;
        self.appends_since_sync += 1;
        self.records_since_snapshot += 1;
        if let Some(h) = &self.hooks {
            h.on_append(rec.len() as u64);
        }
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let t0 = Instant::now();
        self.storage.sync()?;
        let wait_us = t0.elapsed().as_micros() as u64;
        self.durable_lsn = self.next_lsn - 1;
        self.appends_since_sync = 0;
        if let Some(h) = &self.hooks {
            h.on_fsync();
            h.on_fsync_wait(wait_us);
        }
        Ok(())
    }

    /// Force everything appended so far to durable storage.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.durable_lsn + 1 < self.next_lsn {
            self.sync()?;
        }
        Ok(())
    }

    /// Has the journal accumulated enough records to warrant a snapshot?
    pub fn wants_snapshot(&self) -> bool {
        self.snapshot_interval > 0 && self.records_since_snapshot >= self.snapshot_interval
    }

    /// Install a snapshot of the owner's full state as of the last appended
    /// record, then compact: the log is reset and replay will start from
    /// this snapshot.
    pub fn install_snapshot(&mut self, state: &[u8]) -> Result<(), WalError> {
        let covered = self.next_lsn - 1;
        let blob = build_snapshot(covered, state);
        self.storage.write_snapshot(&blob)?;
        self.storage.reset_log()?;
        self.storage.sync()?;
        self.durable_lsn = covered;
        self.appends_since_sync = 0;
        self.records_since_snapshot = 0;
        if let Some(h) = &self.hooks {
            h.on_snapshot();
        }
        Ok(())
    }

    /// Highest LSN ever assigned (0 if nothing was logged).
    pub fn last_lsn(&self) -> Lsn {
        self.next_lsn - 1
    }

    /// Highest LSN guaranteed durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn
    }
}

fn build_snapshot(lsn: Lsn, state: &[u8]) -> Vec<u8> {
    let crc = fnv1a64(&[state]);
    let mut blob = Vec::with_capacity(24 + state.len());
    blob.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    blob.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    blob.extend_from_slice(&lsn.to_le_bytes());
    blob.extend_from_slice(&crc.to_le_bytes());
    blob.extend_from_slice(state);
    blob
}

fn parse_snapshot(blob: &[u8]) -> Option<(Lsn, Vec<u8>)> {
    if blob.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(blob[0..4].try_into().ok()?);
    let version = u32::from_le_bytes(blob[4..8].try_into().ok()?);
    if magic != SNAP_MAGIC || version != SNAP_VERSION {
        return None;
    }
    let lsn = u64::from_le_bytes(blob[8..16].try_into().ok()?);
    let crc = u64::from_le_bytes(blob[16..24].try_into().ok()?);
    let state = &blob[24..];
    if crc != fnv1a64(&[state]) {
        return None;
    }
    Some((lsn, state.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn open_mem(s: &MemStorage, fsync: FsyncPolicy, interval: u64) -> (Journal, Recovered) {
        Journal::open(Box::new(s.clone()), fsync, interval).expect("open")
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let s = MemStorage::new();
        let (j, rec) = open_mem(&s, FsyncPolicy::Always, 0);
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(
            rec.report,
            RecoveryReport {
                wall_us: rec.report.wall_us,
                ..RecoveryReport::default()
            }
        );
        assert_eq!(j.last_lsn(), 0);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::Always, 0);
        assert_eq!(j.append(b"one").unwrap(), 1);
        assert_eq!(j.append(b"two").unwrap(), 2);
        assert_eq!(j.durable_lsn(), 2);
        drop(j);
        let (j, rec) = open_mem(&s, FsyncPolicy::Always, 0);
        assert_eq!(
            rec.records,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
        assert_eq!(rec.report.records_replayed, 2);
        assert_eq!(rec.report.torn_bytes, 0);
        assert_eq!(j.last_lsn(), 2);
    }

    #[test]
    fn group_commit_syncs_every_n() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::EveryN(3), 0);
        j.append(b"a").unwrap();
        j.append(b"b").unwrap();
        assert_eq!(j.durable_lsn(), 0, "first two appends still pending");
        j.append(b"c").unwrap();
        assert_eq!(j.durable_lsn(), 3, "third append triggered group commit");
        j.append(b"d").unwrap();
        assert_eq!(j.durable_lsn(), 3);
        j.flush().unwrap();
        assert_eq!(j.durable_lsn(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_second_recovery_is_clean() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::Never, 0);
        j.append(b"solid").unwrap();
        j.flush().unwrap();
        j.append(b"lost-in-the-crash").unwrap();
        drop(j);
        s.crash(7); // keep 7 bytes of the unsynced record: torn mid-frame
        let before = s.log_bytes();
        let (_, rec) = open_mem(&s, FsyncPolicy::Never, 0);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].1, b"solid");
        assert_eq!(rec.report.torn_bytes, 7);
        assert_eq!(rec.report.last_lsn, 1);
        assert_eq!(s.log_bytes(), before - 7, "torn tail physically removed");
        // Double recovery: the truncated log now parses cleanly.
        let (_, rec2) = open_mem(&s, FsyncPolicy::Never, 0);
        assert_eq!(rec2.records.len(), 1);
        assert_eq!(rec2.report.torn_bytes, 0);
        assert_eq!(rec2.report.corrupt_records, 0);
    }

    #[test]
    fn mid_log_corruption_stops_at_first_bad_record() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::Always, 0);
        j.append(b"first").unwrap();
        let second_starts = s.log_bytes();
        j.append(b"second").unwrap();
        j.append(b"third").unwrap();
        drop(j);
        // Flip a payload byte inside record 2: crc must catch it, and
        // record 3 (intact) must NOT be replayed past the damage.
        s.corrupt_byte(second_starts + 4 + 16);
        let (_, rec) = open_mem(&s, FsyncPolicy::Always, 0);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].1, b"first");
        assert_eq!(rec.report.corrupt_records, 1);
        assert!(rec.report.torn_bytes > 0);
        assert_eq!(rec.report.last_lsn, 1);
    }

    #[test]
    fn snapshot_compacts_and_seeds_recovery() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::Always, 2);
        j.append(b"op1").unwrap();
        assert!(!j.wants_snapshot());
        j.append(b"op2").unwrap();
        assert!(j.wants_snapshot());
        j.install_snapshot(b"state-after-2").unwrap();
        assert_eq!(s.log_bytes(), 0, "log compacted away");
        j.append(b"op3").unwrap();
        drop(j);
        let (j, rec) = open_mem(&s, FsyncPolicy::Always, 2);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state-after-2"[..]));
        assert_eq!(rec.report.snapshot_lsn, Some(2));
        assert_eq!(rec.records, vec![(3, b"op3".to_vec())]);
        assert_eq!(j.last_lsn(), 3);
    }

    #[test]
    fn snapshot_only_recovery_empty_tail() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::Always, 0);
        j.append(b"a").unwrap();
        j.install_snapshot(b"S").unwrap();
        drop(j);
        let (j, rec) = open_mem(&s, FsyncPolicy::Always, 0);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"S"[..]));
        assert!(rec.records.is_empty());
        assert_eq!(rec.report.records_replayed, 0);
        assert_eq!(rec.report.last_lsn, 1);
        assert_eq!(j.last_lsn(), 1);
    }

    #[test]
    fn corrupt_snapshot_is_ignored_and_flagged() {
        let s = MemStorage::new();
        {
            let mut h = s.clone();
            h.write_snapshot(b"not a snapshot blob").unwrap();
        }
        let (_, rec) = open_mem(&s, FsyncPolicy::Always, 0);
        assert!(rec.snapshot.is_none());
        assert!(rec.report.snapshot_corrupt);
    }

    #[test]
    fn lsn_sequence_violation_detected() {
        let s = MemStorage::new();
        let (mut j, _) = open_mem(&s, FsyncPolicy::Always, 0);
        j.append(b"x").unwrap();
        j.install_snapshot(b"S").unwrap(); // covers lsn 1; log reset
        drop(j);
        // A stale snapshot (never written again) with a fresh journal whose
        // records restart at 1 would misalign; simulate by wiping the
        // snapshot so the tail's LSNs no longer chain from base 0.
        // (Records after compaction start at 2; without the snapshot the
        // expected first LSN is 1.)
        let (mut j, _) = open_mem(&s, FsyncPolicy::Always, 0);
        j.append(b"y").unwrap(); // lsn 2, in the log
        drop(j);
        {
            let mut h = s.clone();
            h.write_snapshot(b"garbage").unwrap(); // invalidates the snapshot
        }
        let (_, rec) = open_mem(&s, FsyncPolicy::Always, 0);
        assert!(rec.report.snapshot_corrupt);
        assert_eq!(
            rec.report.corrupt_records, 1,
            "lsn 2 cannot follow base 0 without its snapshot"
        );
        assert!(rec.records.is_empty());
    }
}
