//! Hand-rolled little-endian binary codec for WAL payloads and snapshots.
//!
//! No format crate: records are short-lived internal artifacts whose layout
//! is pinned by DESIGN.md §10, and a ~100-line encoder keeps the durability
//! layer dependency-free (and auditable byte by byte).

use std::fmt;

/// Decoding failure: the buffer did not match the expected layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed record: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => self.bool(true).u64(x),
            None => self.bool(false),
        }
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Append an optional length-prefixed string.
    pub fn opt_str(&mut self, v: Option<&str>) -> &mut Self {
        match v {
            Some(s) => self.bool(true).str(s),
            None => self.bool(false),
        }
    }
}

/// Cursor-based decoder over an encoded buffer.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool byte (anything non-zero is true).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError("invalid utf-8"))
    }

    /// Read an optional length-prefixed string.
    pub fn opt_str(&mut self) -> Result<Option<String>, CodecError> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }
}

/// FNV-1a 64-bit checksum over `parts`, concatenated in order.
pub fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shapes() {
        let mut e = Enc::new();
        e.u8(7)
            .bool(true)
            .u32(0xdead_beef)
            .u64(u64::MAX)
            .opt_u64(Some(42))
            .opt_u64(None)
            .bytes(b"raw")
            .str("héllo")
            .opt_str(Some("x"))
            .opt_str(None);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.opt_u64().unwrap(), Some(42));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.bytes().unwrap(), b"raw");
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.opt_str().unwrap().as_deref(), Some("x"));
        assert_eq!(d.opt_str().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..4]);
        assert_eq!(d.u64(), Err(CodecError("truncated")));
    }

    #[test]
    fn trailing_bytes_detected() {
        let d = Dec::new(b"x");
        assert!(d.finish().is_err());
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
        // Split points don't matter.
        assert_eq!(fnv1a64(&[b"foo", b"bar"]), fnv1a64(&[b"foobar"]));
    }
}
