//! Portal-wide telemetry substrate.
//!
//! Three cooperating pieces, bundled into an [`Obs`] handle that every layer
//! of the portal shares through an `Arc`:
//!
//! - [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms, rendered in Prometheus text exposition format. Handles are
//!   `Arc`-backed atomics, so the hot path after registration is a single
//!   atomic op with no lock.
//! - [`Tracer`] — span records (begin/end, parent links) and zero-duration
//!   point events with attributes, kept in a bounded ring buffer. Timestamps
//!   are caller-supplied, so under the simulated clock the trace is exactly
//!   as deterministic as the scheduler producing it.
//! - [`EventLog`] — structured operational events (access-log lines, admin
//!   actions), also ring-buffered.
//!
//! On top of the instruments sit the continuous-observability pieces:
//!
//! - [`TimeSeriesStore`] — a bounded ring of periodic registry captures
//!   keyed by the logical clock, with windowed delta/rate/quantile queries;
//! - [`SloEngine`] — declarative objectives evaluated over the store with
//!   multi-window burn-rate alerting;
//! - [`Profiler`] — wall-clock lock-wait and slow-op timing for the hot
//!   paths, with a bounded slowest-ops log.
//!
//! Naming convention for metric families: `ccp_<crate>_<thing>_<unit>`,
//! e.g. `ccp_sched_job_wait_ticks`, `ccp_httpd_request_duration_us`.

mod events;
mod metrics;
mod profiler;
mod slo;
mod trace;
mod tsdb;

pub use events::{Event, EventLog};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSample, MetricsRegistry, SampleValue, SeriesSample,
};
pub use profiler::{Profiler, SlowOp, DEFAULT_SLOW_OP_THRESHOLD_US, PROFILE_SITES};
pub use slo::{Alert, SloEngine, SloKind, SloSpec};
pub use trace::{Span, SpanId, TraceContext, Tracer};
pub use tsdb::{TimeSeriesStore, TsSample};

/// Bucket bounds (inclusive upper edges) for wall-clock durations in
/// microseconds: 50µs .. 1s.
pub const DURATION_US_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Bucket bounds for simulated-clock durations in ticks.
pub const TICK_BOUNDS: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500];

/// Bucket bounds for VM instruction counts.
pub const INSTRUCTION_BOUNDS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Bucket bounds for small cardinalities (cores per allocation, etc).
pub const SMALL_COUNT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// One telemetry domain: a metrics registry, a tracer, and an event log.
///
/// Cheap to share (`Arc<Obs>`); every recording method takes `&self`.
pub struct Obs {
    pub metrics: MetricsRegistry,
    pub tracer: Tracer,
    pub events: EventLog,
    pub profiler: Profiler,
}

impl Obs {
    /// Default capacities: 4096 spans, 1024 events.
    pub fn new() -> Self {
        let metrics = MetricsRegistry::new();
        let profiler = Profiler::new(&metrics);
        Obs {
            metrics,
            tracer: Tracer::new(4096),
            events: EventLog::new(1024),
            profiler,
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("series", &self.metrics.series_count())
            .field("spans", &self.tracer.len())
            .field("events", &self.events.len())
            .finish()
    }
}
