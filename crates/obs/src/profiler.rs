//! Contention + slow-op profiler: lightweight lock-wait / critical-section
//! timing around the portal's hot paths.
//!
//! Each instrumented *site* (registry sampling, the sched tick, the pool's
//! steal loop, WAL group commit, …) gets a pre-registered
//! `ccp_lock_wait_us{site=…}` histogram and a `ccp_slow_ops_total{site=…}`
//! counter, so the families appear in `/api/metrics` from the first scrape.
//! Recording is one atomic histogram update; only operations that cross the
//! slow-op threshold pay for a detail string and a bounded slowest-ops log
//! entry (served at `/api/admin/slow`).
//!
//! The recorded values are wall-clock and therefore *not* deterministic —
//! they are exported for operators, never fed into the deterministic
//! dashboard panels or SLO evaluation, and never recorded from inside the
//! scheduler's simulated-clock state machine.

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::DURATION_US_BOUNDS;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Instrumented sites, fixed at construction so every family is eagerly
/// registered.
pub const PROFILE_SITES: &[&str] = &[
    "pool.steal",
    "pool.task",
    "portal.lock",
    "registry.sample",
    "sched.tick",
    "vfs.lock",
    "wal.commit",
];

/// Default threshold above which an operation is logged as slow.
pub const DEFAULT_SLOW_OP_THRESHOLD_US: u64 = 1_000;

/// How many slowest operations the log retains.
const SLOW_LOG_CAPACITY: usize = 32;

/// One operation that crossed the slow-op threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowOp {
    /// Which instrumented site it came from (one of [`PROFILE_SITES`]).
    pub site: &'static str,
    /// Wall-clock duration in microseconds.
    pub us: u64,
    /// Site-specific detail (job id, worker index, byte count, …).
    pub detail: String,
}

struct SiteHandles {
    wait: Histogram,
    slow: Counter,
}

/// Wall-clock profiler shared through [`crate::Obs`]. All methods take
/// `&self`; the hot path is one atomic op.
pub struct Profiler {
    sites: Vec<(&'static str, SiteHandles)>,
    threshold_us: AtomicU64,
    slow_log: Mutex<Vec<SlowOp>>,
}

impl Profiler {
    /// Register the `ccp_lock_wait_us` / `ccp_slow_ops_total` families for
    /// every site in [`PROFILE_SITES`] and return the shared handles.
    pub fn new(registry: &MetricsRegistry) -> Self {
        registry.describe(
            "ccp_lock_wait_us",
            "Wall-clock wait/critical-section time per instrumented site",
        );
        registry.describe(
            "ccp_slow_ops_total",
            "Operations that crossed the slow-op threshold, per site",
        );
        let sites = PROFILE_SITES
            .iter()
            .map(|&site| {
                (
                    site,
                    SiteHandles {
                        wait: registry.histogram(
                            "ccp_lock_wait_us",
                            &[("site", site)],
                            DURATION_US_BOUNDS,
                        ),
                        slow: registry.counter("ccp_slow_ops_total", &[("site", site)]),
                    },
                )
            })
            .collect();
        Profiler {
            sites,
            threshold_us: AtomicU64::new(DEFAULT_SLOW_OP_THRESHOLD_US),
            slow_log: Mutex::new(Vec::new()),
        }
    }

    /// Change the slow-op threshold (microseconds).
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    fn handles(&self, site: &str) -> &SiteHandles {
        self.sites
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, h)| h)
            .unwrap_or_else(|| panic!("unknown profile site {site:?} — add it to PROFILE_SITES"))
    }

    /// Record one timed operation at `site`. `detail` is only evaluated
    /// when the operation crosses the slow-op threshold.
    pub fn observe(&self, site: &'static str, us: u64, detail: impl FnOnce() -> String) {
        let h = self.handles(site);
        h.wait.record(us);
        if us >= self.threshold_us.load(Ordering::Relaxed) {
            h.slow.inc();
            let mut log = self.slow_log.lock();
            log.push(SlowOp {
                site,
                us,
                detail: detail(),
            });
            if log.len() > SLOW_LOG_CAPACITY {
                // Keep the slowest; ties keep the earliest-recorded.
                log.sort_by_key(|e| std::cmp::Reverse(e.us));
                log.truncate(SLOW_LOG_CAPACITY);
            }
        }
    }

    /// Time `f` with the wall clock and record it at `site`.
    pub fn time<T>(
        &self,
        site: &'static str,
        detail: impl FnOnce() -> String,
        f: impl FnOnce() -> T,
    ) -> T {
        let t0 = Instant::now();
        let out = f();
        self.observe(site, t0.elapsed().as_micros() as u64, detail);
        out
    }

    /// The slowest recorded operations, slowest first.
    pub fn slowest(&self) -> Vec<SlowOp> {
        let mut out = self.slow_log.lock().clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.us));
        out
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("sites", &self.sites.len())
            .field("threshold_us", &self.threshold_us())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_eagerly_registered() {
        let reg = MetricsRegistry::new();
        let _p = Profiler::new(&reg);
        let text = reg.render();
        assert!(text.contains("# TYPE ccp_lock_wait_us histogram"), "{text}");
        assert!(text.contains("# TYPE ccp_slow_ops_total counter"), "{text}");
        assert!(text.contains("ccp_slow_ops_total{site=\"wal.commit\"} 0"));
        assert!(text.contains("ccp_lock_wait_us_count{site=\"pool.steal\"} 0"));
        assert!(text.contains("ccp_lock_wait_us_count{site=\"portal.lock\"} 0"));
    }

    #[test]
    fn slow_ops_cross_threshold_and_stay_bounded() {
        let reg = MetricsRegistry::new();
        let p = Profiler::new(&reg);
        p.set_threshold_us(100);
        let mut evaluated = false;
        p.observe("sched.tick", 50, || {
            evaluated = true;
            "fast".into()
        });
        assert!(!evaluated, "detail must be lazy below the threshold");
        assert!(p.slowest().is_empty());
        for i in 0..100u64 {
            p.observe("sched.tick", 100 + i, || format!("op{i}"));
        }
        let slow = p.slowest();
        assert_eq!(slow.len(), SLOW_LOG_CAPACITY);
        assert_eq!(slow[0].us, 199);
        assert!(slow.windows(2).all(|w| w[0].us >= w[1].us));
        assert_eq!(
            reg.counter("ccp_slow_ops_total", &[("site", "sched.tick")])
                .get(),
            100
        );
    }

    #[test]
    fn time_runs_the_closure_and_records() {
        let reg = MetricsRegistry::new();
        let p = Profiler::new(&reg);
        let v = p.time("registry.sample", || "detail".into(), || 7);
        assert_eq!(v, 7);
        let h = reg.histogram(
            "ccp_lock_wait_us",
            &[("site", "registry.sample")],
            DURATION_US_BOUNDS,
        );
        assert_eq!(h.count(), 1);
    }
}
