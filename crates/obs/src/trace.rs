//! Span tracer: bounded ring of spans with parent links and attributes.
//!
//! Timestamps are caller-supplied (`u64` — scheduler ticks or wall-clock
//! units, the tracer doesn't care), which keeps traces reproducible under
//! the simulated clock.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Opaque span handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Propagated causal context: the root span of a unit of work (the trace)
/// plus the span new children should hang under. Minted where the work
/// enters the system (an HTTP request, a job submission) and threaded by
/// value through every layer that records spans, so the whole life of the
/// work renders as one connected tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Root span of the trace.
    pub root: SpanId,
    /// Current parent for new child spans/events.
    pub parent: SpanId,
}

impl TraceContext {
    /// A fresh context rooted at (and parenting under) `span`.
    pub fn new(span: SpanId) -> Self {
        TraceContext {
            root: span,
            parent: span,
        }
    }

    /// Same trace, re-parented under `parent` (for handing to a deeper
    /// layer whose spans should nest under an intermediate span).
    pub fn under(&self, parent: SpanId) -> Self {
        TraceContext {
            root: self.root,
            parent,
        }
    }
}

/// One recorded span. A point event is a span with `end == Some(start)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start: u64,
    pub end: Option<u64>,
    pub attrs: Vec<(String, String)>,
}

impl Span {
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

struct TracerInner {
    next_id: u64,
    ring: VecDeque<Span>,
    dropped: u64,
}

/// Bounded span recorder. All methods take `&self`.
pub struct Tracer {
    inner: Mutex<TracerInner>,
    capacity: usize,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Tracer {
            inner: Mutex::new(TracerInner {
                next_id: 1,
                ring: VecDeque::new(),
                dropped: 0,
            }),
            capacity,
        }
    }

    fn push(&self, mut make: impl FnMut(u64) -> Span) -> SpanId {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(make(id));
        SpanId(id)
    }

    /// Open a root span.
    pub fn begin(&self, name: &str, at: u64) -> SpanId {
        self.push(|id| Span {
            id,
            parent: None,
            name: name.to_string(),
            start: at,
            end: None,
            attrs: Vec::new(),
        })
    }

    /// Open a child span.
    pub fn begin_child(&self, parent: SpanId, name: &str, at: u64) -> SpanId {
        self.push(|id| Span {
            id,
            parent: Some(parent.0),
            name: name.to_string(),
            start: at,
            end: None,
            attrs: Vec::new(),
        })
    }

    /// Close a span. Unknown ids (already evicted from the ring) are ignored.
    pub fn end(&self, id: SpanId, at: u64) {
        let mut inner = self.inner.lock();
        if let Some(span) = inner.ring.iter_mut().find(|s| s.id == id.0) {
            span.end = Some(at);
        }
    }

    /// Attach an attribute to an open or closed span still in the ring.
    pub fn set_attr(&self, id: SpanId, key: &str, value: &str) {
        let mut inner = self.inner.lock();
        if let Some(span) = inner.ring.iter_mut().find(|s| s.id == id.0) {
            span.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Record a zero-duration point event with attributes.
    pub fn event(&self, name: &str, at: u64, attrs: &[(&str, &str)]) -> SpanId {
        self.push(|id| Span {
            id,
            parent: None,
            name: name.to_string(),
            start: at,
            end: Some(at),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }

    /// Record a zero-duration point event as a child of `parent`.
    pub fn event_child(
        &self,
        parent: SpanId,
        name: &str,
        at: u64,
        attrs: &[(&str, &str)],
    ) -> SpanId {
        self.push(|id| Span {
            id,
            parent: Some(parent.0),
            name: name.to_string(),
            start: at,
            end: Some(at),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }

    /// Every span still in the ring reachable from `root` through parent
    /// links (root included), ordered by (start, id). Evicted spans simply
    /// vanish from the result; pair with [`dropped`] to report truncation.
    ///
    /// [`dropped`]: Tracer::dropped
    pub fn subtree(&self, root: SpanId) -> Vec<Span> {
        let inner = self.inner.lock();
        // Ids are assigned in push order and a child is always created
        // after its parent, so one forward pass over the id-ordered ring
        // sees every parent before its children.
        let mut keep = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for s in inner.ring.iter() {
            if s.id == root.0 || s.parent.is_some_and(|p| keep.contains(&p)) {
                keep.insert(s.id);
                out.push(s.clone());
            }
        }
        out.sort_by_key(|s| (s.start, s.id));
        out
    }

    /// Copy of the ring, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// All spans carrying `key == value`, ordered by (start, id).
    pub fn find_by_attr(&self, key: &str, value: &str) -> Vec<Span> {
        let mut out: Vec<Span> = self
            .inner
            .lock()
            .ring
            .iter()
            .filter(|s| s.attr(key) == Some(value))
            .cloned()
            .collect();
        out.sort_by_key(|s| (s.start, s.id));
        out
    }

    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let t = Tracer::new(16);
        let root = t.begin("request", 10);
        let child = t.begin_child(root, "compile", 11);
        t.set_attr(child, "path", "lab1.mini");
        t.end(child, 14);
        t.end(root, 15);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[0].end, Some(15));
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].attr("path"), Some("lab1.mini"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5 {
            t.event("e", i, &[]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let spans = t.snapshot();
        assert_eq!(spans.first().unwrap().start, 2);
        // Ending an evicted span is a no-op, not a panic.
        t.end(SpanId(1), 99);
    }

    #[test]
    fn subtree_follows_parent_links_and_skips_other_traces() {
        let t = Tracer::new(16);
        let root = t.begin("request", 1);
        let mid = t.begin_child(root, "sched", 2);
        t.event_child(mid, "wal.append", 3, &[("lsn", "7")]);
        t.event("unrelated", 4, &[]);
        let other = t.begin("other-request", 5);
        t.begin_child(other, "child-of-other", 6);
        t.event_child(root, "done", 9, &[]);
        let tree = t.subtree(root);
        assert_eq!(
            tree.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["request", "sched", "wal.append", "done"]
        );
        assert_eq!(tree[2].parent, Some(mid.0));
        assert_eq!(tree[2].attr("lsn"), Some("7"));
        // Grandchildren connect through the intermediate span.
        let ctx = TraceContext::new(root);
        assert_eq!(ctx.under(mid).root, root);
        assert_eq!(ctx.under(mid).parent, mid);
    }

    #[test]
    fn find_by_attr_orders_by_start_then_id() {
        let t = Tracer::new(16);
        t.event("b", 5, &[("job", "1")]);
        t.event("a", 2, &[("job", "1")]);
        t.event("other", 3, &[("job", "2")]);
        t.event("c", 5, &[("job", "1")]);
        let found = t.find_by_attr("job", "1");
        assert_eq!(
            found.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }
}
