//! Structured event log: a bounded ring of operational events (access-log
//! lines, admin actions, degradation notices).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Caller-supplied timestamp (ticks or epoch seconds — domain decides).
    pub at: u64,
    /// Dotted kind, e.g. `http.access`, `sched.degraded`.
    pub kind: String,
    pub fields: Vec<(String, String)>,
}

impl Event {
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Bounded event recorder. All methods take `&self`.
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl EventLog {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        EventLog {
            ring: Mutex::new(VecDeque::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    pub fn record(&self, at: u64, kind: &str, fields: &[(&str, &str)]) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event {
            at,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let ring = self.ring.lock();
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_bounds() {
        let log = EventLog::new(2);
        log.record(1, "a", &[("k", "v")]);
        log.record(2, "b", &[]);
        log.record(3, "c", &[]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let recent = log.recent(10);
        assert_eq!(
            recent.iter().map(|e| e.kind.as_str()).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert_eq!(log.recent(1)[0].kind, "c");
    }

    #[test]
    fn field_lookup() {
        let log = EventLog::new(4);
        log.record(9, "http.access", &[("method", "GET"), ("status", "200")]);
        let e = &log.recent(1)[0];
        assert_eq!(e.at, 9);
        assert_eq!(e.field("status"), Some("200"));
        assert_eq!(e.field("missing"), None);
    }
}
