//! In-process time-series store: a bounded ring of periodic
//! [`MetricsRegistry`] captures, keyed by the deterministic portal clock.
//!
//! Each [`record`] freezes every registered series at a logical tick; the
//! windowed queries (`delta`, `rate_milli`, `window_quantile`,
//! `window_avg_milli`) then answer "what happened over the last N ticks"
//! by diffing captures — counters by subtraction, histograms by
//! bucket-count subtraction, gauges by averaging. All arithmetic is
//! integer (rates in milli-units) except histogram quantiles, which keep
//! the `f64::INFINITY` overflow convention of [`Histogram::quantile`], so
//! a deterministic workload yields byte-identical query results.
//!
//! [`record`]: TimeSeriesStore::record
//! [`Histogram::quantile`]: crate::Histogram::quantile

use crate::metrics::{HistogramSample, MetricsRegistry, SampleValue, SeriesSample};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One full-registry capture at a logical tick.
#[derive(Clone, Debug, PartialEq)]
pub struct TsSample {
    /// Logical clock value the capture was taken at.
    pub at: u64,
    /// Every registered series, in registry (name, labels) order.
    pub series: Vec<SeriesSample>,
}

struct StoreInner {
    ring: VecDeque<TsSample>,
    evicted: u64,
}

/// Fixed-capacity ring of registry captures. All methods take `&self`.
pub struct TimeSeriesStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
}

impl TimeSeriesStore {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TimeSeriesStore {
            inner: Mutex::new(StoreInner {
                ring: VecDeque::new(),
                evicted: 0,
            }),
            capacity,
        }
    }

    /// Capture the registry at tick `at`. Idempotent per tick: a capture
    /// at or before the newest stored tick is refused (returns `false`),
    /// so re-entrant sampling in the same tick can't skew windows.
    pub fn record(&self, at: u64, registry: &MetricsRegistry) -> bool {
        let series = registry.sample();
        let mut inner = self.inner.lock();
        if inner.ring.back().is_some_and(|s| s.at >= at) {
            return false;
        }
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.evicted += 1;
        }
        inner.ring.push_back(TsSample { at, series });
        true
    }

    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Captures evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// Tick of the newest capture.
    pub fn last_at(&self) -> Option<u64> {
        self.inner.lock().ring.back().map(|s| s.at)
    }

    /// Current value of one series, from the newest capture.
    pub fn latest(&self, name: &str, labels: &[(&str, &str)]) -> Option<SampleValue> {
        let key = sorted_labels(labels);
        let inner = self.inner.lock();
        lookup(inner.ring.back()?, name, &key).cloned()
    }

    /// Counter/gauge change over the trailing `window` ticks: newest value
    /// minus the value at the newest capture at least `window` ticks older
    /// (clamped to the oldest capture the ring still holds). `None` when
    /// the series is missing, is a histogram, or fewer than two captures
    /// exist.
    pub fn delta(&self, name: &str, labels: &[(&str, &str)], window: u64) -> Option<i64> {
        let key = sorted_labels(labels);
        let inner = self.inner.lock();
        let (old, new) = window_pair(&inner.ring, window)?;
        let a = scalar(lookup(old, name, &key)?)?;
        let b = scalar(lookup(new, name, &key)?)?;
        Some(b - a)
    }

    /// Per-tick rate of change over the trailing `window` ticks, in
    /// milli-units (×1000) so it stays an integer.
    pub fn rate_milli(&self, name: &str, labels: &[(&str, &str)], window: u64) -> Option<i64> {
        let key = sorted_labels(labels);
        let inner = self.inner.lock();
        let (old, new) = window_pair(&inner.ring, window)?;
        let elapsed = new.at.saturating_sub(old.at);
        if elapsed == 0 {
            return None;
        }
        let a = scalar(lookup(old, name, &key)?)?;
        let b = scalar(lookup(new, name, &key)?)?;
        Some(((b - a) as i128 * 1000 / elapsed as i128) as i64)
    }

    /// Sliding-window quantile of a histogram series: the distribution of
    /// samples recorded within the trailing `window` ticks, by bucket-count
    /// subtraction between captures. A window wider than the retained
    /// history (including the single-capture case) has no baseline to
    /// subtract and reads the full latest distribution. `None` when the
    /// series is missing, isn't a histogram, or saw no samples in the
    /// window.
    pub fn window_quantile(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window: u64,
        q: f64,
    ) -> Option<f64> {
        let key = sorted_labels(labels);
        let inner = self.inner.lock();
        let new = inner.ring.back()?;
        let latest = histogram(lookup(new, name, &key)?)?;
        let floor = new.at.saturating_sub(window);
        match inner.ring.iter().rev().skip(1).find(|s| s.at <= floor) {
            Some(old) => {
                let earlier = histogram(lookup(old, name, &key)?)?;
                latest.since(earlier).quantile(q)
            }
            None => latest.quantile(q),
        }
    }

    /// Average gauge value over every capture in the trailing `window`
    /// ticks, in milli-units. Works from a single capture (a fresh server
    /// can alert on it immediately).
    pub fn window_avg_milli(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window: u64,
    ) -> Option<i64> {
        let key = sorted_labels(labels);
        let inner = self.inner.lock();
        let newest = inner.ring.back()?.at;
        let floor = newest.saturating_sub(window);
        let mut sum: i128 = 0;
        let mut n: i128 = 0;
        for s in inner.ring.iter().rev() {
            if s.at < floor {
                break;
            }
            sum += i128::from(scalar(lookup(s, name, &key)?)?);
            n += 1;
        }
        if n == 0 {
            return None;
        }
        Some((sum * 1000 / n) as i64)
    }
}

impl std::fmt::Debug for TimeSeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesStore")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

fn lookup<'a>(
    sample: &'a TsSample,
    name: &str,
    labels: &[(String, String)],
) -> Option<&'a SampleValue> {
    sample
        .series
        .iter()
        .find(|s| s.name == name && s.labels == labels)
        .map(|s| &s.value)
}

fn scalar(v: &SampleValue) -> Option<i64> {
    match v {
        SampleValue::Counter(c) => Some(*c as i64),
        SampleValue::Gauge(g) => Some(*g),
        SampleValue::Histogram(_) => None,
    }
}

fn histogram(v: &SampleValue) -> Option<&HistogramSample> {
    match v {
        SampleValue::Histogram(h) => Some(h),
        _ => None,
    }
}

/// The (older, newest) capture pair spanning `window` ticks: the newest
/// capture, and the newest one at least `window` ticks older (or the
/// oldest held). `None` with fewer than two captures.
fn window_pair(ring: &VecDeque<TsSample>, window: u64) -> Option<(&TsSample, &TsSample)> {
    let new = ring.back()?;
    let floor = new.at.saturating_sub(window);
    let old = ring
        .iter()
        .rev()
        .skip(1)
        .find(|s| s.at <= floor)
        .or_else(|| ring.front().filter(|s| s.at < new.at))?;
    Some((old, new))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TICK_BOUNDS;

    fn store_with_counter() -> (TimeSeriesStore, MetricsRegistry) {
        let reg = MetricsRegistry::new();
        reg.counter("ccp_t_total", &[]);
        reg.gauge("ccp_t_depth", &[]);
        reg.histogram("ccp_t_ticks", &[], TICK_BOUNDS);
        (TimeSeriesStore::new(8), reg)
    }

    #[test]
    fn record_is_idempotent_per_tick_and_bounded() {
        let (store, reg) = store_with_counter();
        assert!(store.record(1, &reg));
        assert!(!store.record(1, &reg), "same tick must be refused");
        assert!(!store.record(0, &reg), "going backwards must be refused");
        for t in 2..=20 {
            assert!(store.record(t, &reg));
        }
        assert_eq!(store.len(), 8);
        assert_eq!(store.evicted(), 12);
        assert_eq!(store.last_at(), Some(20));
    }

    #[test]
    fn delta_and_rate_window_over_captures() {
        let (store, reg) = store_with_counter();
        let c = reg.counter("ccp_t_total", &[]);
        let g = reg.gauge("ccp_t_depth", &[]);
        for t in 1..=6u64 {
            c.add(10);
            g.set(t as i64 * 2);
            store.record(t, &reg);
        }
        // Window of 3 ticks back from t=6 lands on the t=3 capture.
        assert_eq!(store.delta("ccp_t_total", &[], 3), Some(30));
        assert_eq!(store.rate_milli("ccp_t_total", &[], 3), Some(10_000));
        assert_eq!(store.delta("ccp_t_depth", &[], 3), Some(6));
        // Wider than history: clamps to the oldest capture.
        assert_eq!(store.delta("ccp_t_total", &[], 100), Some(50));
        // Unknown series and histogram series yield None.
        assert_eq!(store.delta("ccp_missing", &[], 3), None);
        assert_eq!(store.delta("ccp_t_ticks", &[], 3), None);
        assert_eq!(
            store.latest("ccp_t_depth", &[]),
            Some(SampleValue::Gauge(12))
        );
    }

    #[test]
    fn window_quantile_diffs_bucket_counts() {
        let (store, reg) = store_with_counter();
        let h = reg.histogram("ccp_t_ticks", &[], TICK_BOUNDS);
        h.record(1);
        h.record(1);
        store.record(1, &reg);
        // Between t=1 and t=5 only big samples arrive.
        h.record(100);
        h.record(5_000); // overflow
        store.record(5, &reg);
        // Full history still remembers the early 1s...
        assert_eq!(
            store.window_quantile("ccp_t_ticks", &[], 100, 0.25),
            Some(1.0)
        );
        // ...but the trailing 4-tick window sees only the two new samples.
        assert_eq!(
            store.window_quantile("ccp_t_ticks", &[], 4, 0.5),
            Some(100.0)
        );
        assert_eq!(
            store.window_quantile("ccp_t_ticks", &[], 4, 1.0),
            Some(f64::INFINITY)
        );
        // Single capture: falls back to full history.
        let (solo, reg2) = store_with_counter();
        reg2.histogram("ccp_t_ticks", &[], TICK_BOUNDS).record(2);
        solo.record(1, &reg2);
        assert_eq!(solo.window_quantile("ccp_t_ticks", &[], 4, 0.5), Some(2.0));
    }

    #[test]
    fn window_avg_works_from_one_capture() {
        let (store, reg) = store_with_counter();
        let g = reg.gauge("ccp_t_depth", &[]);
        g.set(9);
        store.record(1, &reg);
        assert_eq!(store.window_avg_milli("ccp_t_depth", &[], 8), Some(9_000));
        g.set(3);
        store.record(2, &reg);
        assert_eq!(store.window_avg_milli("ccp_t_depth", &[], 8), Some(6_000));
        // Narrow window excludes the old capture.
        g.set(5);
        store.record(20, &reg);
        assert_eq!(store.window_avg_milli("ccp_t_depth", &[], 1), Some(5_000));
    }
}
