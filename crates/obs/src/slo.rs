//! SLO engine: declarative service-level objectives evaluated over the
//! [`TimeSeriesStore`] with multi-window burn-rate alerting.
//!
//! Each [`SloSpec`] names a condition over one or two metric series and two
//! trailing windows. An alert **fires** only when *both* the short and the
//! long window breach (a fast burn that is also sustained), and **clears**
//! only when *neither* breaches — the asymmetry is the hysteresis that keeps
//! a flapping signal from spamming transitions. Transitions are recorded as
//! `slo.firing` / `slo.cleared` events in the [`EventLog`] and counted in
//! the eagerly-registered `ccp_slo_*` families.
//!
//! Evaluation reads only store captures keyed by the logical clock, so a
//! deterministic workload produces an identical alert history on every
//! same-seed run.

use crate::events::EventLog;
use crate::metrics::{Counter, Gauge, MetricsRegistry};
use crate::tsdb::TimeSeriesStore;

/// What a single objective asserts about the store. All thresholds use
/// integer milli-units (1000 = 1.0) so evaluation stays exact.
#[derive(Clone, Debug, PartialEq)]
pub enum SloKind {
    /// Average of a gauge over the window stays at or below
    /// `threshold_milli` (milli-units of the gauge).
    GaugeAbove {
        series: String,
        threshold_milli: i64,
    },
    /// `bad / total` counter-delta ratio over the window stays at or below
    /// `objective_milli` (e.g. 50 = 5%). An idle window (no `total`
    /// growth) never breaches.
    ErrorRatio {
        bad: String,
        total: String,
        objective_milli: i64,
    },
    /// Windowed quantile `q` of a histogram stays at or below `threshold`.
    /// An overflow-dominated window reads `+Inf` and always breaches.
    QuantileAbove {
        series: String,
        q: f64,
        threshold: f64,
    },
}

/// One declarative objective: a condition plus its two burn-rate windows
/// (in logical ticks, `short_window < long_window`).
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Stable name, used as the `slo` label and in alert views.
    pub name: String,
    pub kind: SloKind,
    pub short_window: u64,
    pub long_window: u64,
}

/// Point-in-time alert state of one objective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    pub slo: String,
    pub firing: bool,
    /// Tick at which the alert entered its current state (`None` until the
    /// first transition).
    pub since: Option<u64>,
    /// Lifetime firing↔cleared transitions.
    pub transitions: u64,
}

struct SloState {
    spec: SloSpec,
    firing: bool,
    since: Option<u64>,
    transitions: u64,
    transitions_metric: Counter,
}

/// Evaluates a fixed set of objectives against the store each tick.
pub struct SloEngine {
    slos: Vec<SloState>,
    evaluations: Counter,
    firing_gauge: Gauge,
}

impl SloEngine {
    /// Build the engine and eagerly register the `ccp_slo_*` families so
    /// they appear on the first scrape.
    pub fn new(specs: Vec<SloSpec>, registry: &MetricsRegistry) -> Self {
        registry.describe("ccp_slo_evaluations_total", "SLO evaluation passes");
        registry.describe("ccp_slo_alerts_firing", "Objectives currently firing");
        registry.describe(
            "ccp_slo_transitions_total",
            "Alert state transitions (firing or cleared) per objective",
        );
        let evaluations = registry.counter("ccp_slo_evaluations_total", &[]);
        let firing_gauge = registry.gauge("ccp_slo_alerts_firing", &[]);
        let slos = specs
            .into_iter()
            .map(|spec| SloState {
                transitions_metric: registry
                    .counter("ccp_slo_transitions_total", &[("slo", &spec.name)]),
                spec,
                firing: false,
                since: None,
                transitions: 0,
            })
            .collect();
        SloEngine {
            slos,
            evaluations,
            firing_gauge,
        }
    }

    /// Evaluate every objective at tick `at`, updating alert state and
    /// recording `slo.firing` / `slo.cleared` events for transitions.
    pub fn evaluate(&mut self, at: u64, store: &TimeSeriesStore, events: &EventLog) {
        self.evaluations.inc();
        let mut firing = 0i64;
        for slo in &mut self.slos {
            let short = breaches(&slo.spec.kind, store, slo.spec.short_window);
            let long = breaches(&slo.spec.kind, store, slo.spec.long_window);
            let next = if slo.firing {
                // Clear only when neither window breaches.
                short || long
            } else {
                // Fire only when both windows breach.
                short && long
            };
            if next != slo.firing {
                slo.firing = next;
                slo.since = Some(at);
                slo.transitions += 1;
                slo.transitions_metric.inc();
                let kind = if next { "slo.firing" } else { "slo.cleared" };
                events.record(at, kind, &[("slo", &slo.spec.name)]);
            }
            if slo.firing {
                firing += 1;
            }
        }
        self.firing_gauge.set(firing);
    }

    /// Current state of every objective, in declaration order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.slos
            .iter()
            .map(|s| Alert {
                slo: s.spec.name.clone(),
                firing: s.firing,
                since: s.since,
                transitions: s.transitions,
            })
            .collect()
    }

    /// Objectives currently firing.
    pub fn firing_count(&self) -> usize {
        self.slos.iter().filter(|s| s.firing).count()
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("slos", &self.slos.len())
            .field("firing", &self.firing_count())
            .finish()
    }
}

/// Does the condition breach over the trailing `window` ticks? A condition
/// whose series has no data yet reads as "not breaching" — a fresh server
/// must not boot into a firing alert.
fn breaches(kind: &SloKind, store: &TimeSeriesStore, window: u64) -> bool {
    match kind {
        SloKind::GaugeAbove {
            series,
            threshold_milli,
        } => store
            .window_avg_milli(series, &[], window)
            .is_some_and(|avg| avg > *threshold_milli),
        SloKind::ErrorRatio {
            bad,
            total,
            objective_milli,
        } => {
            let total_delta = store.delta(total, &[], window).unwrap_or(0);
            if total_delta <= 0 {
                return false;
            }
            let bad_delta = store.delta(bad, &[], window).unwrap_or(0).max(0);
            bad_delta * 1000 > *objective_milli * total_delta
        }
        SloKind::QuantileAbove {
            series,
            q,
            threshold,
        } => store
            .window_quantile(series, &[], window, *q)
            .is_some_and(|v| v > *threshold),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth_slo() -> SloSpec {
        SloSpec {
            name: "queue-depth".into(),
            kind: SloKind::GaugeAbove {
                series: "ccp_t_depth".into(),
                threshold_milli: 5_000,
            },
            short_window: 2,
            long_window: 6,
        }
    }

    #[test]
    fn families_are_eagerly_registered() {
        let reg = MetricsRegistry::new();
        let _e = SloEngine::new(vec![depth_slo()], &reg);
        let text = reg.render();
        assert!(
            text.contains("# TYPE ccp_slo_evaluations_total counter"),
            "{text}"
        );
        assert!(text.contains("# TYPE ccp_slo_alerts_firing gauge"));
        assert!(text.contains("ccp_slo_transitions_total{slo=\"queue-depth\"} 0"));
    }

    #[test]
    fn fires_on_both_windows_and_clears_on_neither() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("ccp_t_depth", &[]);
        let store = TimeSeriesStore::new(32);
        let events = EventLog::new(32);
        let mut engine = SloEngine::new(vec![depth_slo()], &reg);

        // Healthy ticks: depth below threshold.
        for t in 1..=6 {
            g.set(1);
            store.record(t, &reg);
            engine.evaluate(t, &store, &events);
        }
        assert!(!engine.alerts()[0].firing);

        // Breach: short window (2 ticks) degrades first; the alert must
        // wait for the long window's average to cross too.
        let mut fired_at = None;
        for t in 7..=20 {
            g.set(10);
            store.record(t, &reg);
            engine.evaluate(t, &store, &events);
            if fired_at.is_none() && engine.alerts()[0].firing {
                fired_at = Some(t);
            }
        }
        let fired_at = fired_at.expect("alert fires under sustained breach");
        assert!(fired_at > 7, "one bad tick must not fire the long window");

        // Recovery: stays firing while any window still breaches, then
        // clears once both windows are clean.
        let mut cleared_at = None;
        for t in 21..=40 {
            g.set(0);
            store.record(t, &reg);
            engine.evaluate(t, &store, &events);
            if cleared_at.is_none() && !engine.alerts()[0].firing {
                cleared_at = Some(t);
            }
        }
        let cleared_at = cleared_at.expect("alert clears after recovery");
        assert!(cleared_at > 21);

        let alert = &engine.alerts()[0];
        assert_eq!(alert.transitions, 2);
        assert_eq!(alert.since, Some(cleared_at));
        let kinds: Vec<String> = events.recent(10).iter().map(|e| e.kind.clone()).collect();
        assert_eq!(kinds, vec!["slo.firing", "slo.cleared"]);
        assert_eq!(
            reg.counter("ccp_slo_transitions_total", &[("slo", "queue-depth")])
                .get(),
            2
        );
        assert_eq!(reg.gauge("ccp_slo_alerts_firing", &[]).get(), 0);
    }

    #[test]
    fn error_ratio_ignores_idle_windows() {
        let reg = MetricsRegistry::new();
        let bad = reg.counter("ccp_t_bad_total", &[]);
        let total = reg.counter("ccp_t_all_total", &[]);
        let store = TimeSeriesStore::new(32);
        let events = EventLog::new(32);
        let spec = SloSpec {
            name: "loss".into(),
            kind: SloKind::ErrorRatio {
                bad: "ccp_t_bad_total".into(),
                total: "ccp_t_all_total".into(),
                objective_milli: 100, // 10%
            },
            short_window: 2,
            long_window: 4,
        };
        let mut engine = SloEngine::new(vec![spec], &reg);
        // Idle: no traffic at all — must not breach.
        for t in 1..=5 {
            store.record(t, &reg);
            engine.evaluate(t, &store, &events);
        }
        assert!(!engine.alerts()[0].firing);
        // 50% loss sustained over both windows — must fire.
        for t in 6..=12 {
            bad.inc();
            total.add(2);
            store.record(t, &reg);
            engine.evaluate(t, &store, &events);
        }
        assert!(engine.alerts()[0].firing);
    }

    #[test]
    fn quantile_above_breaches_on_overflow_infinity() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_t_us", &[], &[10, 100]);
        let store = TimeSeriesStore::new(32);
        let events = EventLog::new(32);
        let spec = SloSpec {
            name: "latency".into(),
            kind: SloKind::QuantileAbove {
                series: "ccp_t_us".into(),
                q: 0.99,
                threshold: 100.0,
            },
            short_window: 2,
            long_window: 4,
        };
        let mut engine = SloEngine::new(vec![spec], &reg);
        for t in 1..=6 {
            h.record(1_000_000); // overflow bucket → +Inf quantile
            store.record(t, &reg);
            engine.evaluate(t, &store, &events);
        }
        assert!(
            engine.alerts()[0].firing,
            "+Inf must compare above any finite threshold"
        );
    }
}
