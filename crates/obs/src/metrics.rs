//! Lock-cheap metrics: registration takes a registry lock once; the returned
//! handles are `Arc`-backed atomics, so recording is wait-free.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed gauge: goes up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    /// Inclusive upper edges, strictly ascending. A value `v` lands in the
    /// first bucket with `v <= bound`; larger values land in the implicit
    /// `+Inf` overflow bucket.
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    pub fn record(&self, v: u64) {
        let core = &self.0;
        let idx = core.bounds.partition_point(|&b| b < v);
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts; the final slot is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate with upper-bucket-edge semantics: the reported
    /// value is the **inclusive upper edge** of the bucket holding the
    /// sample of rank `ceil(q * count)` (clamped to `1..=count`, so `q=0`
    /// reads the first populated bucket and `q=1` the last).
    ///
    /// Consequences of reading edges rather than interpolating:
    ///
    /// * a rank landing in a bounded bucket overestimates by at most one
    ///   bucket's width — conservative in the direction operators care
    ///   about for latency objectives;
    /// * a rank landing in the implicit overflow bucket has no finite
    ///   upper edge, so the estimate saturates to `f64::INFINITY` rather
    ///   than inventing a finite value. Callers serializing to JSON must
    ///   map this to the string `"+Inf"` (bare `inf` is not valid JSON);
    ///   `httpd::json::quantile_json` does exactly that.
    ///
    /// Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&self.bucket_counts(), &self.0.bounds, q)
    }

    /// Freeze the histogram into a plain-data [`HistogramSample`].
    pub fn sample(&self) -> HistogramSample {
        HistogramSample {
            bounds: self.0.bounds.clone(),
            buckets: self.bucket_counts(),
            sum: self.sum(),
            count: self.count(),
        }
    }

    fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }
}

/// Shared rank walk behind [`Histogram::quantile`] and
/// [`HistogramSample::quantile`]: counts are per-bucket (non-cumulative),
/// the final slot being the `+Inf` overflow bucket.
fn quantile_from_counts(counts: &[u64], bounds: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(if i < bounds.len() {
                bounds[i] as f64
            } else {
                f64::INFINITY
            });
        }
    }
    unreachable!("rank is clamped to total")
}

/// Point-in-time numeric capture of one histogram, as taken by
/// [`MetricsRegistry::sample`]. `buckets` are per-bucket (non-cumulative)
/// counts; the final slot is the implicit `+Inf` overflow bucket, so
/// `buckets.len() == bounds.len() + 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSample {
    /// Same estimator as [`Histogram::quantile`], over the frozen counts.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_counts(&self.buckets, &self.bounds, q)
    }

    /// Bucket-wise difference `self - earlier`: the distribution of samples
    /// recorded *between* the two captures, which is what windowed p50/p99
    /// queries want. Saturates per bucket, so a reset never underflows.
    pub fn since(&self, earlier: &HistogramSample) -> HistogramSample {
        let buckets = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSample {
            bounds: self.bounds.clone(),
            buckets,
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Label set, kept sorted by key so the same labels in any order map to the
/// same series.
type Labels = Vec<(String, String)>;

/// Point-in-time value of one series, captured by
/// [`MetricsRegistry::sample`].
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSample),
}

/// One sampled series: family name, sorted label pairs, frozen value.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: SampleValue,
}

struct Family {
    help: Option<String>,
    series: BTreeMap<Labels, Metric>,
}

/// Registry of metric families. `BTreeMap`-backed, so [`render`] output is
/// fully ordered and deterministic for a deterministic workload.
///
/// [`render`]: MetricsRegistry::render
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            families: RwLock::new(BTreeMap::new()),
        }
    }

    /// Attach a `# HELP` line to a family (registered or not yet).
    pub fn describe(&self, name: &str, help: &str) {
        let mut fams = self.families.write();
        fams.entry(name.to_string())
            .or_insert_with(|| Family {
                help: None,
                series: BTreeMap::new(),
            })
            .help = Some(help.to_string());
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Register (or look up) a histogram. `bounds` are only consulted on
    /// first registration of the series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new(bounds))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut key: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        key.sort();
        {
            let fams = self.families.read();
            if let Some(m) = fams.get(name).and_then(|f| f.series.get(&key)) {
                return m.clone();
            }
        }
        let mut fams = self.families.write();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: None,
            series: BTreeMap::new(),
        });
        fam.series.entry(key).or_insert_with(make).clone()
    }

    pub fn series_count(&self) -> usize {
        self.families.read().values().map(|f| f.series.len()).sum()
    }

    /// Numeric capture of every registered series, in the same fully
    /// ordered (family name, then sorted labels) sequence [`render`] uses,
    /// so two captures of identical registries compare equal element-wise.
    /// This is what the time-series store ingests each portal tick.
    ///
    /// [`render`]: MetricsRegistry::render
    pub fn sample(&self) -> Vec<SeriesSample> {
        let fams = self.families.read();
        let mut out = Vec::new();
        for (name, fam) in fams.iter() {
            for (labels, metric) in fam.series.iter() {
                let value = match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.sample()),
                };
                out.push(SeriesSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out
    }

    /// Render every family in Prometheus text exposition format. Families
    /// and series come out in `BTreeMap` order, and all sample values are
    /// integers, so a deterministic workload renders byte-identically.
    pub fn render(&self) -> String {
        let fams = self.families.read();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            // A described-but-never-registered family has no series to emit.
            let Some(first) = fam.series.values().next() else {
                continue;
            };
            if let Some(help) = &fam.help {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE {name} {}\n", first.kind()));
            for (labels, metric) in fam.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", fmt_labels(labels, None), c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", fmt_labels(labels, None), g.get()));
                    }
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cum += c;
                            let le = if i < h.bounds().len() {
                                h.bounds()[i].to_string()
                            } else {
                                "+Inf".to_string()
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                fmt_labels(labels, Some(&le))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            fmt_labels(labels, None),
                            h.sum()
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            fmt_labels(labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("series", &self.series_count())
            .finish()
    }
}

fn fmt_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ccp_test_total", &[("k", "v")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels (any order) returns the same underlying series.
        let c2 = reg.counter("ccp_test_total", &[("k", "v")]);
        assert_eq!(c2.get(), 5);
        let g = reg.gauge("ccp_test_depth", &[]);
        g.set(7);
        g.sub(9);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_test_ticks", &[], &[10, 20, 40]);
        // Exactly on an edge lands in that bucket, one past it in the next.
        h.record(10);
        h.record(11);
        h.record(20);
        h.record(40);
        h.record(41); // overflow
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10 + 11 + 20 + 40 + 41);
        // Zero lands in the first bucket.
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 2);
    }

    #[test]
    fn quantiles_at_exact_edges() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_test_q", &[], &[1, 2, 5, 10]);
        // 10 samples: four 1s, four 2s, two 10s.
        for _ in 0..4 {
            h.record(1);
        }
        for _ in 0..4 {
            h.record(2);
        }
        for _ in 0..2 {
            h.record(10);
        }
        // rank(0.4) = 4 -> still in the first bucket.
        assert_eq!(h.quantile(0.4), Some(1.0));
        // rank(0.5) = 5 -> second bucket.
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.8), Some(2.0));
        // rank(0.9) = 9 -> last populated bucket.
        assert_eq!(h.quantile(0.9), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // q=0 clamps to rank 1.
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_test_empty", &[], &[1, 2]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn upper_edge_semantics_pin_the_overflow_bucket_to_infinity() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_test_edges", &[], &[10]);
        // Only overflow samples: every quantile must saturate to +Inf —
        // there is no finite upper edge to report.
        h.record(11);
        h.record(1_000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(f64::INFINITY), "q={q}");
        }
        // Exactly on the edge is *inclusive*: it lands in the finite
        // bucket, so low quantiles become finite again.
        h.record(10);
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn histogram_sample_freezes_and_diffs() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_test_s", &[], &[5, 10]);
        h.record(3);
        h.record(7);
        let early = h.sample();
        assert_eq!(early.buckets, vec![1, 1, 0]);
        assert_eq!((early.sum, early.count), (10, 2));
        assert_eq!(early.quantile(1.0), Some(10.0));
        h.record(7);
        h.record(99);
        let late = h.sample();
        let window = late.since(&early);
        // Only the two samples recorded between the captures remain.
        assert_eq!(window.buckets, vec![0, 1, 1]);
        assert_eq!((window.sum, window.count), (106, 2));
        assert_eq!(window.quantile(0.5), Some(10.0));
        assert_eq!(window.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn registry_sample_is_ordered_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("ccp_z_total", &[]).add(3);
        reg.gauge("ccp_a_depth", &[("q", "x")]).set(-2);
        reg.histogram("ccp_m_us", &[], &[1]).record(9);
        let s = reg.sample();
        let names: Vec<&str> = s.iter().map(|x| x.name.as_str()).collect();
        // BTreeMap order, same as render().
        assert_eq!(names, vec!["ccp_a_depth", "ccp_m_us", "ccp_z_total"]);
        assert_eq!(s[0].labels, vec![("q".to_string(), "x".to_string())]);
        assert_eq!(s[0].value, SampleValue::Gauge(-2));
        assert_eq!(s[2].value, SampleValue::Counter(3));
        match &s[1].value {
            SampleValue::Histogram(h) => {
                assert_eq!(h.buckets, vec![0, 1]);
                assert_eq!(h.bounds, vec![1]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn overflow_bucket_saturates_to_infinity() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ccp_test_inf", &[], &[1, 2]);
        h.record(1_000_000);
        h.record(2);
        // p99 rank = 2 -> overflow bucket -> +Inf, not a finite guess.
        assert_eq!(h.quantile(0.99), Some(f64::INFINITY));
        assert_eq!(h.quantile(0.25), Some(2.0));
        assert_eq!(h.bucket_counts(), vec![0, 1, 1]);
    }

    #[test]
    fn render_is_prometheus_shaped_and_ordered() {
        let reg = MetricsRegistry::new();
        reg.describe("ccp_a_total", "things that happened");
        reg.counter("ccp_a_total", &[("route", "/b")]).add(2);
        reg.counter("ccp_a_total", &[("route", "/a")]).inc();
        reg.gauge("ccp_b_depth", &[]).set(3);
        let h = reg.histogram("ccp_c_us", &[], &[5, 10]);
        h.record(5);
        h.record(99);
        let text = reg.render();
        let expected = "# HELP ccp_a_total things that happened\n\
                        # TYPE ccp_a_total counter\n\
                        ccp_a_total{route=\"/a\"} 1\n\
                        ccp_a_total{route=\"/b\"} 2\n\
                        # TYPE ccp_b_depth gauge\n\
                        ccp_b_depth 3\n\
                        # TYPE ccp_c_us histogram\n\
                        ccp_c_us_bucket{le=\"5\"} 1\n\
                        ccp_c_us_bucket{le=\"10\"} 1\n\
                        ccp_c_us_bucket{le=\"+Inf\"} 2\n\
                        ccp_c_us_sum 104\n\
                        ccp_c_us_count 2\n";
        assert_eq!(text, expected);
        // Rendering twice with no recording in between is byte-identical.
        assert_eq!(reg.render(), text);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("ccp_esc_total", &[("p", "a\"b\\c\nd")]).inc();
        let text = reg.render();
        assert!(text.contains("p=\"a\\\"b\\\\c\\nd\""), "{text}");
    }
}
