//! End-to-end portal flows: the §II user journey — authenticate, manage
//! files, compile, execute, submit to the distributor, monitor streams.

use auth::Role;
use ccp_core::{Portal, PortalConfig, PortalError};
use cluster::{ClusterSpec, NodeHealth, SlaveId};
use sched::{JobState, RetryPolicy};

fn portal() -> Portal {
    let config = PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        ..PortalConfig::default()
    };
    let mut p = Portal::new(config);
    p.bootstrap_admin("admin", "super-secret9").unwrap();
    p
}

fn student(p: &mut Portal, name: &str) -> auth::Token {
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    p.create_user(&admin, name, "password99", Role::Student, 0)
        .unwrap();
    p.login(name, "password99", 0).unwrap()
}

#[test]
fn bootstrap_only_once() {
    let mut p = portal();
    assert!(matches!(
        p.bootstrap_admin("other", "password99"),
        Err(PortalError::Bootstrap(_))
    ));
}

#[test]
fn login_bad_password_rejected() {
    let mut p = portal();
    assert!(matches!(
        p.login("admin", "wrong-password", 0),
        Err(PortalError::Auth(_))
    ));
    assert!(matches!(
        p.login("ghost", "whatever99", 0),
        Err(PortalError::Auth(_))
    ));
}

#[test]
fn session_expiry_enforced() {
    let mut p = portal();
    let t = p.login("admin", "super-secret9", 0).unwrap();
    assert!(p.whoami(&t, 100).is_ok());
    assert!(matches!(p.whoami(&t, 4000), Err(PortalError::Session(_))));
}

#[test]
fn logout_invalidates() {
    let mut p = portal();
    let t = p.login("admin", "super-secret9", 0).unwrap();
    p.logout(&t);
    assert!(p.whoami(&t, 1).is_err());
}

#[test]
fn only_admin_creates_users() {
    let mut p = portal();
    let s = student(&mut p, "alice");
    assert!(matches!(
        p.create_user(&s, "bob", "password99", Role::Student, 0),
        Err(PortalError::Forbidden(_))
    ));
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    assert_eq!(p.list_users(&admin, 0).unwrap(), vec!["admin", "alice"]);
    assert!(p.list_users(&s, 0).is_err());
}

#[test]
fn file_manager_crud() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.mkdir(&t, "src", 0).unwrap();
    p.write_file(&t, "src/main.mini", b"fn main() { }".to_vec(), 0)
        .unwrap();
    p.write_file(&t, "notes.txt", b"hello".to_vec(), 0).unwrap();
    let listing = p.list_dir(&t, "", 0).unwrap();
    let names: Vec<&str> = listing.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["notes.txt", "src"]);
    assert!(listing[1].is_dir);
    assert_eq!(p.read_file(&t, "notes.txt", 0).unwrap(), b"hello");
    p.copy(&t, "notes.txt", "notes2.txt", 0).unwrap();
    p.rename(&t, "notes2.txt", "archive.txt", 0).unwrap();
    assert_eq!(p.read_file(&t, "archive.txt", 0).unwrap(), b"hello");
    p.remove(&t, "src", 0).unwrap();
    assert_eq!(p.list_dir(&t, "", 0).unwrap().len(), 2);
    let q = p.quota(&t, 0).unwrap();
    assert_eq!(q.used, 10); // two 5-byte files
}

#[test]
fn students_cannot_escape_home() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    let _t2 = student(&mut p, "eve");
    assert!(matches!(
        p.read_file(&t, "/home/eve/secret", 0),
        Err(PortalError::OutsideHome { .. })
    ));
    assert!(matches!(
        p.read_file(&t, "../eve/secret", 0),
        Err(PortalError::OutsideHome { .. })
    ));
    assert!(matches!(
        p.write_file(&t, "/etc/passwd", vec![], 0),
        Err(PortalError::OutsideHome { .. })
    ));
}

#[test]
fn compile_run_roundtrip() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "hello.mini",
        b"fn main() { println(\"from cluster\"); }".to_vec(),
        0,
    )
    .unwrap();
    let report = p.compile(&t, "hello.mini", 0).unwrap();
    assert!(report.success(), "{}", report.render());
    let artifacts = p.my_artifacts(&t, 0).unwrap();
    assert_eq!(artifacts.len(), 1);
    let run = p.run_interactive(&t, &artifacts[0].0, 0, 0).unwrap();
    assert_eq!(run.outcome.unwrap().stdout, "from cluster\n");
}

#[test]
fn compile_errors_reported() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(&t, "bad.mini", b"fn main() { var = ; }".to_vec(), 0)
        .unwrap();
    let report = p.compile(&t, "bad.mini", 0).unwrap();
    assert!(!report.success());
    assert!(report.render().contains("error"));
}

#[test]
fn cannot_run_another_users_artifact() {
    let mut p = portal();
    let alice = student(&mut p, "alice");
    let bob = student(&mut p, "bob");
    p.write_file(&alice, "a.mini", b"fn main() { }".to_vec(), 0)
        .unwrap();
    let report = p.compile(&alice, "a.mini", 0).unwrap();
    let id = report.artifact.unwrap().to_string();
    assert!(matches!(
        p.run_interactive(&bob, &id, 0, 0),
        Err(PortalError::Forbidden(_))
    ));
    // Alice herself can.
    assert!(p.run_interactive(&alice, &id, 0, 0).is_ok());
}

#[test]
fn batch_job_lifecycle_with_streams() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "job.mini",
        b"fn main() { for (var i = 0; i < 3; i = i + 1) { println(\"line \", i); } }".to_vec(),
        0,
    )
    .unwrap();
    let report = p.compile(&t, "job.mini", 0).unwrap();
    let art = report.artifact.unwrap().to_string();
    let id = p.submit_job(&t, &art, 1, 5, 0).unwrap();
    assert!(matches!(p.job(&t, id, 0).unwrap().state, JobState::Pending));
    p.tick(); // dispatch + execute
    let view = p.job(&t, id, 0).unwrap();
    assert!(
        view.stdout.contains("line 0") && view.stdout.contains("line 2"),
        "{}",
        view.stdout
    );
    assert!(p.drain_jobs(100));
    assert!(matches!(
        p.job(&t, id, 0).unwrap().state,
        JobState::Completed { .. }
    ));
    // Resources returned.
    let (free, total, util) = p.cluster_status();
    assert_eq!(free, total);
    assert_eq!(util, 0.0);
}

#[test]
fn stdin_reaches_batch_job() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "echo.mini",
        b"fn main() { println(\"got: \", read_line()); }".to_vec(),
        0,
    )
    .unwrap();
    let art = p
        .compile(&t, "echo.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&t, &art, 1, 5, 0).unwrap();
    p.send_stdin(&t, id, "forty-two", 0).unwrap();
    p.drain_jobs(100);
    let view = p.job(&t, id, 0).unwrap();
    assert_eq!(view.stdout, "got: forty-two\n");
}

#[test]
fn parallel_job_occupies_cores() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(&t, "par.mini", b"fn main() { sleep(100000); }".to_vec(), 0)
        .unwrap();
    let art = p
        .compile(&t, "par.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let _id = p.submit_job(&t, &art, 8, 50, 0).unwrap();
    p.tick();
    let (free, total, _) = p.cluster_status();
    assert_eq!(total - free, 8);
}

#[test]
fn failing_job_reports_stderr() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "dead.mini",
        b"fn main() { var m = mutex(); lock(m); lock(m); }".to_vec(),
        0,
    )
    .unwrap();
    let art = p
        .compile(&t, "dead.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&t, &art, 1, 5, 0).unwrap();
    p.drain_jobs(100);
    let view = p.job(&t, id, 0).unwrap();
    assert!(view.stderr.contains("deadlock"), "{}", view.stderr);
}

#[test]
fn job_visibility_rules() {
    let mut p = portal();
    let alice = student(&mut p, "alice");
    let bob = student(&mut p, "bob");
    p.write_file(&alice, "x.mini", b"fn main() { }".to_vec(), 0)
        .unwrap();
    let art = p
        .compile(&alice, "x.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&alice, &art, 1, 1, 0).unwrap();
    assert!(matches!(p.job(&bob, id, 0), Err(PortalError::Forbidden(_))));
    assert!(p.jobs(&bob, 0).unwrap().is_empty());
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    assert_eq!(p.jobs(&admin, 0).unwrap().len(), 1);
    assert!(matches!(
        p.cancel_job(&bob, id, 0),
        Err(PortalError::Forbidden(_))
    ));
    p.cancel_job(&alice, id, 0).unwrap();
}

#[test]
fn drain_requires_admin_and_is_visible_in_health() {
    let mut p = portal();
    let s = student(&mut p, "alice");
    assert!(matches!(
        p.drain_node(&s, 0, 0, 0),
        Err(PortalError::Forbidden(_))
    ));
    assert!(matches!(
        p.undrain_node(&s, 0, 0, 0),
        Err(PortalError::Forbidden(_))
    ));
    assert!(!p.degraded());
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    p.drain_node(&admin, 0, 0, 0).unwrap();
    assert!(p.degraded());
    let nodes = p.cluster_nodes();
    assert_eq!(nodes.len(), 4);
    let drained = nodes
        .iter()
        .find(|n| n.segment == 0 && n.slot == 0)
        .unwrap();
    assert_eq!(drained.health, "draining");
    assert!(nodes.iter().filter(|n| n.health == "up").count() == 3);
    p.undrain_node(&admin, 0, 0, 0).unwrap();
    assert!(!p.degraded());
}

#[test]
fn degraded_portal_keeps_accepting_jobs() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(&t, "x.mini", b"fn main() { }".to_vec(), 0)
        .unwrap();
    let art = p
        .compile(&t, "x.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    // Take a whole segment down (half the 16-core cluster).
    let sched = p.scheduler_mut();
    sched
        .cluster_mut()
        .set_health(
            SlaveId {
                segment: 0,
                slot: 0,
            },
            NodeHealth::Down,
        )
        .unwrap();
    sched
        .cluster_mut()
        .set_health(
            SlaveId {
                segment: 0,
                slot: 1,
            },
            NodeHealth::Down,
        )
        .unwrap();
    assert!(p.degraded());
    // 12 cores exceeds live capacity (8) but not spec capacity (16): the
    // submission is accepted and parks until the segment returns.
    let id = p.submit_job(&t, &art, 12, 5, 0).unwrap();
    for _ in 0..10 {
        p.tick();
    }
    assert!(matches!(p.job(&t, id, 0).unwrap().state, JobState::Pending));
    let sched = p.scheduler_mut();
    sched
        .cluster_mut()
        .set_health(
            SlaveId {
                segment: 0,
                slot: 0,
            },
            NodeHealth::Up,
        )
        .unwrap();
    sched
        .cluster_mut()
        .set_health(
            SlaveId {
                segment: 0,
                slot: 1,
            },
            NodeHealth::Up,
        )
        .unwrap();
    assert!(p.drain_jobs(100));
    assert!(matches!(
        p.job(&t, id, 0).unwrap().state,
        JobState::Completed { .. }
    ));
}

#[test]
fn job_view_reports_attempts_and_failure_cause() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "long.mini",
        b"fn main() { sleep(1000000); }".to_vec(),
        0,
    )
    .unwrap();
    let art = p
        .compile(&t, "long.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&t, &art, 1, 100, 0).unwrap();
    p.tick();
    assert_eq!(p.job(&t, id, 0).unwrap().attempt, 1);
    // Kill the node under it; default retry policy requeues the job.
    let victim = *p
        .scheduler_mut()
        .job(id)
        .unwrap()
        .allocation
        .as_ref()
        .unwrap()
        .cores
        .keys()
        .next()
        .unwrap();
    p.scheduler_mut()
        .cluster_mut()
        .set_health(victim, NodeHealth::Down)
        .unwrap();
    p.tick();
    let view = p.job(&t, id, 0).unwrap();
    assert!(
        matches!(view.state, JobState::Requeued { attempt: 2, .. }),
        "{:?}",
        view.state
    );
    assert_eq!(view.last_failure.as_deref(), Some("node went down"));
    assert!(view.state_label.contains("requeued"));
}

#[test]
fn cancel_after_fault_returns_typed_errors() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "long.mini",
        b"fn main() { sleep(1000000); }".to_vec(),
        0,
    )
    .unwrap();
    let art = p
        .compile(&t, "long.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&t, &art, 1, 100, 0).unwrap();
    // No retries for this job: first node loss is final.
    p.scheduler_mut().job_mut(id).unwrap().spec.retry = Some(RetryPolicy::none());
    p.tick();
    let victim = *p
        .scheduler_mut()
        .job(id)
        .unwrap()
        .allocation
        .as_ref()
        .unwrap()
        .cores
        .keys()
        .next()
        .unwrap();
    p.scheduler_mut()
        .cluster_mut()
        .set_health(victim, NodeHealth::Down)
        .unwrap();
    p.tick();
    assert!(matches!(
        p.cancel_job(&t, id, 0),
        Err(PortalError::JobLost { attempts: 1, .. })
    ));
    // Timed-out jobs answer with the timeout error.
    let id2 = p.submit_job(&t, &art, 1, 100, 0).unwrap();
    p.scheduler_mut().job_mut(id2).unwrap().spec.timeout_ticks = Some(1);
    for _ in 0..3 {
        p.tick();
    }
    assert!(matches!(
        p.job(&t, id2, 0).unwrap().state,
        JobState::TimedOut { .. }
    ));
    assert!(matches!(
        p.cancel_job(&t, id2, 0),
        Err(PortalError::JobTimedOut { .. })
    ));
}

#[test]
fn interactive_run_is_seed_deterministic() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    let src = br#"
        var counter = 0;
        fn w() { for (var i = 0; i < 100; i = i + 1) { counter = counter + 1; } }
        fn main() { var a = spawn w(); var b = spawn w(); join(a); join(b); println(counter); }
    "#;
    p.write_file(&t, "race.mini", src.to_vec(), 0).unwrap();
    let art = p
        .compile(&t, "race.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let r1 = p
        .run_interactive(&t, &art, 99, 0)
        .unwrap()
        .outcome
        .unwrap()
        .stdout;
    let r2 = p
        .run_interactive(&t, &art, 99, 0)
        .unwrap()
        .outcome
        .unwrap()
        .stdout;
    assert_eq!(r1, r2);
}

#[test]
fn job_timeline_is_gated_and_ends_terminal() {
    let mut p = portal();
    let alice = student(&mut p, "alice");
    let bob = student(&mut p, "bob");
    p.write_file(&alice, "t.mini", b"fn main() { println(1); }".to_vec(), 0)
        .unwrap();
    let art = p
        .compile(&alice, "t.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&alice, &art, 1, 5, 0).unwrap();
    assert!(p.drain_jobs(100));
    assert!(matches!(
        p.job(&alice, id, 0).unwrap().state,
        JobState::Completed { .. }
    ));
    // Owner sees the ordered life story; its terminal event matches the state.
    let timeline = p.job_timeline(&alice, id, 0).unwrap();
    let names: Vec<&str> = timeline.iter().map(|e| e.event.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "job.submitted",
            "job.queued",
            "job.dispatched",
            "job.completed"
        ]
    );
    assert!(timeline.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(timeline[0]
        .attrs
        .iter()
        .any(|(k, v)| k == "user" && v == "alice"));
    // Another student cannot; an admin can.
    assert!(matches!(
        p.job_timeline(&bob, id, 0),
        Err(PortalError::Forbidden(_))
    ));
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    assert_eq!(p.job_timeline(&admin, id, 0).unwrap().len(), 4);
}

#[test]
fn metrics_text_covers_every_instrumented_layer() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(&t, "m.mini", b"fn main() { println(1); }".to_vec(), 0)
        .unwrap();
    let art = p
        .compile(&t, "m.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    let id = p.submit_job(&t, &art, 1, 5, 0).unwrap();
    assert!(p.drain_jobs(100));
    assert!(matches!(
        p.job(&t, id, 0).unwrap().state,
        JobState::Completed { .. }
    ));
    let text = p.metrics_text();
    for needle in [
        "ccp_sched_jobs_submitted_total 1",
        "ccp_sched_jobs_completed_total 1",
        "ccp_sched_queue_depth 0",
        "ccp_sched_job_wait_ticks_count 1",
        "ccp_cluster_allocations_total 1",
        "ccp_cluster_nodes{state=\"up\"} 4",
        "ccp_toolchain_compiles_total{result=\"ok\"} 1",
        "ccp_toolchain_execs_total{result=\"ok\"} 1",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn health_view_counts_agree_with_nodes() {
    let mut p = portal();
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    let h = p.health_view();
    assert!(!h.degraded);
    assert_eq!((h.nodes_up, h.nodes_draining, h.nodes_down), (4, 0, 0));
    p.drain_node(&admin, 0, 0, 0).unwrap();
    let h = p.health_view();
    assert!(h.degraded);
    assert_eq!((h.nodes_up, h.nodes_draining, h.nodes_down), (3, 1, 0));
    assert_eq!(h.nodes.len(), 4);
    assert_eq!(h.nodes.iter().filter(|n| n.health == "draining").count(), 1);
}

#[test]
fn event_log_requires_admin() {
    let mut p = portal();
    let s = student(&mut p, "alice");
    assert!(matches!(
        p.recent_events(&s, 10, 0),
        Err(PortalError::Forbidden(_))
    ));
    let admin = p.login("admin", "super-secret9", 0).unwrap();
    assert!(p.recent_events(&admin, 10, 0).is_ok());
}

#[test]
fn vm_file_io_lands_in_portal_home() {
    let mut p = portal();
    let t = student(&mut p, "alice");
    p.write_file(
        &t,
        "writer.mini",
        br#"fn main() { write_file("result.txt", "computed"); }"#.to_vec(),
        0,
    )
    .unwrap();
    let art = p
        .compile(&t, "writer.mini", 0)
        .unwrap()
        .artifact
        .unwrap()
        .to_string();
    p.run_interactive(&t, &art, 0, 0).unwrap();
    assert_eq!(p.read_file(&t, "result.txt", 0).unwrap(), b"computed");
}
