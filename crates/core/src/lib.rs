//! # ccp-core — the portal backend ("the backend workhorse")
//!
//! The paper's architecture in one sentence: "It takes the needed
//! information from a user, it then creates a compilation and/or executor
//! object, which in turn upon success contacts a job distributor to
//! allocate resources on the cluster and finally dispatch the job onto
//! those resources" (§II). This crate is that sentence as a library.
//!
//! [`Portal`] composes every substrate — [`auth`] (users/sessions),
//! [`vfs`] (home directories), [`toolchain`] (compile + execute),
//! [`sched`] (the job distributor) and [`cluster`] (the machine) — behind
//! one session-authenticated API that the web layer (`webportal`) maps
//! 1:1 onto HTTP endpoints.
//!
//! ```
//! use ccp_core::{Portal, PortalConfig};
//! use auth::Role;
//!
//! let mut portal = Portal::new(PortalConfig::default());
//! portal.bootstrap_admin("admin", "super-secret9").unwrap();
//! let admin = portal.login("admin", "super-secret9", 0).unwrap();
//! portal.create_user(&admin, "student1", "password99", Role::Student, 0).unwrap();
//! let tok = portal.login("student1", "password99", 0).unwrap();
//! portal.write_file(&tok, "hello.mini", b"fn main() { println(7); }".to_vec(), 0).unwrap();
//! let report = portal.compile(&tok, "hello.mini", 0).unwrap();
//! assert!(report.success());
//! let artifact = report.artifact.as_ref().unwrap().to_string();
//! let run = portal.run_interactive(&tok, &artifact, 0, 0).unwrap();
//! assert_eq!(run.outcome.unwrap().stdout, "7\n");
//! ```

pub mod error;
pub mod portal;
pub mod view;

pub use error::PortalError;
pub use portal::{
    AnalyzeDone, AnalyzePhase, CompileDone, CompilePhase, Portal, PortalConfig, RunDone, RunPhase,
    SessionStamp,
};
pub use view::{
    AlertView, AnalysisView, DashboardView, EventView, FileView, HealthView, JobView, NodeView,
    QuantilePanel, QuotaView, RatePanel, RecoveryView, SlowOpView, SpanView, TimelineEventView,
    TraceView,
};
