//! The [`Portal`]: every substrate behind one session-authenticated API.

use crate::error::PortalError;
use crate::view::{
    state_label, AlertView, AnalysisView, DashboardView, EventView, FileView, HealthView, JobView,
    NodeView, QuotaView, RecoveryView, SlowOpView, SpanView, TimelineEventView, TraceView,
};
use auth::{Role, SessionManager, Token, UserStore};
use cluster::{Cluster, ClusterSpec, NodeHealth, SlaveId};
use obs::{Obs, SloEngine, TimeSeriesStore, TraceContext};
use parking_lot::Mutex;
use sched::{JobId, JobSpec, JobState, SchedPolicyKind, Scheduler};
use std::path::PathBuf;
use std::sync::Arc;
use toolchain::{ArtifactId, ArtifactStore, CompileReport, CompileRequest, ExecReport, Executor};
use vfs::{EntryKind, Vfs, VfsError};
use wal::{FileStorage, FsyncPolicy, Journal, JournalHooks, RecoveryReport};

/// Portal construction parameters.
#[derive(Debug, Clone)]
pub struct PortalConfig {
    /// Hardware to boot.
    pub cluster: ClusterSpec,
    /// Job-distribution policy.
    pub policy: SchedPolicyKind,
    /// Session time-to-live (caller clock units; the web layer passes
    /// seconds).
    pub session_ttl: u64,
    /// Default per-user quota in bytes.
    pub default_quota: u64,
    /// Seed for token generation and password salts.
    pub seed: u64,
    /// How many VM instructions equal one scheduler tick when deriving a
    /// dispatched job's runtime.
    pub instructions_per_tick: u64,
    /// Checker pool width. `None` consults the `CCP_CHECKER_THREADS`
    /// environment variable, falling back to
    /// `max(1, available_parallelism - 1)`; 0 or 1 runs analyses serially.
    pub checker_threads: Option<usize>,
    /// Compile-cache capacity in programs (0 disables caching).
    pub compile_cache_capacity: usize,
    /// Snapshot/prefix reuse in the checker's DFS (see
    /// `CheckConfig::snapshot_prefix`). Same reports, strictly less work;
    /// off falls back to the stateless reference explorer.
    pub checker_snapshot_prefix: bool,
    /// Visited-state cache capacity for analyses (see
    /// `CheckConfig::state_cache_capacity`). 0 — the default — keeps
    /// exploration exhaustive-modulo-budget; nonzero trades soundness of
    /// the `complete` flag for speed and forces analyses serial.
    pub checker_state_cache: usize,
    /// Dynamic partial-order reduction in analyses (see
    /// `CheckConfig::dpor`). Same verdicts on strictly fewer schedules;
    /// off falls back to the sleep-set DFS.
    pub checker_dpor: bool,
    /// CHESS-style preemption bound for analyses (see
    /// `CheckConfig::preemption_bound`). `None` explores freely; `Some(b)`
    /// certifies `exhaustive_within_bound` instead of `complete`.
    pub checker_preemption_bound: Option<u32>,
    /// Durability root. `Some(dir)` persists filesystem and scheduler
    /// state to write-ahead logs under `dir` and recovers them at boot;
    /// `None` (the default) keeps the portal fully in-memory, bit-for-bit
    /// identical to the pre-durability behaviour.
    pub data_dir: Option<PathBuf>,
    /// When to fsync the logs: group commit (one fsync per N appends) by
    /// default; `Always` for strongest durability, `Never` for benches.
    pub wal_fsync: FsyncPolicy,
    /// Install a snapshot and compact each log every N records
    /// (0 = never snapshot; the log grows without bound).
    pub snapshot_interval: u64,
    /// Time-series store depth: how many periodic metrics captures the
    /// dashboard can window over before old ones roll off.
    pub ts_capacity: usize,
    /// Capture the registry into the store every N scheduler ticks.
    pub sample_every: u64,
    /// Service-level objectives evaluated over the store each sample.
    /// Defaults to [`PortalConfig::default_slos`]; empty disables alerting.
    pub slos: Vec<obs::SloSpec>,
    /// Operations slower than this (wall-clock µs) land in the bounded
    /// slowest-ops log at `/api/admin/slow`.
    pub slow_op_threshold_us: u64,
    /// Run a checker analysis on every job the distributor executes,
    /// recording the verdict as a `checker.analyze` span in the job's
    /// trace. Off by default: it spends checker budget per dispatch.
    pub auto_analyze: bool,
}

impl PortalConfig {
    /// The stock objectives: sustained deep queue, excessive job loss,
    /// and degraded p99 wait time. All read tick-domain series, so alert
    /// histories are reproducible across same-seed runs.
    pub fn default_slos() -> Vec<obs::SloSpec> {
        use obs::{SloKind, SloSpec};
        vec![
            SloSpec {
                name: "queue-depth".into(),
                kind: SloKind::GaugeAbove {
                    series: "ccp_sched_queue_depth".into(),
                    threshold_milli: 32_000,
                },
                short_window: 8,
                long_window: 32,
            },
            SloSpec {
                name: "job-loss".into(),
                kind: SloKind::ErrorRatio {
                    bad: "ccp_sched_jobs_node_lost_total".into(),
                    total: "ccp_sched_jobs_submitted_total".into(),
                    objective_milli: 50,
                },
                short_window: 8,
                long_window: 32,
            },
            SloSpec {
                name: "wait-p99".into(),
                kind: SloKind::QuantileAbove {
                    series: "ccp_sched_job_wait_ticks".into(),
                    q: 0.99,
                    threshold: 500.0,
                },
                short_window: 8,
                long_window: 32,
            },
        ]
    }
}

impl Default for PortalConfig {
    fn default() -> Self {
        PortalConfig {
            cluster: ClusterSpec::uhd(),
            policy: SchedPolicyKind::Backfill,
            session_ttl: 3600,
            default_quota: 16 << 20,
            seed: 0x5eed,
            instructions_per_tick: 10_000,
            checker_threads: None,
            compile_cache_capacity: 256,
            checker_snapshot_prefix: true,
            checker_state_cache: 0,
            checker_dpor: true,
            checker_preemption_bound: None,
            data_dir: None,
            wal_fsync: FsyncPolicy::EveryN(8),
            snapshot_interval: 1024,
            ts_capacity: 512,
            sample_every: 1,
            slos: PortalConfig::default_slos(),
            slow_op_threshold_us: obs::DEFAULT_SLOW_OP_THRESHOLD_US,
            auto_analyze: false,
        }
    }
}

/// Routes [`Journal`] telemetry into the shared metrics registry, one hook
/// set per stream (`stream="vfs"` / `stream="sched"`).
struct WalMetricHooks {
    appends: obs::Counter,
    bytes: obs::Counter,
    fsyncs: obs::Counter,
    snapshots: obs::Counter,
    /// For the contention profiler: group-commit storage-sync waits land
    /// under the `wal.commit` site.
    obs: Arc<Obs>,
    stream: &'static str,
}

impl JournalHooks for WalMetricHooks {
    fn on_append(&self, bytes: u64) {
        self.appends.inc();
        self.bytes.add(bytes);
    }
    fn on_fsync(&self) {
        self.fsyncs.inc();
    }
    fn on_fsync_wait(&self, us: u64) {
        self.obs
            .profiler
            .observe("wal.commit", us, || format!("{} stream fsync", self.stream));
    }
    fn on_snapshot(&self) {
        self.snapshots.inc();
    }
}

/// Describe and eagerly register every `ccp_wal_*` family for both
/// streams, so `/api/metrics` exposes them from the first scrape even on
/// an in-memory portal (the scrape contract is checked by
/// `scripts/check_metrics.sh`).
fn register_wal_metrics(obs: &Obs) {
    let m = &obs.metrics;
    m.describe("ccp_wal_appends_total", "records appended to the WAL");
    m.describe("ccp_wal_bytes_total", "framed bytes appended to the WAL");
    m.describe("ccp_wal_fsyncs_total", "fsyncs issued by the WAL");
    m.describe(
        "ccp_wal_snapshots_total",
        "snapshots installed (log compactions)",
    );
    m.describe(
        "ccp_wal_recoveries_total",
        "crash recoveries performed at boot",
    );
    m.describe(
        "ccp_wal_recovery_replay_us",
        "wall time spent recovering a WAL stream at boot (us)",
    );
    for stream in ["vfs", "sched"] {
        let labels = &[("stream", stream)];
        m.counter("ccp_wal_appends_total", labels);
        m.counter("ccp_wal_bytes_total", labels);
        m.counter("ccp_wal_fsyncs_total", labels);
        m.counter("ccp_wal_snapshots_total", labels);
        m.counter("ccp_wal_recoveries_total", labels);
        m.histogram(
            "ccp_wal_recovery_replay_us",
            labels,
            obs::DURATION_US_BOUNDS,
        );
    }
}

fn wal_hooks(obs: &Arc<Obs>, stream: &'static str) -> Box<dyn JournalHooks> {
    let m = &obs.metrics;
    let labels = &[("stream", stream)];
    Box::new(WalMetricHooks {
        appends: m.counter("ccp_wal_appends_total", labels),
        bytes: m.counter("ccp_wal_bytes_total", labels),
        fsyncs: m.counter("ccp_wal_fsyncs_total", labels),
        snapshots: m.counter("ccp_wal_snapshots_total", labels),
        obs: Arc::clone(obs),
        stream,
    })
}

/// Open both WAL streams under `dir`, recover the filesystem and the
/// scheduler from them, and leave the journals attached so subsequent
/// mutations are logged. Returns the per-stream recovery views.
fn open_durable(
    dir: &std::path::Path,
    config: &PortalConfig,
    obs: &Arc<Obs>,
    fs: &mut Vfs,
    scheduler: &mut Scheduler,
) -> Result<Vec<RecoveryView>, String> {
    let open_stream = |name: &str| -> Result<(Journal, wal::Recovered), String> {
        let storage = FileStorage::open(dir, name).map_err(|e| format!("open {name} log: {e}"))?;
        Journal::open(
            Box::new(storage),
            config.wal_fsync,
            config.snapshot_interval,
        )
        .map_err(|e| format!("recover {name} log: {e}"))
    };

    let (vfs_journal, vfs_recovered) = open_stream("vfs")?;
    let (recovered_fs, vfs_replay_errors) =
        Vfs::recover(&vfs_recovered).map_err(|e| format!("replay vfs log: {e}"))?;
    *fs = recovered_fs;
    fs.attach_journal(vfs_journal.with_hooks(wal_hooks(obs, "vfs")));

    let (sched_journal, sched_recovered) = open_stream("sched")?;
    let sched_replay_errors = scheduler
        .recover(&sched_recovered)
        .map_err(|e| format!("replay sched log: {e}"))?;
    scheduler.attach_journal(sched_journal.with_hooks(wal_hooks(obs, "sched")));

    let mut views = Vec::new();
    for (stream, report, replay_errors) in [
        ("vfs", &vfs_recovered.report, vfs_replay_errors),
        ("sched", &sched_recovered.report, sched_replay_errors),
    ] {
        let labels = &[("stream", stream)];
        obs.metrics
            .counter("ccp_wal_recoveries_total", labels)
            .inc();
        obs.metrics
            .histogram(
                "ccp_wal_recovery_replay_us",
                labels,
                obs::DURATION_US_BOUNDS,
            )
            .record(report.wall_us);
        views.push(recovery_view(stream, report, replay_errors));
    }
    Ok(views)
}

fn recovery_view(stream: &str, report: &RecoveryReport, replay_errors: u64) -> RecoveryView {
    RecoveryView {
        stream: stream.to_string(),
        snapshot_lsn: report.snapshot_lsn,
        snapshot_corrupt: report.snapshot_corrupt,
        records_replayed: report.records_replayed,
        torn_bytes: report.torn_bytes,
        corrupt_records: report.corrupt_records,
        replay_errors,
        last_lsn: report.last_lsn,
        wall_us: report.wall_us,
    }
}

/// The portal backend. One instance serves the whole site; the web layer
/// wraps it in a mutex.
pub struct Portal {
    users: UserStore,
    sessions: SessionManager,
    fs: Arc<Mutex<Vfs>>,
    artifacts: ArtifactStore,
    scheduler: Scheduler,
    pool: Arc<checker::Pool>,
    compile_cache: toolchain::CompileCache,
    obs: Arc<Obs>,
    store: TimeSeriesStore,
    slo: SloEngine,
    config: PortalConfig,
    admin_bootstrapped: bool,
    recovery: Vec<RecoveryView>,
    wal_enabled: bool,
    wal_open_error: Option<String>,
}

impl Portal {
    /// Boot a portal: empty user store, cold cluster. With
    /// [`PortalConfig::data_dir`] set, the filesystem and scheduler are
    /// recovered from their write-ahead logs (fresh when the logs are
    /// empty) and every subsequent mutation is journaled; otherwise both
    /// start fresh and stay in-memory. Every substrate records into one
    /// shared telemetry domain.
    pub fn new(config: PortalConfig) -> Portal {
        let cluster = Cluster::new(config.cluster.clone());
        let obs = Arc::new(Obs::new());
        let workers = config
            .checker_threads
            .or_else(|| {
                std::env::var("CCP_CHECKER_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(checker::Pool::default_workers);
        let pool = Arc::new(checker::Pool::new(workers).with_obs(Arc::clone(&obs)));
        toolchain::cache::register_cache_metrics(&obs);
        register_wal_metrics(&obs);
        obs.profiler.set_threshold_us(config.slow_op_threshold_us);
        let store = TimeSeriesStore::new(config.ts_capacity.max(1));
        let slo = SloEngine::new(config.slos.clone(), &obs.metrics);

        let mut fs = Vfs::new();
        let mut scheduler = Scheduler::new(cluster, config.policy).with_obs(Arc::clone(&obs));
        let mut recovery = Vec::new();
        let mut wal_enabled = false;
        let mut wal_open_error = None;
        if let Some(dir) = config.data_dir.clone() {
            match open_durable(&dir, &config, &obs, &mut fs, &mut scheduler) {
                Ok(views) => {
                    recovery = views;
                    wal_enabled = true;
                }
                // A portal that cannot journal still serves — from memory,
                // with the failure surfaced in /api/health — rather than
                // refusing to boot over a full disk or bad permissions.
                Err(e) => wal_open_error = Some(e),
            }
        }

        Portal {
            users: UserStore::new(config.seed),
            sessions: SessionManager::new(config.session_ttl, config.seed.wrapping_add(1)),
            fs: Arc::new(Mutex::new(fs)),
            artifacts: ArtifactStore::new(),
            scheduler,
            pool,
            compile_cache: toolchain::CompileCache::new(config.compile_cache_capacity),
            obs,
            store,
            slo,
            config,
            admin_bootstrapped: false,
            recovery,
            wal_enabled,
            wal_open_error,
        }
    }

    /// Create the first (admin) account. Callable exactly once per boot.
    /// After a crash recovery the account's files already exist in the
    /// vfs; only the credential store (which is not journaled) is
    /// repopulated.
    pub fn bootstrap_admin(&mut self, name: &str, password: &str) -> Result<(), PortalError> {
        if self.admin_bootstrapped {
            return Err(PortalError::Bootstrap("admin already exists"));
        }
        self.users.register(name, password, Role::Admin)?;
        match self.fs.lock().add_user(name, u64::MAX) {
            Ok(()) | Err(VfsError::UserExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.admin_bootstrapped = true;
        Ok(())
    }

    // ---- sessions ----------------------------------------------------------

    /// Authenticate and mint a session token.
    pub fn login(&mut self, name: &str, password: &str, now: u64) -> Result<Token, PortalError> {
        self.users.verify(name, password)?;
        Ok(self.sessions.issue(name, now))
    }

    /// Invalidate a token. Idempotent.
    pub fn logout(&mut self, token: &Token) {
        self.sessions.revoke(token);
    }

    /// Resolve a token to `(username, role)`.
    pub fn whoami(&self, token: &Token, now: u64) -> Result<(String, Role), PortalError> {
        let s = self.sessions.validate(token, now)?;
        let user = self
            .users
            .get(&s.username)
            .ok_or(PortalError::Forbidden("account removed"))?;
        Ok((user.username.clone(), user.role))
    }

    // ---- admin -------------------------------------------------------------

    /// Create an account (admin only). Also creates the vfs home.
    pub fn create_user(
        &mut self,
        admin: &Token,
        name: &str,
        password: &str,
        role: Role,
        now: u64,
    ) -> Result<(), PortalError> {
        let (_, caller_role) = self.whoami(admin, now)?;
        if !caller_role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("user creation requires admin"));
        }
        self.users.register(name, password, role)?;
        // After a crash recovery the home directory may already exist
        // (the vfs is journaled; the credential store is not).
        match self.fs.lock().add_user(name, self.config.default_quota) {
            Ok(()) | Err(VfsError::UserExists(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// All usernames (admin only).
    pub fn list_users(&self, admin: &Token, now: u64) -> Result<Vec<String>, PortalError> {
        let (_, role) = self.whoami(admin, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("user listing requires admin"));
        }
        Ok(self.users.usernames())
    }

    /// Admin: drain a node — no new placements, running jobs finish.
    pub fn drain_node(
        &mut self,
        admin: &Token,
        segment: usize,
        slot: usize,
        now: u64,
    ) -> Result<(), PortalError> {
        let (_, role) = self.whoami(admin, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("draining a node requires admin"));
        }
        Ok(self.scheduler.drain_node(SlaveId { segment, slot })?)
    }

    /// Admin: return a drained or recovered node to service.
    pub fn undrain_node(
        &mut self,
        admin: &Token,
        segment: usize,
        slot: usize,
        now: u64,
    ) -> Result<(), PortalError> {
        let (_, role) = self.whoami(admin, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("undraining a node requires admin"));
        }
        Ok(self.scheduler.undrain_node(SlaveId { segment, slot })?)
    }

    // ---- path resolution -----------------------------------------------------

    /// Resolve a client-supplied path for `user` with `role`: relative paths
    /// anchor at the home directory; students may not escape their home.
    fn resolve(&self, user: &str, role: Role, path: &str) -> Result<String, PortalError> {
        let home = format!("/home/{user}");
        let full = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("{home}/{path}")
        };
        // Normalize through VPath to fold any `..`.
        let normalized = vfs::VPath::parse(&full)?.to_string();
        if role == Role::Student && !normalized.starts_with(&home) {
            return Err(PortalError::OutsideHome { path: normalized });
        }
        Ok(normalized)
    }

    // ---- file manager ---------------------------------------------------------

    /// List a directory.
    pub fn list_dir(
        &self,
        token: &Token,
        path: &str,
        now: u64,
    ) -> Result<Vec<FileView>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        let entries = self.fs.lock().list(&user, &full)?;
        Ok(entries
            .into_iter()
            .map(|e| FileView {
                name: e.name,
                is_dir: e.stat.kind == EntryKind::Dir,
                size: e.stat.size,
                owner: e.stat.owner,
                mtime: e.stat.mtime,
            })
            .collect())
    }

    /// Read (download) a file.
    pub fn read_file(&self, token: &Token, path: &str, now: u64) -> Result<Vec<u8>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().read(&user, &full)?)
    }

    /// Write (upload / save) a file.
    pub fn write_file(
        &self,
        token: &Token,
        path: &str,
        data: Vec<u8>,
        now: u64,
    ) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().write(&user, &full, data)?)
    }

    /// Create a directory (and parents).
    pub fn mkdir(&self, token: &Token, path: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().mkdir_p(&user, &full)?)
    }

    /// Delete a file or directory subtree.
    pub fn remove(&self, token: &Token, path: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().remove_recursive(&user, &full)?)
    }

    /// Rename / move.
    pub fn rename(&self, token: &Token, from: &str, to: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let f = self.resolve(&user, role, from)?;
        let t = self.resolve(&user, role, to)?;
        Ok(self.fs.lock().rename(&user, &f, &t)?)
    }

    /// Copy a file or subtree.
    pub fn copy(&self, token: &Token, from: &str, to: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let f = self.resolve(&user, role, from)?;
        let t = self.resolve(&user, role, to)?;
        Ok(self.fs.lock().copy(&user, &f, &t)?)
    }

    /// The caller's quota.
    pub fn quota(&self, token: &Token, now: u64) -> Result<QuotaView, PortalError> {
        let (user, _) = self.whoami(token, now)?;
        let (used, limit) = self.fs.lock().quota(&user)?;
        Ok(QuotaView { used, limit })
    }

    // ---- compilation & execution ------------------------------------------------

    /// Compile a source file; the report carries gcc-style diagnostics.
    pub fn compile(
        &mut self,
        token: &Token,
        path: &str,
        now: u64,
    ) -> Result<CompileReport, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        // Interactive runs hold this lock for whole VM executions, so the
        // compile path is where vfs lock contention actually shows up.
        let t0 = std::time::Instant::now();
        let fs = self.fs.lock();
        self.obs
            .profiler
            .observe("vfs.lock", t0.elapsed().as_micros() as u64, || {
                format!("compile {full}")
            });
        Ok(CompileRequest::new(&user, &full).run_cached_observed(
            &fs,
            &mut self.artifacts,
            &mut self.compile_cache,
            &self.obs,
        ))
    }

    /// Compile-cache totals (dashboard / tests).
    pub fn compile_cache_stats(&self) -> toolchain::CacheStats {
        self.compile_cache.stats()
    }

    /// The caller's artifacts, most recent first, as `(id, source_path)`.
    pub fn my_artifacts(
        &self,
        token: &Token,
        now: u64,
    ) -> Result<Vec<(String, String)>, PortalError> {
        let (user, _) = self.whoami(token, now)?;
        Ok(self
            .artifacts
            .by_owner(&user)
            .into_iter()
            .map(|a| (a.id.to_string(), a.source_path.clone()))
            .collect())
    }

    fn artifact_for(&self, user: &str, role: Role, id: &str) -> Result<ArtifactId, PortalError> {
        let aid = ArtifactId::from_string(id);
        let art = self.artifacts.get(&aid).ok_or_else(|| {
            PortalError::Exec(toolchain::ExecutorError::NoSuchArtifact(id.to_string()))
        })?;
        if art.owner != user && !role.at_least(Role::Faculty) {
            return Err(PortalError::Forbidden("artifact belongs to another user"));
        }
        Ok(aid)
    }

    /// Run an artifact synchronously (the "run in browser" button), with
    /// stdin lines queued up front.
    pub fn run_interactive(
        &mut self,
        token: &Token,
        artifact: &str,
        seed: u64,
        now: u64,
    ) -> Result<ExecReport, PortalError> {
        self.run_interactive_stdin(token, artifact, seed, &[], now)
    }

    /// [`Portal::run_interactive`] with stdin lines.
    pub fn run_interactive_stdin(
        &mut self,
        token: &Token,
        artifact: &str,
        seed: u64,
        stdin: &[String],
        now: u64,
    ) -> Result<ExecReport, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let aid = self.artifact_for(&user, role, artifact)?;
        let exec = Executor::with_seed(seed);
        Ok(exec.run_with_stdin_observed(
            &self.artifacts,
            &aid,
            Arc::clone(&self.fs),
            &user,
            stdin,
            &self.obs,
        )?)
    }

    /// Systematically explore an artifact's thread interleavings (the
    /// "analyze" button): race / deadlock / livelock detection with a
    /// minimized repro schedule on failure. Owner-gated like
    /// [`Portal::run_interactive`]; faculty and admins may analyze any
    /// artifact. `budget` caps the schedule count (`None` = grader default).
    pub fn analyze_job(
        &mut self,
        token: &Token,
        artifact: &str,
        budget: Option<u64>,
        now: u64,
    ) -> Result<AnalysisView, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let aid = self.artifact_for(&user, role, artifact)?;
        let program = self
            .artifacts
            .get(&aid)
            .ok_or_else(|| {
                PortalError::Exec(toolchain::ExecutorError::NoSuchArtifact(
                    artifact.to_string(),
                ))
            })?
            .program
            .clone();
        let mut cfg = checker::CheckConfig {
            snapshot_prefix: self.config.checker_snapshot_prefix,
            state_cache_capacity: self.config.checker_state_cache,
            dpor: self.config.checker_dpor,
            preemption_bound: self.config.checker_preemption_bound,
            ..checker::CheckConfig::default()
        };
        if let Some(b) = budget {
            cfg.max_schedules = b.clamp(1, 512);
        }
        // Through the shared pool: bit-for-bit the same report as the
        // serial `checker::check`, in a fraction of the wall-clock.
        let (report, stats) = self.pool.check_with_stats(&program, &cfg);

        let m = &self.obs.metrics;
        m.describe(
            "ccp_checker_analyses_total",
            "interleaving analyses by verdict class",
        );
        m.describe(
            "ccp_checker_schedules_explored_total",
            "schedules explored across analyses",
        );
        m.describe(
            "ccp_checker_steps_explored_total",
            "visible steps explored across analyses",
        );
        m.describe(
            "ccp_checker_dpor_backtracks_total",
            "DPOR backtrack-set insertions across analyses",
        );
        m.describe(
            "ccp_checker_dpor_pruned_siblings_total",
            "branch siblings DPOR proved redundant and never explored",
        );
        m.describe(
            "ccp_checker_dpor_bound_pruned_total",
            "branch members pruned by the preemption bound",
        );
        m.counter(
            "ccp_checker_analyses_total",
            &[("verdict", report.verdict.class())],
        )
        .inc();
        m.counter("ccp_checker_schedules_explored_total", &[])
            .add(report.schedules);
        m.counter("ccp_checker_steps_explored_total", &[])
            .add(report.steps);
        // Registered eagerly (even when zero) so dashboards can tell
        // "reduction off" from "family not exported yet".
        m.counter("ccp_checker_dpor_backtracks_total", &[])
            .add(stats.dpor_backtracks);
        m.counter("ccp_checker_dpor_pruned_siblings_total", &[])
            .add(stats.dpor_pruned_siblings);
        m.counter("ccp_checker_dpor_bound_pruned_total", &[])
            .add(stats.bound_pruned);

        Ok(AnalysisView {
            artifact: artifact.to_string(),
            verdict: report.verdict.class().to_string(),
            detail: report.verdict.to_string(),
            schedules: report.schedules,
            steps: report.steps,
            complete: report.complete,
            exhaustive_within_bound: report.exhaustive_within_bound,
            repro: report.repro.unwrap_or_default(),
        })
    }

    /// Grade a batch of lab submissions across the checker pool (faculty
    /// or admin — grading exposes verdicts on other students' code). The
    /// reports are identical to grading each submission serially.
    pub fn grade_batch(
        &self,
        token: &Token,
        items: &[(labs::LabId, String)],
        now: u64,
    ) -> Result<Vec<labs::GradeReport>, PortalError> {
        let (_, role) = self.whoami(token, now)?;
        if !role.at_least(Role::Faculty) {
            return Err(PortalError::Forbidden("batch grading requires faculty"));
        }
        Ok(labs::grade_batch(&self.pool, items))
    }

    /// The shared checker pool (analyses and batch grading run on it).
    pub fn pool(&self) -> &Arc<checker::Pool> {
        &self.pool
    }

    // ---- the job distributor -----------------------------------------------------

    /// Submit an artifact as a batch job on `cores` cores. Returns the job
    /// id immediately; execution happens when the distributor dispatches it.
    pub fn submit_job(
        &mut self,
        token: &Token,
        artifact: &str,
        cores: u32,
        estimated_ticks: u64,
        now: u64,
    ) -> Result<JobId, PortalError> {
        self.submit_job_inner(token, artifact, cores, estimated_ticks, now, false)
    }

    /// [`Portal::submit_job`] with causal tracing: mints an `http.request`
    /// root span at the current scheduler tick and threads its
    /// [`TraceContext`] through the scheduler, so every later lifecycle
    /// event — dispatch, cluster allocation, execution, analysis, WAL
    /// appends — hangs under one tree served by `/api/trace/:job_id`.
    pub fn submit_job_traced(
        &mut self,
        token: &Token,
        artifact: &str,
        cores: u32,
        estimated_ticks: u64,
        now: u64,
    ) -> Result<JobId, PortalError> {
        self.submit_job_inner(token, artifact, cores, estimated_ticks, now, true)
    }

    fn submit_job_inner(
        &mut self,
        token: &Token,
        artifact: &str,
        cores: u32,
        estimated_ticks: u64,
        now: u64,
        traced: bool,
    ) -> Result<JobId, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let aid = self.artifact_for(&user, role, artifact)?;
        let spec = if cores <= 1 {
            JobSpec::sequential(&user, aid.as_str(), estimated_ticks.max(1))
        } else {
            JobSpec::parallel(&user, aid.as_str(), cores, estimated_ticks.max(1))
        };
        let spec = spec.with_estimate(estimated_ticks.max(1));
        if !traced {
            return Ok(self.scheduler.submit(spec)?);
        }
        let tick = self.scheduler.now();
        let span = self.obs.tracer.begin("http.request", tick);
        self.obs.tracer.set_attr(span, "route", "/api/jobs");
        let res = self
            .scheduler
            .submit_traced(spec, Some(TraceContext::new(span)));
        // The root closes immediately (admission is synchronous); the
        // job's asynchronous life keeps attaching children under it.
        self.obs.tracer.end(span, tick);
        match res {
            Ok(id) => {
                self.obs.tracer.set_attr(span, "job", &id.0.to_string());
                Ok(id)
            }
            Err(e) => {
                self.obs.tracer.set_attr(span, "error", &e.to_string());
                Err(e.into())
            }
        }
    }

    /// Advance the distributor one tick. Newly dispatched jobs execute on
    /// the VM now: their streams fill and their true runtime (derived from
    /// instructions executed) replaces the estimate.
    pub fn tick(&mut self) -> Vec<JobId> {
        let t0 = std::time::Instant::now();
        let dispatched = self.scheduler.tick();
        let now_tick = self.scheduler.now();
        for &id in &dispatched {
            let (artifact, user, stdin): (String, String, Vec<String>) = {
                let job = self.scheduler.job(id).expect("just dispatched");
                (
                    job.spec.executable.clone(),
                    job.spec.user.clone(),
                    job.streams.stdin.iter().cloned().collect(),
                )
            };
            let aid = ArtifactId::from_string(artifact);
            let exec = Executor::with_seed(self.config.seed ^ id.0);
            let report = exec.run_with_stdin_observed(
                &self.artifacts,
                &aid,
                Arc::clone(&self.fs),
                &user,
                &stdin,
                &self.obs,
            );
            let ipt = self.config.instructions_per_tick.max(1);
            // Route the outcome through the scheduler so it lands in the
            // journal: VM output is not re-derivable at recovery time.
            let (stdout, stderr, ticks) = match &report {
                Ok(r) => (
                    r.outcome.as_ref().map(|o| o.stdout.clone()),
                    r.error.as_ref().map(|e| e.to_string()),
                    match (&r.error, &r.outcome) {
                        (Some(_), _) => Some(1),
                        (None, Some(o)) => Some(o.executed / ipt + 1),
                        (None, None) => None,
                    },
                ),
                Err(e) => (None, Some(e.to_string()), Some(1)),
            };
            // Hang the execution under the job's trace before the outcome
            // lands, so the tree reads exec.run → wal.append in causal
            // order. Attrs are tick-domain only — worker counts and wall
            // clock never leak into the deterministic tree.
            if let Some(ctx) = self.scheduler.job_trace(id) {
                let job_attr = id.0.to_string();
                let ticks_attr = ticks.map(|t| t.to_string());
                let mut attrs: Vec<(&str, &str)> = vec![("job", &job_attr)];
                if let Some(t) = &ticks_attr {
                    attrs.push(("ticks", t));
                }
                self.obs
                    .tracer
                    .event_child(ctx.parent, "exec.run", now_tick, &attrs);
            }
            if stdout.is_some() || stderr.is_some() || ticks.is_some() {
                let _ = self
                    .scheduler
                    .set_outcome(id, stdout.as_deref(), stderr.as_deref(), ticks);
            }
            if self.config.auto_analyze {
                self.auto_analyze(id, &aid, now_tick);
            }
        }
        self.obs
            .profiler
            .observe("sched.tick", t0.elapsed().as_micros() as u64, || {
                format!("tick {now_tick}: {} dispatched", dispatched.len())
            });
        self.sample_metrics(now_tick);
        dispatched
    }

    /// Run the systematic checker over an executed job's program and
    /// record the verdict as a `checker.analyze` child in its trace —
    /// the checker layer of the job's causal tree. The pool's reports
    /// are bit-identical across worker counts, so the span is too.
    fn auto_analyze(&mut self, id: JobId, aid: &ArtifactId, now_tick: u64) {
        let Some(program) = self.artifacts.get(aid).map(|a| a.program.clone()) else {
            return;
        };
        let cfg = checker::CheckConfig {
            snapshot_prefix: self.config.checker_snapshot_prefix,
            state_cache_capacity: self.config.checker_state_cache,
            dpor: self.config.checker_dpor,
            preemption_bound: self.config.checker_preemption_bound,
            ..checker::CheckConfig::default()
        };
        let report = self.pool.check(&program, &cfg);
        if let Some(ctx) = self.scheduler.job_trace(id) {
            self.obs.tracer.event_child(
                ctx.parent,
                "checker.analyze",
                now_tick,
                &[
                    ("job", &id.0.to_string()),
                    ("verdict", report.verdict.class()),
                    ("schedules", &report.schedules.to_string()),
                ],
            );
        }
    }

    /// Capture the registry into the time-series store and evaluate the
    /// SLOs, every [`PortalConfig::sample_every`] ticks. Gauges are
    /// republished first so captures never window over stale depth.
    fn sample_metrics(&mut self, now_tick: u64) {
        let every = self.config.sample_every;
        if every == 0 || !now_tick.is_multiple_of(every) {
            return;
        }
        self.scheduler.publish_gauges();
        let t0 = std::time::Instant::now();
        if self.store.record(now_tick, &self.obs.metrics) {
            self.obs
                .profiler
                .observe("registry.sample", t0.elapsed().as_micros() as u64, || {
                    format!("capture at tick {now_tick}")
                });
            self.slo.evaluate(now_tick, &self.store, &self.obs.events);
        }
    }

    /// Run the distributor until all jobs are terminal (bounded).
    pub fn drain_jobs(&mut self, max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            self.tick();
            if self.scheduler.jobs().all(|j| j.state.is_terminal()) {
                return true;
            }
        }
        false
    }

    /// The caller's jobs (admins see everyone's).
    pub fn jobs(&self, token: &Token, now: u64) -> Result<Vec<JobView>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        Ok(self
            .scheduler
            .jobs()
            .filter(|j| role.at_least(Role::Admin) || j.spec.user == user)
            .map(job_view)
            .collect())
    }

    /// One job (owner or admin).
    pub fn job(&self, token: &Token, id: JobId, now: u64) -> Result<JobView, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        Ok(job_view(j))
    }

    /// The tail of a job's captured stdout from byte offset `from` (owner
    /// or admin): returns `(total_len, new_bytes)`. Pollers pass the
    /// offset they already have and receive only the growth, so the
    /// edit→compile→submit→poll loop moves O(delta) bytes per poll
    /// instead of re-shipping the whole stream each time.
    pub fn job_stdout_tail(
        &self,
        token: &Token,
        id: JobId,
        from: usize,
        now: u64,
    ) -> Result<(usize, String), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        let out = &j.streams.stdout;
        let mut start = from.min(out.len());
        // Snap forward to a char boundary so a client-supplied offset
        // landing mid-UTF-8 cannot panic the slice.
        while start < out.len() && !out.is_char_boundary(start) {
            start += 1;
        }
        Ok((out.len(), out[start..].to_string()))
    }

    /// Queue a stdin line for a pending job (consumed when it dispatches).
    pub fn send_stdin(
        &mut self,
        token: &Token,
        id: JobId,
        line: &str,
        now: u64,
    ) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        // Through the scheduler (not job_mut) so the line is journaled.
        Ok(self.scheduler.push_stdin(id, line)?)
    }

    /// Cancel a job (owner or admin). Jobs already gone to a fault get the
    /// typed error for it, so the UI can explain *why* there is nothing to
    /// cancel rather than a generic bad-state message.
    pub fn cancel_job(&mut self, token: &Token, id: JobId, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        {
            let j = self.scheduler.job(id)?;
            if j.spec.user != user && !role.at_least(Role::Admin) {
                return Err(PortalError::Forbidden("job belongs to another user"));
            }
            match j.state {
                JobState::NodeLost { attempts, .. } => {
                    return Err(PortalError::JobLost { job: id, attempts })
                }
                JobState::TimedOut { .. } => return Err(PortalError::JobTimedOut { job: id }),
                _ => {}
            }
        }
        Ok(self.scheduler.cancel(id)?)
    }

    // ---- status -------------------------------------------------------------------

    /// `(free_cores, total_cores, utilization)` for the dashboard.
    pub fn cluster_status(&self) -> (u32, u32, f64) {
        let c = self.scheduler.cluster();
        (c.free_cores(), c.total_cores(), c.utilization())
    }

    /// Per-node health rows for the dashboard.
    pub fn cluster_nodes(&self) -> Vec<NodeView> {
        let c = self.scheduler.cluster();
        c.slave_ids()
            .into_iter()
            .map(|id| NodeView {
                segment: id.segment,
                slot: id.slot,
                health: match c.health(id) {
                    Ok(NodeHealth::Up) => "up".to_string(),
                    Ok(NodeHealth::Draining) => "draining".to_string(),
                    Ok(NodeHealth::Down) => "down".to_string(),
                    Err(_) => "unknown".to_string(),
                },
                cores: c.node_spec(id).map(|n| n.cores).unwrap_or(0),
            })
            .collect()
    }

    /// True while any slave node is out of service. Submissions stay open
    /// (admission checks spec capacity, not live capacity); queued work
    /// runs when nodes return.
    pub fn degraded(&self) -> bool {
        let c = self.scheduler.cluster();
        c.slave_ids()
            .into_iter()
            .any(|id| c.health(id) != Ok(NodeHealth::Up))
    }

    // ---- telemetry ----------------------------------------------------------------

    /// The portal's telemetry domain. Every substrate (httpd routing is
    /// wired by the web layer) records into this one [`Obs`].
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Prometheus text exposition of every registered metric. Gauges are
    /// republished from live state first, so scrapes never see stale depth
    /// or core counts.
    pub fn metrics_text(&self) -> String {
        self.scheduler.publish_gauges();
        self.obs.metrics.render()
    }

    /// Health snapshot for `/api/health`: the per-node rows, the summary
    /// counts, and the queue/running gauges — one cluster walk, so the
    /// degraded flag and the counts cannot disagree.
    pub fn health_view(&self) -> HealthView {
        let nodes = self.cluster_nodes();
        let count = |h: &str| nodes.iter().filter(|n| n.health == h).count();
        let (nodes_up, nodes_draining, nodes_down) =
            (count("up"), count("draining"), count("down"));
        HealthView {
            degraded: nodes_up < nodes.len(),
            nodes,
            nodes_up,
            nodes_draining,
            nodes_down,
            queue_depth: self.scheduler.pending().len(),
            jobs_running: self.scheduler.running_count(),
            durable: self.wal_enabled,
            recovery: self.recovery.clone(),
            wal_error: self.wal_error(),
            alerts: self.alerts(),
        }
    }

    /// The current scheduler tick (the portal's logical clock).
    pub fn now_tick(&self) -> u64 {
        self.scheduler.now()
    }

    /// The time-series store behind `/api/dashboard` (the `ccp-top`
    /// example queries it directly).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// Current SLO alert state, in objective declaration order.
    pub fn alerts(&self) -> Vec<AlertView> {
        self.slo
            .alerts()
            .into_iter()
            .map(|a| AlertView {
                slo: a.slo,
                firing: a.firing,
                since: a.since,
                transitions: a.transitions,
            })
            .collect()
    }

    /// Dashboard snapshot for `/api/dashboard`: windowed queries over the
    /// store, restricted to tick-domain series so the result is
    /// byte-identical across same-seed runs. A fixed 32-tick window keeps
    /// the panels comparable run to run.
    pub fn dashboard_view(&self) -> DashboardView {
        use crate::view::{QuantilePanel, RatePanel};
        use obs::SampleValue;
        const WINDOW: u64 = 32;
        let s = &self.store;
        let scalar = |name: &str| -> i64 {
            match s.latest(name, &[]) {
                Some(SampleValue::Gauge(g)) => g,
                Some(SampleValue::Counter(c)) => c as i64,
                _ => 0,
            }
        };
        let rate = |name: &str| RatePanel {
            total: scalar(name),
            rate_milli: s.rate_milli(name, &[], WINDOW),
        };
        let quantiles = |name: &str| QuantilePanel {
            p50: s.window_quantile(name, &[], WINDOW, 0.5),
            p99: s.window_quantile(name, &[], WINDOW, 0.99),
        };
        DashboardView {
            at: s.last_at().unwrap_or(0),
            window: WINDOW,
            captures: s.len(),
            evicted: s.evicted(),
            queue_depth: scalar("ccp_sched_queue_depth"),
            queue_depth_avg_milli: s.window_avg_milli("ccp_sched_queue_depth", &[], WINDOW),
            jobs_running: scalar("ccp_sched_jobs_running"),
            submitted: rate("ccp_sched_jobs_submitted_total"),
            completed: rate("ccp_sched_jobs_completed_total"),
            dispatched: rate("ccp_sched_jobs_dispatched_total"),
            node_lost: rate("ccp_sched_jobs_node_lost_total"),
            wait_ticks: quantiles("ccp_sched_job_wait_ticks"),
            run_ticks: quantiles("ccp_sched_job_run_ticks"),
            alerts: self.alerts(),
        }
    }

    /// The slowest operations the contention profiler has seen (admin
    /// only — details name other users' paths). Sorted slowest-first.
    pub fn slow_ops(&self, token: &Token, now: u64) -> Result<Vec<SlowOpView>, PortalError> {
        let (_, role) = self.whoami(token, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("slow-op log requires admin"));
        }
        Ok(self
            .obs
            .profiler
            .slowest()
            .into_iter()
            .map(|op| SlowOpView {
                site: op.site.to_string(),
                us: op.us,
                detail: op.detail,
            })
            .collect())
    }

    /// The job's full causal span tree — the `http.request` root plus
    /// every child recorded across scheduler, cluster, execution, checker,
    /// and WAL layers. Owner or admin, like [`Portal::job`]. Jobs
    /// submitted without tracing (or recovered from the WAL, which does
    /// not persist traces) yield an empty tree.
    pub fn job_trace_tree(
        &self,
        token: &Token,
        id: JobId,
        now: u64,
    ) -> Result<TraceView, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        let (root, spans) = match self.scheduler.job_trace(id) {
            Some(ctx) => (Some(ctx.root.0), self.obs.tracer.subtree(ctx.root)),
            None => (None, Vec::new()),
        };
        Ok(TraceView {
            job: id.0,
            root,
            spans: spans
                .into_iter()
                .map(|s| SpanView {
                    id: s.id,
                    parent: s.parent,
                    name: s.name,
                    start: s.start,
                    end: s.end,
                    attrs: s.attrs,
                })
                .collect(),
            truncated: self.obs.tracer.dropped(),
        })
    }

    /// True when mutations are being journaled to disk.
    pub fn durable(&self) -> bool {
        self.wal_enabled
    }

    /// What each WAL stream went through at boot (empty for in-memory
    /// portals).
    pub fn recovery_reports(&self) -> &[RecoveryView] {
        &self.recovery
    }

    /// The first durability failure, if any: the WAL could not be opened
    /// at boot, or an append/fsync failed mid-run (the filesystem surfaces
    /// those as errors; the scheduler records them here and keeps going).
    pub fn wal_error(&self) -> Option<String> {
        self.wal_open_error
            .clone()
            .or_else(|| self.scheduler.wal_error().map(|e| e.to_string()))
    }

    /// Force both journals to disk (shutdown hook; group commit otherwise
    /// decides when fsyncs happen).
    pub fn flush_wal(&mut self) -> Result<(), PortalError> {
        self.fs.lock().flush_wal()?;
        self.scheduler.flush_wal()?;
        Ok(())
    }

    /// A job's life story — submitted, queued, dispatched, retried,
    /// terminal — in event order. Owner or admin only, like
    /// [`Portal::job`]; the final entry matches the job's current state.
    pub fn job_timeline(
        &self,
        token: &Token,
        id: JobId,
        now: u64,
    ) -> Result<Vec<TimelineEventView>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        let key = id.0.to_string();
        Ok(self
            .obs
            .tracer
            .find_by_attr("job", &key)
            .into_iter()
            .map(|s| TimelineEventView {
                at: s.start,
                event: s.name.clone(),
                attrs: s
                    .attrs
                    .iter()
                    .filter(|(k, _)| k != "job")
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            })
            .collect())
    }

    /// The most recent `limit` structured events (access log, ...). Admin
    /// only: the log carries request paths across all users.
    pub fn recent_events(
        &self,
        token: &Token,
        limit: usize,
        now: u64,
    ) -> Result<Vec<EventView>, PortalError> {
        let (_, role) = self.whoami(token, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("event log requires admin"));
        }
        Ok(self
            .obs
            .events
            .recent(limit)
            .into_iter()
            .map(|e| EventView {
                at: e.at,
                kind: e.kind,
                fields: e.fields,
            })
            .collect())
    }

    /// Direct scheduler access for tests and the bench harness.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Shared filesystem handle (the bench harness preloads lab files).
    pub fn fs(&self) -> Arc<Mutex<Vfs>> {
        Arc::clone(&self.fs)
    }
}

fn job_view(j: &sched::JobRecord) -> JobView {
    JobView {
        id: j.id,
        user: j.spec.user.clone(),
        executable: j.spec.executable.clone(),
        state: j.state.clone(),
        state_label: state_label(&j.state),
        cores: j.spec.cores_needed(),
        attempt: j.attempt,
        last_failure: j.last_failure.clone(),
        stdout: j.streams.stdout.clone(),
        stderr: j.streams.stderr.clone(),
    }
}
