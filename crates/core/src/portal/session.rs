//! Session facade: authentication, token lifecycle, account
//! administration — and the [`SessionStamp`] that lets heavy operations
//! prove, at commit time, that the session that started them still exists.

use super::Portal;
use crate::error::PortalError;
use auth::{Role, SessionError, Token};
use vfs::VfsError;

/// Everything a long-running operation needs to remember about the
/// session that started it. Captured under the portal lock by the
/// `*_begin` methods, carried through the unlocked middle phase, and
/// re-validated by [`Portal::check_stamp`] before any result is applied.
///
/// The `generation` is the session's issue-order stamp: tokens are never
/// reused, so a matching token with a different generation (or no session
/// at all) proves the session was revoked — and possibly re-issued —
/// while the operation ran, and its result must be dropped.
#[derive(Debug, Clone)]
pub struct SessionStamp {
    /// The token the operation was started with.
    pub token: Token,
    /// Resolved username at begin time.
    pub user: String,
    /// Resolved role at begin time.
    pub role: Role,
    /// The session's unique issue-order stamp.
    pub generation: u64,
}

impl Portal {
    // ---- sessions ----------------------------------------------------------

    /// Authenticate and mint a session token.
    pub fn login(&mut self, name: &str, password: &str, now: u64) -> Result<Token, PortalError> {
        self.users.verify(name, password)?;
        Ok(self.sessions.issue(name, now))
    }

    /// Invalidate a token. Idempotent.
    pub fn logout(&mut self, token: &Token) {
        self.sessions.revoke(token);
    }

    /// Resolve a token to `(username, role)`.
    pub fn whoami(&self, token: &Token, now: u64) -> Result<(String, Role), PortalError> {
        let s = self.sessions.validate(token, now)?;
        let user = self
            .users
            .get(&s.username)
            .ok_or(PortalError::Forbidden("account removed"))?;
        Ok((user.username.clone(), user.role))
    }

    /// Capture who the caller is *right now*, for an operation that will
    /// keep running after the portal lock is released.
    pub fn stamp(&self, token: &Token, now: u64) -> Result<SessionStamp, PortalError> {
        let s = self.sessions.validate(token, now)?;
        let generation = s.generation;
        let username = s.username.clone();
        let user = self
            .users
            .get(&username)
            .ok_or(PortalError::Forbidden("account removed"))?;
        Ok(SessionStamp {
            token: token.clone(),
            user: user.username.clone(),
            role: user.role,
            generation,
        })
    }

    /// Re-validate a [`SessionStamp`] before committing a heavy
    /// operation's result. Fails exactly when the stamped session no
    /// longer exists: expired, logged out, or revoked and re-issued
    /// mid-flight (the generation check catches the last case even
    /// though tokens are never reused — belt and braces).
    pub fn check_stamp(&self, stamp: &SessionStamp, now: u64) -> Result<(), PortalError> {
        let s = self.sessions.validate(&stamp.token, now)?;
        if s.generation != stamp.generation || s.username != stamp.user {
            return Err(PortalError::Session(SessionError::InvalidToken));
        }
        Ok(())
    }

    // ---- admin -------------------------------------------------------------

    /// Create an account (admin only). Also creates the vfs home.
    pub fn create_user(
        &mut self,
        admin: &Token,
        name: &str,
        password: &str,
        role: Role,
        now: u64,
    ) -> Result<(), PortalError> {
        let (_, caller_role) = self.whoami(admin, now)?;
        if !caller_role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("user creation requires admin"));
        }
        self.users.register(name, password, role)?;
        // After a crash recovery the home directory may already exist
        // (the vfs is journaled; the credential store is not).
        match self.fs.lock().add_user(name, self.config.default_quota) {
            Ok(()) | Err(VfsError::UserExists(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// All usernames (admin only).
    pub fn list_users(&self, admin: &Token, now: u64) -> Result<Vec<String>, PortalError> {
        let (_, role) = self.whoami(admin, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("user listing requires admin"));
        }
        Ok(self.users.usernames())
    }

    // ---- path resolution ---------------------------------------------------

    /// Resolve a client-supplied path for `user` with `role`: relative paths
    /// anchor at the home directory; students may not escape their home.
    pub(super) fn resolve(
        &self,
        user: &str,
        role: Role,
        path: &str,
    ) -> Result<String, PortalError> {
        let home = format!("/home/{user}");
        let full = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("{home}/{path}")
        };
        // Normalize through VPath to fold any `..`.
        let normalized = vfs::VPath::parse(&full)?.to_string();
        if role == Role::Student && !normalized.starts_with(&home) {
            return Err(PortalError::OutsideHome { path: normalized });
        }
        Ok(normalized)
    }
}
