//! Heavy facade: compile, interactive execution, and checker analysis —
//! the three operations whose CPU time dwarfs their bookkeeping.
//!
//! Each is split into begin → run → commit/finish:
//!
//! 1. **begin** (`&self`, brief portal lock): validate the token into a
//!    [`SessionStamp`] and snapshot every input the work needs — the
//!    compile request, a clone of the artifact, the check config, plus
//!    `Arc` handles to the internally-synchronized substrates (vfs,
//!    compile cache, checker pool, telemetry).
//! 2. **run** (consumes the phase object, **no portal lock**): the
//!    expensive middle — source fetch + compile, whole VM execution, or
//!    interleaving exploration on the shared pool.
//! 3. **commit / finish** (brief portal relock): re-validate the stamp
//!    with [`Portal::check_stamp`] and only then apply the result. A
//!    session revoked mid-flight fails the generation check, so its
//!    artifacts and reports are dropped, never applied.
//!
//! The single-call methods ([`Portal::compile`],
//! [`Portal::run_interactive_stdin`], [`Portal::analyze_job`]) are
//! recomposed from the same three phases, so library callers and the web
//! layer exercise identical code paths.

use super::session::SessionStamp;
use super::Portal;
use crate::error::PortalError;
use crate::view::AnalysisView;
use auth::{Role, Token};
use obs::Obs;
use parking_lot::Mutex;
use std::sync::Arc;
use toolchain::{
    Artifact, ArtifactId, CompileCache, CompileReport, CompileRequest, ExecReport, Executor,
    PreparedCompile,
};
use vfs::Vfs;

impl Portal {
    pub(super) fn artifact_for(
        &self,
        user: &str,
        role: Role,
        id: &str,
    ) -> Result<ArtifactId, PortalError> {
        let aid = ArtifactId::from_string(id);
        let art = self.artifacts.get(&aid).ok_or_else(|| {
            PortalError::Exec(toolchain::ExecutorError::NoSuchArtifact(id.to_string()))
        })?;
        if art.owner != user && !role.at_least(Role::Faculty) {
            return Err(PortalError::Forbidden("artifact belongs to another user"));
        }
        Ok(aid)
    }

    // ---- compile -----------------------------------------------------------

    /// Phase 1 of a compile: validate the session and capture the request
    /// plus substrate handles. Holds the portal lock only as long as this
    /// call.
    pub fn compile_begin(
        &self,
        token: &Token,
        path: &str,
        now: u64,
    ) -> Result<CompilePhase, PortalError> {
        let stamp = self.stamp(token, now)?;
        let full = self.resolve(&stamp.user, stamp.role, path)?;
        Ok(CompilePhase {
            request: CompileRequest::new(&stamp.user, &full),
            fs: Arc::clone(&self.fs),
            cache: Arc::clone(&self.compile_cache),
            obs: Arc::clone(&self.obs),
            stamp,
        })
    }

    /// Phase 3 of a compile: re-validate the stamp, then store the
    /// artifact and record telemetry. A stale stamp drops the compile on
    /// the floor — the report is never returned and no artifact lands.
    pub fn compile_commit(
        &mut self,
        done: CompileDone,
        now: u64,
    ) -> Result<CompileReport, PortalError> {
        self.check_stamp(&done.stamp, now)?;
        Ok(done
            .prepared
            .commit_observed(&mut self.artifacts, &self.obs))
    }

    /// Compile a source file; the report carries gcc-style diagnostics.
    /// One call, all three phases — the portal lock discipline only
    /// matters to callers (the web layer) that release between them.
    pub fn compile(
        &mut self,
        token: &Token,
        path: &str,
        now: u64,
    ) -> Result<CompileReport, PortalError> {
        let done = self.compile_begin(token, path, now)?.run();
        self.compile_commit(done, now)
    }

    // ---- interactive execution ---------------------------------------------

    /// Phase 1 of an interactive run: validate, authorize against the
    /// artifact's owner, and clone the artifact out so execution needs no
    /// store access.
    pub fn run_begin(
        &self,
        token: &Token,
        artifact: &str,
        seed: u64,
        stdin: &[String],
        now: u64,
    ) -> Result<RunPhase, PortalError> {
        let stamp = self.stamp(token, now)?;
        let aid = self.artifact_for(&stamp.user, stamp.role, artifact)?;
        let artifact = self
            .artifacts
            .get(&aid)
            .expect("artifact_for verified existence")
            .clone();
        Ok(RunPhase {
            artifact,
            seed,
            stdin: stdin.to_vec(),
            fs: Arc::clone(&self.fs),
            obs: Arc::clone(&self.obs),
            stamp,
        })
    }

    /// Phase 3 of an interactive run: re-validate the stamp and release
    /// the report. The VM already ran; a revoked session merely never
    /// sees the output (vfs writes the program performed went through the
    /// filesystem's own permission model and stand).
    pub fn run_finish(&self, done: RunDone, now: u64) -> Result<ExecReport, PortalError> {
        self.check_stamp(&done.stamp, now)?;
        Ok(done.report)
    }

    /// Run an artifact synchronously (the "run in browser" button), with
    /// stdin lines queued up front.
    pub fn run_interactive(
        &self,
        token: &Token,
        artifact: &str,
        seed: u64,
        now: u64,
    ) -> Result<ExecReport, PortalError> {
        self.run_interactive_stdin(token, artifact, seed, &[], now)
    }

    /// [`Portal::run_interactive`] with stdin lines.
    pub fn run_interactive_stdin(
        &self,
        token: &Token,
        artifact: &str,
        seed: u64,
        stdin: &[String],
        now: u64,
    ) -> Result<ExecReport, PortalError> {
        let done = self.run_begin(token, artifact, seed, stdin, now)?.run();
        self.run_finish(done, now)
    }

    // ---- checker analysis --------------------------------------------------

    /// Phase 1 of an analysis: validate, authorize, and capture the
    /// program plus the check configuration derived from portal knobs.
    pub fn analyze_begin(
        &self,
        token: &Token,
        artifact: &str,
        budget: Option<u64>,
        now: u64,
    ) -> Result<AnalyzePhase, PortalError> {
        let stamp = self.stamp(token, now)?;
        let aid = self.artifact_for(&stamp.user, stamp.role, artifact)?;
        let program = self
            .artifacts
            .get(&aid)
            .expect("artifact_for verified existence")
            .program
            .clone();
        let mut cfg = checker::CheckConfig {
            snapshot_prefix: self.config.checker_snapshot_prefix,
            state_cache_capacity: self.config.checker_state_cache,
            dpor: self.config.checker_dpor,
            preemption_bound: self.config.checker_preemption_bound,
            ..checker::CheckConfig::default()
        };
        if let Some(b) = budget {
            cfg.max_schedules = b.clamp(1, 512);
        }
        Ok(AnalyzePhase {
            artifact: artifact.to_string(),
            program,
            cfg,
            pool: Arc::clone(&self.pool),
            obs: Arc::clone(&self.obs),
            stamp,
        })
    }

    /// Phase 3 of an analysis: re-validate the stamp and release the
    /// verdict. Exploration counters were already recorded (they are
    /// commutative totals, not per-session state).
    pub fn analyze_finish(&self, done: AnalyzeDone, now: u64) -> Result<AnalysisView, PortalError> {
        self.check_stamp(&done.stamp, now)?;
        Ok(done.view)
    }

    /// Systematically explore an artifact's thread interleavings (the
    /// "analyze" button): race / deadlock / livelock detection with a
    /// minimized repro schedule on failure. Owner-gated like
    /// [`Portal::run_interactive`]; faculty and admins may analyze any
    /// artifact. `budget` caps the schedule count (`None` = grader default).
    pub fn analyze_job(
        &self,
        token: &Token,
        artifact: &str,
        budget: Option<u64>,
        now: u64,
    ) -> Result<AnalysisView, PortalError> {
        let done = self.analyze_begin(token, artifact, budget, now)?.run();
        self.analyze_finish(done, now)
    }

    /// Grade a batch of lab submissions across the checker pool (faculty
    /// or admin — grading exposes verdicts on other students' code). The
    /// reports are identical to grading each submission serially.
    pub fn grade_batch(
        &self,
        token: &Token,
        items: &[(labs::LabId, String)],
        now: u64,
    ) -> Result<Vec<labs::GradeReport>, PortalError> {
        let (_, role) = self.whoami(token, now)?;
        if !role.at_least(Role::Faculty) {
            return Err(PortalError::Forbidden("batch grading requires faculty"));
        }
        Ok(labs::grade_batch(&self.pool, items))
    }
}

/// A validated compile, ready to run without the portal lock.
pub struct CompilePhase {
    stamp: SessionStamp,
    request: CompileRequest,
    fs: Arc<Mutex<Vfs>>,
    cache: Arc<Mutex<CompileCache>>,
    obs: Arc<Obs>,
}

impl CompilePhase {
    /// Phase 2: fetch the source (vfs lock only for the read) and compile
    /// it, consulting the shared compile cache. No portal lock is held —
    /// other sessions read, tick, and mutate freely while this runs.
    pub fn run(self) -> CompileDone {
        let t0 = std::time::Instant::now();
        let snapshot = {
            let fs = self.fs.lock();
            // Interactive runs hold the vfs lock for whole VM executions,
            // so the compile path is where vfs contention shows up.
            self.obs
                .profiler
                .observe("vfs.lock", t0.elapsed().as_micros() as u64, || {
                    format!("compile {}", self.request.source_path)
                });
            self.request.snapshot(&fs)
        };
        let prepared = snapshot.compile(Some(&self.cache));
        CompileDone {
            stamp: self.stamp,
            prepared,
        }
    }
}

/// A finished compile awaiting commit under the portal lock.
pub struct CompileDone {
    stamp: SessionStamp,
    prepared: PreparedCompile,
}

impl CompileDone {
    /// Whether the compile produced a program (diagnostics otherwise).
    pub fn success(&self) -> bool {
        self.prepared.success()
    }
}

/// A validated interactive execution, ready to run without the portal
/// lock. The artifact rides along by value.
pub struct RunPhase {
    stamp: SessionStamp,
    artifact: Artifact,
    seed: u64,
    stdin: Vec<String>,
    fs: Arc<Mutex<Vfs>>,
    obs: Arc<Obs>,
}

impl RunPhase {
    /// Phase 2: execute the whole program on the VM. The vfs is locked
    /// per host-I/O operation by the VM's `VfsIo`, never for the run's
    /// duration; the portal lock is not held at all.
    pub fn run(self) -> RunDone {
        let exec = Executor::with_seed(self.seed);
        let report = exec.run_artifact_with_stdin_observed(
            &self.artifact,
            Arc::clone(&self.fs),
            &self.stamp.user,
            &self.stdin,
            &self.obs,
        );
        RunDone {
            stamp: self.stamp,
            report,
        }
    }
}

/// A finished interactive execution awaiting stamp re-validation.
pub struct RunDone {
    stamp: SessionStamp,
    report: ExecReport,
}

/// A validated analysis, ready to explore without the portal lock.
pub struct AnalyzePhase {
    stamp: SessionStamp,
    artifact: String,
    program: minilang::Program,
    cfg: checker::CheckConfig,
    pool: Arc<checker::Pool>,
    obs: Arc<Obs>,
}

impl AnalyzePhase {
    /// Phase 2: systematic exploration on the shared pool. Through the
    /// pool the report is bit-for-bit the same as the serial
    /// `checker::check`, in a fraction of the wall-clock.
    pub fn run(self) -> AnalyzeDone {
        let (report, stats) = self.pool.check_with_stats(&self.program, &self.cfg);

        let m = &self.obs.metrics;
        m.describe(
            "ccp_checker_analyses_total",
            "interleaving analyses by verdict class",
        );
        m.describe(
            "ccp_checker_schedules_explored_total",
            "schedules explored across analyses",
        );
        m.describe(
            "ccp_checker_steps_explored_total",
            "visible steps explored across analyses",
        );
        m.describe(
            "ccp_checker_dpor_backtracks_total",
            "DPOR backtrack-set insertions across analyses",
        );
        m.describe(
            "ccp_checker_dpor_pruned_siblings_total",
            "branch siblings DPOR proved redundant and never explored",
        );
        m.describe(
            "ccp_checker_dpor_bound_pruned_total",
            "branch members pruned by the preemption bound",
        );
        m.counter(
            "ccp_checker_analyses_total",
            &[("verdict", report.verdict.class())],
        )
        .inc();
        m.counter("ccp_checker_schedules_explored_total", &[])
            .add(report.schedules);
        m.counter("ccp_checker_steps_explored_total", &[])
            .add(report.steps);
        // Registered eagerly (even when zero) so dashboards can tell
        // "reduction off" from "family not exported yet".
        m.counter("ccp_checker_dpor_backtracks_total", &[])
            .add(stats.dpor_backtracks);
        m.counter("ccp_checker_dpor_pruned_siblings_total", &[])
            .add(stats.dpor_pruned_siblings);
        m.counter("ccp_checker_dpor_bound_pruned_total", &[])
            .add(stats.bound_pruned);

        AnalyzeDone {
            stamp: self.stamp,
            view: AnalysisView {
                artifact: self.artifact,
                verdict: report.verdict.class().to_string(),
                detail: report.verdict.to_string(),
                schedules: report.schedules,
                steps: report.steps,
                complete: report.complete,
                exhaustive_within_bound: report.exhaustive_within_bound,
                repro: report.repro.unwrap_or_default(),
            },
        }
    }
}

/// A finished analysis awaiting stamp re-validation.
pub struct AnalyzeDone {
    stamp: SessionStamp,
    view: AnalysisView,
}

#[cfg(test)]
mod tests {
    use super::super::{Portal, PortalConfig};

    fn portal_with_user() -> (Portal, auth::Token) {
        let mut p = Portal::new(PortalConfig {
            checker_threads: Some(1),
            ..PortalConfig::default()
        });
        p.bootstrap_admin("admin", "super-secret9").unwrap();
        let admin = p.login("admin", "super-secret9", 0).unwrap();
        p.create_user(&admin, "alice", "password99", auth::Role::Student, 0)
            .unwrap();
        let tok = p.login("alice", "password99", 0).unwrap();
        p.write_file(&tok, "p.mini", b"fn main() { println(7); }".to_vec(), 0)
            .unwrap();
        (p, tok)
    }

    #[test]
    fn two_phase_compile_matches_single_call() {
        let (mut p, tok) = portal_with_user();
        let done = p.compile_begin(&tok, "p.mini", 0).unwrap().run();
        assert!(done.success());
        let report = p.compile_commit(done, 0).unwrap();
        assert!(report.success());
        assert_eq!(p.my_artifacts(&tok, 0).unwrap().len(), 1);
    }

    #[test]
    fn logout_between_begin_and_commit_drops_the_compile() {
        let (mut p, tok) = portal_with_user();
        let phase = p.compile_begin(&tok, "p.mini", 0).unwrap();
        p.logout(&tok);
        let done = phase.run();
        assert!(done.success(), "the work itself still ran");
        let err = p.compile_commit(done, 0).unwrap_err();
        assert!(matches!(err, crate::error::PortalError::Session(_)));
        // The artifact was dropped, not applied.
        let relog = p.login("alice", "password99", 0).unwrap();
        assert_eq!(p.my_artifacts(&relog, 0).unwrap().len(), 0);
    }

    #[test]
    fn relogin_does_not_resurrect_a_stale_stamp() {
        let (mut p, tok) = portal_with_user();
        let phase = p.compile_begin(&tok, "p.mini", 0).unwrap();
        p.logout(&tok);
        // A fresh session for the same user must not validate the old
        // stamp: its token (and generation) differ.
        let _relog = p.login("alice", "password99", 0).unwrap();
        let err = p.compile_commit(phase.run(), 0).unwrap_err();
        assert!(matches!(err, crate::error::PortalError::Session(_)));
    }

    #[test]
    fn logout_mid_run_drops_execution_and_analysis_results() {
        let (mut p, tok) = portal_with_user();
        let report = p.compile(&tok, "p.mini", 0).unwrap();
        let artifact = report.artifact.as_ref().unwrap().to_string();

        let run = p.run_begin(&tok, &artifact, 0, &[], 0).unwrap();
        let analyze = p.analyze_begin(&tok, &artifact, Some(4), 0).unwrap();
        p.logout(&tok);
        assert!(p.run_finish(run.run(), 0).is_err());
        assert!(p.analyze_finish(analyze.run(), 0).is_err());

        // The session that replaces it works end to end.
        let relog = p.login("alice", "password99", 0).unwrap();
        let rerun = p.run_interactive(&relog, &artifact, 0, 0).unwrap();
        assert_eq!(rerun.outcome.unwrap().stdout, "7\n");
    }

    #[test]
    fn expired_session_fails_commit() {
        let (mut p, tok) = portal_with_user();
        let phase = p.compile_begin(&tok, "p.mini", 0).unwrap();
        let done = phase.run();
        // Past the TTL the stamp no longer validates.
        let err = p.compile_commit(done, 1_000_000).unwrap_err();
        assert!(matches!(err, crate::error::PortalError::Session(_)));
    }
}
