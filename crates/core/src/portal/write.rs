//! Write facade: mutations. These run under the portal's exclusive write
//! lock. Crucially [`Portal::tick`] — the scheduler's logical clock and
//! everything it drives (dispatch, VM execution of batch jobs, metric
//! sampling, SLO evaluation) — stays single-writer, which is what keeps
//! the tick-domain determinism suites byte-identical: there is exactly
//! one mutation order per seed, regardless of how many front-end threads
//! or reactor workers are serving requests.
//!
//! The file-manager mutations take `&self` (the vfs carries its own
//! lock), but the web layer still routes them through the write guard so
//! a rename cannot interleave with a tick that executes against the same
//! home directory.

use super::Portal;
use crate::error::PortalError;
use auth::{Role, Token};
use cluster::SlaveId;
use obs::TraceContext;
use sched::{JobId, JobSpec, JobState};
use std::sync::Arc;
use toolchain::{ArtifactId, Executor};

impl Portal {
    // ---- admin -------------------------------------------------------------

    /// Admin: drain a node — no new placements, running jobs finish.
    pub fn drain_node(
        &mut self,
        admin: &Token,
        segment: usize,
        slot: usize,
        now: u64,
    ) -> Result<(), PortalError> {
        let (_, role) = self.whoami(admin, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("draining a node requires admin"));
        }
        Ok(self.scheduler.drain_node(SlaveId { segment, slot })?)
    }

    /// Admin: return a drained or recovered node to service.
    pub fn undrain_node(
        &mut self,
        admin: &Token,
        segment: usize,
        slot: usize,
        now: u64,
    ) -> Result<(), PortalError> {
        let (_, role) = self.whoami(admin, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("undraining a node requires admin"));
        }
        Ok(self.scheduler.undrain_node(SlaveId { segment, slot })?)
    }

    // ---- file manager ------------------------------------------------------

    /// Write (upload / save) a file.
    pub fn write_file(
        &self,
        token: &Token,
        path: &str,
        data: Vec<u8>,
        now: u64,
    ) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().write(&user, &full, data)?)
    }

    /// Create a directory (and parents).
    pub fn mkdir(&self, token: &Token, path: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().mkdir_p(&user, &full)?)
    }

    /// Delete a file or directory subtree.
    pub fn remove(&self, token: &Token, path: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().remove_recursive(&user, &full)?)
    }

    /// Rename / move.
    pub fn rename(&self, token: &Token, from: &str, to: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let f = self.resolve(&user, role, from)?;
        let t = self.resolve(&user, role, to)?;
        Ok(self.fs.lock().rename(&user, &f, &t)?)
    }

    /// Copy a file or subtree.
    pub fn copy(&self, token: &Token, from: &str, to: &str, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let f = self.resolve(&user, role, from)?;
        let t = self.resolve(&user, role, to)?;
        Ok(self.fs.lock().copy(&user, &f, &t)?)
    }

    // ---- the job distributor -----------------------------------------------

    /// Submit an artifact as a batch job on `cores` cores. Returns the job
    /// id immediately; execution happens when the distributor dispatches it.
    pub fn submit_job(
        &mut self,
        token: &Token,
        artifact: &str,
        cores: u32,
        estimated_ticks: u64,
        now: u64,
    ) -> Result<JobId, PortalError> {
        self.submit_job_inner(token, artifact, cores, estimated_ticks, now, false)
    }

    /// [`Portal::submit_job`] with causal tracing: mints an `http.request`
    /// root span at the current scheduler tick and threads its
    /// [`TraceContext`] through the scheduler, so every later lifecycle
    /// event — dispatch, cluster allocation, execution, analysis, WAL
    /// appends — hangs under one tree served by `/api/trace/:job_id`.
    pub fn submit_job_traced(
        &mut self,
        token: &Token,
        artifact: &str,
        cores: u32,
        estimated_ticks: u64,
        now: u64,
    ) -> Result<JobId, PortalError> {
        self.submit_job_inner(token, artifact, cores, estimated_ticks, now, true)
    }

    fn submit_job_inner(
        &mut self,
        token: &Token,
        artifact: &str,
        cores: u32,
        estimated_ticks: u64,
        now: u64,
        traced: bool,
    ) -> Result<JobId, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let aid = self.artifact_for(&user, role, artifact)?;
        let spec = if cores <= 1 {
            JobSpec::sequential(&user, aid.as_str(), estimated_ticks.max(1))
        } else {
            JobSpec::parallel(&user, aid.as_str(), cores, estimated_ticks.max(1))
        };
        let spec = spec.with_estimate(estimated_ticks.max(1));
        if !traced {
            return Ok(self.scheduler.submit(spec)?);
        }
        let tick = self.scheduler.now();
        let span = self.obs.tracer.begin("http.request", tick);
        self.obs.tracer.set_attr(span, "route", "/api/jobs");
        let res = self
            .scheduler
            .submit_traced(spec, Some(TraceContext::new(span)));
        // The root closes immediately (admission is synchronous); the
        // job's asynchronous life keeps attaching children under it.
        self.obs.tracer.end(span, tick);
        match res {
            Ok(id) => {
                self.obs.tracer.set_attr(span, "job", &id.0.to_string());
                Ok(id)
            }
            Err(e) => {
                self.obs.tracer.set_attr(span, "error", &e.to_string());
                Err(e.into())
            }
        }
    }

    /// Advance the distributor one tick. Newly dispatched jobs execute on
    /// the VM now: their streams fill and their true runtime (derived from
    /// instructions executed) replaces the estimate.
    pub fn tick(&mut self) -> Vec<JobId> {
        let t0 = std::time::Instant::now();
        let dispatched = self.scheduler.tick();
        let now_tick = self.scheduler.now();
        for &id in &dispatched {
            let (artifact, user, stdin): (String, String, Vec<String>) = {
                let job = self.scheduler.job(id).expect("just dispatched");
                (
                    job.spec.executable.clone(),
                    job.spec.user.clone(),
                    job.streams.stdin.iter().cloned().collect(),
                )
            };
            let aid = ArtifactId::from_string(artifact);
            let exec = Executor::with_seed(self.config.seed ^ id.0);
            let report = exec.run_with_stdin_observed(
                &self.artifacts,
                &aid,
                Arc::clone(&self.fs),
                &user,
                &stdin,
                &self.obs,
            );
            let ipt = self.config.instructions_per_tick.max(1);
            // Route the outcome through the scheduler so it lands in the
            // journal: VM output is not re-derivable at recovery time.
            let (stdout, stderr, ticks) = match &report {
                Ok(r) => (
                    r.outcome.as_ref().map(|o| o.stdout.clone()),
                    r.error.as_ref().map(|e| e.to_string()),
                    match (&r.error, &r.outcome) {
                        (Some(_), _) => Some(1),
                        (None, Some(o)) => Some(o.executed / ipt + 1),
                        (None, None) => None,
                    },
                ),
                Err(e) => (None, Some(e.to_string()), Some(1)),
            };
            // Hang the execution under the job's trace before the outcome
            // lands, so the tree reads exec.run → wal.append in causal
            // order. Attrs are tick-domain only — worker counts and wall
            // clock never leak into the deterministic tree.
            if let Some(ctx) = self.scheduler.job_trace(id) {
                let job_attr = id.0.to_string();
                let ticks_attr = ticks.map(|t| t.to_string());
                let mut attrs: Vec<(&str, &str)> = vec![("job", &job_attr)];
                if let Some(t) = &ticks_attr {
                    attrs.push(("ticks", t));
                }
                self.obs
                    .tracer
                    .event_child(ctx.parent, "exec.run", now_tick, &attrs);
            }
            if stdout.is_some() || stderr.is_some() || ticks.is_some() {
                let _ = self
                    .scheduler
                    .set_outcome(id, stdout.as_deref(), stderr.as_deref(), ticks);
            }
            if self.config.auto_analyze {
                self.auto_analyze(id, &aid, now_tick);
            }
        }
        self.obs
            .profiler
            .observe("sched.tick", t0.elapsed().as_micros() as u64, || {
                format!("tick {now_tick}: {} dispatched", dispatched.len())
            });
        self.sample_metrics(now_tick);
        dispatched
    }

    /// Run the systematic checker over an executed job's program and
    /// record the verdict as a `checker.analyze` child in its trace —
    /// the checker layer of the job's causal tree. The pool's reports
    /// are bit-identical across worker counts, so the span is too.
    fn auto_analyze(&mut self, id: JobId, aid: &ArtifactId, now_tick: u64) {
        let Some(program) = self.artifacts.get(aid).map(|a| a.program.clone()) else {
            return;
        };
        let cfg = checker::CheckConfig {
            snapshot_prefix: self.config.checker_snapshot_prefix,
            state_cache_capacity: self.config.checker_state_cache,
            dpor: self.config.checker_dpor,
            preemption_bound: self.config.checker_preemption_bound,
            ..checker::CheckConfig::default()
        };
        let report = self.pool.check(&program, &cfg);
        if let Some(ctx) = self.scheduler.job_trace(id) {
            self.obs.tracer.event_child(
                ctx.parent,
                "checker.analyze",
                now_tick,
                &[
                    ("job", &id.0.to_string()),
                    ("verdict", report.verdict.class()),
                    ("schedules", &report.schedules.to_string()),
                ],
            );
        }
    }

    /// Capture the registry into the time-series store and evaluate the
    /// SLOs, every [`super::PortalConfig::sample_every`] ticks. Gauges are
    /// republished first so captures never window over stale depth.
    fn sample_metrics(&mut self, now_tick: u64) {
        let every = self.config.sample_every;
        if every == 0 || !now_tick.is_multiple_of(every) {
            return;
        }
        self.scheduler.publish_gauges();
        let t0 = std::time::Instant::now();
        if self.store.record(now_tick, &self.obs.metrics) {
            self.obs
                .profiler
                .observe("registry.sample", t0.elapsed().as_micros() as u64, || {
                    format!("capture at tick {now_tick}")
                });
            self.slo.evaluate(now_tick, &self.store, &self.obs.events);
        }
    }

    /// Run the distributor until all jobs are terminal (bounded).
    pub fn drain_jobs(&mut self, max_ticks: u64) -> bool {
        for _ in 0..max_ticks {
            self.tick();
            if self.scheduler.jobs().all(|j| j.state.is_terminal()) {
                return true;
            }
        }
        false
    }

    /// Queue a stdin line for a pending job (consumed when it dispatches).
    pub fn send_stdin(
        &mut self,
        token: &Token,
        id: JobId,
        line: &str,
        now: u64,
    ) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        // Through the scheduler (not job_mut) so the line is journaled.
        Ok(self.scheduler.push_stdin(id, line)?)
    }

    /// Cancel a job (owner or admin). Jobs already gone to a fault get the
    /// typed error for it, so the UI can explain *why* there is nothing to
    /// cancel rather than a generic bad-state message.
    pub fn cancel_job(&mut self, token: &Token, id: JobId, now: u64) -> Result<(), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        {
            let j = self.scheduler.job(id)?;
            if j.spec.user != user && !role.at_least(Role::Admin) {
                return Err(PortalError::Forbidden("job belongs to another user"));
            }
            match j.state {
                JobState::NodeLost { attempts, .. } => {
                    return Err(PortalError::JobLost { job: id, attempts })
                }
                JobState::TimedOut { .. } => return Err(PortalError::JobTimedOut { job: id }),
                _ => {}
            }
        }
        Ok(self.scheduler.cancel(id)?)
    }

    /// Force both journals to disk (shutdown hook; group commit otherwise
    /// decides when fsyncs happen).
    pub fn flush_wal(&mut self) -> Result<(), PortalError> {
        self.fs.lock().flush_wal()?;
        self.scheduler.flush_wal()?;
        Ok(())
    }
}
