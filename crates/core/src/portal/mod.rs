//! The [`Portal`]: every substrate behind one session-authenticated API.
//!
//! The implementation is split by locking discipline, so the web layer can
//! hold the portal's `RwLock` for exactly as long as each facade needs:
//!
//! * [`session`] — token issue/validate plus the [`SessionStamp`] that
//!   long-running operations use to detect mid-flight revocation;
//! * [`read`] — `&self` views (listings, job status, dashboards) that are
//!   safe under a shared read lock;
//! * [`write`] — `&mut self` mutations, including the scheduler tick,
//!   which stay single-writer so tick-domain determinism is preserved;
//! * [`heavy`] — compile / execute / analyze, split into begin → run →
//!   commit phases so the expensive middle runs with **no** portal lock
//!   held.

mod heavy;
mod read;
mod session;
mod write;

pub use heavy::{AnalyzeDone, AnalyzePhase, CompileDone, CompilePhase, RunDone, RunPhase};
pub use session::SessionStamp;

use crate::error::PortalError;
use crate::view::RecoveryView;
use auth::{Role, SessionManager, UserStore};
use cluster::{Cluster, ClusterSpec};
use obs::{Obs, SloEngine, TimeSeriesStore};
use parking_lot::Mutex;
use sched::{SchedPolicyKind, Scheduler};
use std::path::PathBuf;
use std::sync::Arc;
use toolchain::ArtifactStore;
use vfs::{Vfs, VfsError};
use wal::{FileStorage, FsyncPolicy, Journal, JournalHooks, RecoveryReport};

/// Portal construction parameters.
#[derive(Debug, Clone)]
pub struct PortalConfig {
    /// Hardware to boot.
    pub cluster: ClusterSpec,
    /// Job-distribution policy.
    pub policy: SchedPolicyKind,
    /// Session time-to-live (caller clock units; the web layer passes
    /// seconds).
    pub session_ttl: u64,
    /// Default per-user quota in bytes.
    pub default_quota: u64,
    /// Seed for token generation and password salts.
    pub seed: u64,
    /// How many VM instructions equal one scheduler tick when deriving a
    /// dispatched job's runtime.
    pub instructions_per_tick: u64,
    /// Checker pool width. `None` consults the `CCP_CHECKER_THREADS`
    /// environment variable, falling back to
    /// `max(1, available_parallelism - 1)`; 0 or 1 runs analyses serially.
    pub checker_threads: Option<usize>,
    /// Compile-cache capacity in programs (0 disables caching).
    pub compile_cache_capacity: usize,
    /// Snapshot/prefix reuse in the checker's DFS (see
    /// `CheckConfig::snapshot_prefix`). Same reports, strictly less work;
    /// off falls back to the stateless reference explorer.
    pub checker_snapshot_prefix: bool,
    /// Visited-state cache capacity for analyses (see
    /// `CheckConfig::state_cache_capacity`). 0 — the default — keeps
    /// exploration exhaustive-modulo-budget; nonzero trades soundness of
    /// the `complete` flag for speed and forces analyses serial.
    pub checker_state_cache: usize,
    /// Dynamic partial-order reduction in analyses (see
    /// `CheckConfig::dpor`). Same verdicts on strictly fewer schedules;
    /// off falls back to the sleep-set DFS.
    pub checker_dpor: bool,
    /// CHESS-style preemption bound for analyses (see
    /// `CheckConfig::preemption_bound`). `None` explores freely; `Some(b)`
    /// certifies `exhaustive_within_bound` instead of `complete`.
    pub checker_preemption_bound: Option<u32>,
    /// Durability root. `Some(dir)` persists filesystem and scheduler
    /// state to write-ahead logs under `dir` and recovers them at boot;
    /// `None` (the default) keeps the portal fully in-memory, bit-for-bit
    /// identical to the pre-durability behaviour.
    pub data_dir: Option<PathBuf>,
    /// When to fsync the logs: group commit (one fsync per N appends) by
    /// default; `Always` for strongest durability, `Never` for benches.
    pub wal_fsync: FsyncPolicy,
    /// Install a snapshot and compact each log every N records
    /// (0 = never snapshot; the log grows without bound).
    pub snapshot_interval: u64,
    /// Time-series store depth: how many periodic metrics captures the
    /// dashboard can window over before old ones roll off.
    pub ts_capacity: usize,
    /// Capture the registry into the store every N scheduler ticks.
    pub sample_every: u64,
    /// Service-level objectives evaluated over the store each sample.
    /// Defaults to [`PortalConfig::default_slos`]; empty disables alerting.
    pub slos: Vec<obs::SloSpec>,
    /// Operations slower than this (wall-clock µs) land in the bounded
    /// slowest-ops log at `/api/admin/slow`.
    pub slow_op_threshold_us: u64,
    /// Run a checker analysis on every job the distributor executes,
    /// recording the verdict as a `checker.analyze` span in the job's
    /// trace. Off by default: it spends checker budget per dispatch.
    pub auto_analyze: bool,
}

impl PortalConfig {
    /// The stock objectives: sustained deep queue, excessive job loss,
    /// and degraded p99 wait time. All read tick-domain series, so alert
    /// histories are reproducible across same-seed runs.
    pub fn default_slos() -> Vec<obs::SloSpec> {
        use obs::{SloKind, SloSpec};
        vec![
            SloSpec {
                name: "queue-depth".into(),
                kind: SloKind::GaugeAbove {
                    series: "ccp_sched_queue_depth".into(),
                    threshold_milli: 32_000,
                },
                short_window: 8,
                long_window: 32,
            },
            SloSpec {
                name: "job-loss".into(),
                kind: SloKind::ErrorRatio {
                    bad: "ccp_sched_jobs_node_lost_total".into(),
                    total: "ccp_sched_jobs_submitted_total".into(),
                    objective_milli: 50,
                },
                short_window: 8,
                long_window: 32,
            },
            SloSpec {
                name: "wait-p99".into(),
                kind: SloKind::QuantileAbove {
                    series: "ccp_sched_job_wait_ticks".into(),
                    q: 0.99,
                    threshold: 500.0,
                },
                short_window: 8,
                long_window: 32,
            },
        ]
    }
}

impl Default for PortalConfig {
    fn default() -> Self {
        PortalConfig {
            cluster: ClusterSpec::uhd(),
            policy: SchedPolicyKind::Backfill,
            session_ttl: 3600,
            default_quota: 16 << 20,
            seed: 0x5eed,
            instructions_per_tick: 10_000,
            checker_threads: None,
            compile_cache_capacity: 256,
            checker_snapshot_prefix: true,
            checker_state_cache: 0,
            checker_dpor: true,
            checker_preemption_bound: None,
            data_dir: None,
            wal_fsync: FsyncPolicy::EveryN(8),
            snapshot_interval: 1024,
            ts_capacity: 512,
            sample_every: 1,
            slos: PortalConfig::default_slos(),
            slow_op_threshold_us: obs::DEFAULT_SLOW_OP_THRESHOLD_US,
            auto_analyze: false,
        }
    }
}

/// Routes [`Journal`] telemetry into the shared metrics registry, one hook
/// set per stream (`stream="vfs"` / `stream="sched"`).
struct WalMetricHooks {
    appends: obs::Counter,
    bytes: obs::Counter,
    fsyncs: obs::Counter,
    snapshots: obs::Counter,
    /// For the contention profiler: group-commit storage-sync waits land
    /// under the `wal.commit` site.
    obs: Arc<Obs>,
    stream: &'static str,
}

impl JournalHooks for WalMetricHooks {
    fn on_append(&self, bytes: u64) {
        self.appends.inc();
        self.bytes.add(bytes);
    }
    fn on_fsync(&self) {
        self.fsyncs.inc();
    }
    fn on_fsync_wait(&self, us: u64) {
        self.obs
            .profiler
            .observe("wal.commit", us, || format!("{} stream fsync", self.stream));
    }
    fn on_snapshot(&self) {
        self.snapshots.inc();
    }
}

/// Describe and eagerly register every `ccp_wal_*` family for both
/// streams, so `/api/metrics` exposes them from the first scrape even on
/// an in-memory portal (the scrape contract is checked by
/// `scripts/check_metrics.sh`).
fn register_wal_metrics(obs: &Obs) {
    let m = &obs.metrics;
    m.describe("ccp_wal_appends_total", "records appended to the WAL");
    m.describe("ccp_wal_bytes_total", "framed bytes appended to the WAL");
    m.describe("ccp_wal_fsyncs_total", "fsyncs issued by the WAL");
    m.describe(
        "ccp_wal_snapshots_total",
        "snapshots installed (log compactions)",
    );
    m.describe(
        "ccp_wal_recoveries_total",
        "crash recoveries performed at boot",
    );
    m.describe(
        "ccp_wal_recovery_replay_us",
        "wall time spent recovering a WAL stream at boot (us)",
    );
    for stream in ["vfs", "sched"] {
        let labels = &[("stream", stream)];
        m.counter("ccp_wal_appends_total", labels);
        m.counter("ccp_wal_bytes_total", labels);
        m.counter("ccp_wal_fsyncs_total", labels);
        m.counter("ccp_wal_snapshots_total", labels);
        m.counter("ccp_wal_recoveries_total", labels);
        m.histogram(
            "ccp_wal_recovery_replay_us",
            labels,
            obs::DURATION_US_BOUNDS,
        );
    }
}

fn wal_hooks(obs: &Arc<Obs>, stream: &'static str) -> Box<dyn JournalHooks> {
    let m = &obs.metrics;
    let labels = &[("stream", stream)];
    Box::new(WalMetricHooks {
        appends: m.counter("ccp_wal_appends_total", labels),
        bytes: m.counter("ccp_wal_bytes_total", labels),
        fsyncs: m.counter("ccp_wal_fsyncs_total", labels),
        snapshots: m.counter("ccp_wal_snapshots_total", labels),
        obs: Arc::clone(obs),
        stream,
    })
}

/// Open both WAL streams under `dir`, recover the filesystem and the
/// scheduler from them, and leave the journals attached so subsequent
/// mutations are logged. Returns the per-stream recovery views.
fn open_durable(
    dir: &std::path::Path,
    config: &PortalConfig,
    obs: &Arc<Obs>,
    fs: &mut Vfs,
    scheduler: &mut Scheduler,
) -> Result<Vec<RecoveryView>, String> {
    let open_stream = |name: &str| -> Result<(Journal, wal::Recovered), String> {
        let storage = FileStorage::open(dir, name).map_err(|e| format!("open {name} log: {e}"))?;
        Journal::open(
            Box::new(storage),
            config.wal_fsync,
            config.snapshot_interval,
        )
        .map_err(|e| format!("recover {name} log: {e}"))
    };

    let (vfs_journal, vfs_recovered) = open_stream("vfs")?;
    let (recovered_fs, vfs_replay_errors) =
        Vfs::recover(&vfs_recovered).map_err(|e| format!("replay vfs log: {e}"))?;
    *fs = recovered_fs;
    fs.attach_journal(vfs_journal.with_hooks(wal_hooks(obs, "vfs")));

    let (sched_journal, sched_recovered) = open_stream("sched")?;
    let sched_replay_errors = scheduler
        .recover(&sched_recovered)
        .map_err(|e| format!("replay sched log: {e}"))?;
    scheduler.attach_journal(sched_journal.with_hooks(wal_hooks(obs, "sched")));

    let mut views = Vec::new();
    for (stream, report, replay_errors) in [
        ("vfs", &vfs_recovered.report, vfs_replay_errors),
        ("sched", &sched_recovered.report, sched_replay_errors),
    ] {
        let labels = &[("stream", stream)];
        obs.metrics
            .counter("ccp_wal_recoveries_total", labels)
            .inc();
        obs.metrics
            .histogram(
                "ccp_wal_recovery_replay_us",
                labels,
                obs::DURATION_US_BOUNDS,
            )
            .record(report.wall_us);
        views.push(recovery_view(stream, report, replay_errors));
    }
    Ok(views)
}

fn recovery_view(stream: &str, report: &RecoveryReport, replay_errors: u64) -> RecoveryView {
    RecoveryView {
        stream: stream.to_string(),
        snapshot_lsn: report.snapshot_lsn,
        snapshot_corrupt: report.snapshot_corrupt,
        records_replayed: report.records_replayed,
        torn_bytes: report.torn_bytes,
        corrupt_records: report.corrupt_records,
        replay_errors,
        last_lsn: report.last_lsn,
        wall_us: report.wall_us,
    }
}

/// The portal backend. One instance serves the whole site; the web layer
/// wraps it in an `RwLock` (reads share, mutations are exclusive).
///
/// The substrates that heavy operations touch off-lock — the filesystem,
/// the compile cache, the checker pool and the telemetry domain — are
/// `Arc`-shared and internally synchronized, so a phase object cloned out
/// of the portal stays valid after the portal lock is released.
pub struct Portal {
    users: UserStore,
    sessions: SessionManager,
    fs: Arc<Mutex<Vfs>>,
    artifacts: ArtifactStore,
    scheduler: Scheduler,
    pool: Arc<checker::Pool>,
    compile_cache: Arc<Mutex<toolchain::CompileCache>>,
    obs: Arc<Obs>,
    store: TimeSeriesStore,
    slo: SloEngine,
    config: PortalConfig,
    admin_bootstrapped: bool,
    recovery: Vec<RecoveryView>,
    wal_enabled: bool,
    wal_open_error: Option<String>,
}

impl Portal {
    /// Boot a portal: empty user store, cold cluster. With
    /// [`PortalConfig::data_dir`] set, the filesystem and scheduler are
    /// recovered from their write-ahead logs (fresh when the logs are
    /// empty) and every subsequent mutation is journaled; otherwise both
    /// start fresh and stay in-memory. Every substrate records into one
    /// shared telemetry domain.
    pub fn new(config: PortalConfig) -> Portal {
        let cluster = Cluster::new(config.cluster.clone());
        let obs = Arc::new(Obs::new());
        let workers = config
            .checker_threads
            .or_else(|| {
                std::env::var("CCP_CHECKER_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(checker::Pool::default_workers);
        let pool = Arc::new(checker::Pool::new(workers).with_obs(Arc::clone(&obs)));
        toolchain::cache::register_cache_metrics(&obs);
        register_wal_metrics(&obs);
        obs.profiler.set_threshold_us(config.slow_op_threshold_us);
        let store = TimeSeriesStore::new(config.ts_capacity.max(1));
        let slo = SloEngine::new(config.slos.clone(), &obs.metrics);

        let mut fs = Vfs::new();
        let mut scheduler = Scheduler::new(cluster, config.policy).with_obs(Arc::clone(&obs));
        let mut recovery = Vec::new();
        let mut wal_enabled = false;
        let mut wal_open_error = None;
        if let Some(dir) = config.data_dir.clone() {
            match open_durable(&dir, &config, &obs, &mut fs, &mut scheduler) {
                Ok(views) => {
                    recovery = views;
                    wal_enabled = true;
                }
                // A portal that cannot journal still serves — from memory,
                // with the failure surfaced in /api/health — rather than
                // refusing to boot over a full disk or bad permissions.
                Err(e) => wal_open_error = Some(e),
            }
        }

        Portal {
            users: UserStore::new(config.seed),
            sessions: SessionManager::new(config.session_ttl, config.seed.wrapping_add(1)),
            fs: Arc::new(Mutex::new(fs)),
            artifacts: ArtifactStore::new(),
            scheduler,
            pool,
            compile_cache: Arc::new(Mutex::new(toolchain::CompileCache::new(
                config.compile_cache_capacity,
            ))),
            obs,
            store,
            slo,
            config,
            admin_bootstrapped: false,
            recovery,
            wal_enabled,
            wal_open_error,
        }
    }

    /// Create the first (admin) account. Callable exactly once per boot.
    /// After a crash recovery the account's files already exist in the
    /// vfs; only the credential store (which is not journaled) is
    /// repopulated.
    pub fn bootstrap_admin(&mut self, name: &str, password: &str) -> Result<(), PortalError> {
        if self.admin_bootstrapped {
            return Err(PortalError::Bootstrap("admin already exists"));
        }
        self.users.register(name, password, Role::Admin)?;
        match self.fs.lock().add_user(name, u64::MAX) {
            Ok(()) | Err(VfsError::UserExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.admin_bootstrapped = true;
        Ok(())
    }

    /// Compile-cache totals (dashboard / tests).
    pub fn compile_cache_stats(&self) -> toolchain::CacheStats {
        self.compile_cache.lock().stats()
    }

    /// The shared checker pool (analyses and batch grading run on it).
    pub fn pool(&self) -> &Arc<checker::Pool> {
        &self.pool
    }

    /// The portal's telemetry domain. Every substrate (httpd routing is
    /// wired by the web layer) records into this one [`Obs`].
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The current scheduler tick (the portal's logical clock).
    pub fn now_tick(&self) -> u64 {
        self.scheduler.now()
    }

    /// The time-series store behind `/api/dashboard` (the `ccp-top`
    /// example queries it directly).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// True when mutations are being journaled to disk.
    pub fn durable(&self) -> bool {
        self.wal_enabled
    }

    /// What each WAL stream went through at boot (empty for in-memory
    /// portals).
    pub fn recovery_reports(&self) -> &[RecoveryView] {
        &self.recovery
    }

    /// The first durability failure, if any: the WAL could not be opened
    /// at boot, or an append/fsync failed mid-run (the filesystem surfaces
    /// those as errors; the scheduler records them here and keeps going).
    pub fn wal_error(&self) -> Option<String> {
        self.wal_open_error
            .clone()
            .or_else(|| self.scheduler.wal_error().map(|e| e.to_string()))
    }

    /// Direct scheduler access for tests and the bench harness.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Shared filesystem handle (the bench harness preloads lab files).
    pub fn fs(&self) -> Arc<Mutex<Vfs>> {
        Arc::clone(&self.fs)
    }
}
