//! Read facade: every `&self` view. All of these are safe under a shared
//! read lock on the portal — the substrates they touch either take `&self`
//! too or are internally synchronized (the vfs and the telemetry domain
//! carry their own locks).

use super::Portal;
use crate::error::PortalError;
use crate::view::{
    state_label, AlertView, DashboardView, EventView, FileView, HealthView, JobView, NodeView,
    QuotaView, SlowOpView, SpanView, TimelineEventView, TraceView,
};
use auth::{Role, Token};
use cluster::NodeHealth;
use sched::JobId;
use vfs::EntryKind;

impl Portal {
    // ---- file manager ------------------------------------------------------

    /// List a directory.
    pub fn list_dir(
        &self,
        token: &Token,
        path: &str,
        now: u64,
    ) -> Result<Vec<FileView>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        let entries = self.fs.lock().list(&user, &full)?;
        Ok(entries
            .into_iter()
            .map(|e| FileView {
                name: e.name,
                is_dir: e.stat.kind == EntryKind::Dir,
                size: e.stat.size,
                owner: e.stat.owner,
                mtime: e.stat.mtime,
            })
            .collect())
    }

    /// Read (download) a file.
    pub fn read_file(&self, token: &Token, path: &str, now: u64) -> Result<Vec<u8>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let full = self.resolve(&user, role, path)?;
        Ok(self.fs.lock().read(&user, &full)?)
    }

    /// The caller's quota.
    pub fn quota(&self, token: &Token, now: u64) -> Result<QuotaView, PortalError> {
        let (user, _) = self.whoami(token, now)?;
        let (used, limit) = self.fs.lock().quota(&user)?;
        Ok(QuotaView { used, limit })
    }

    /// The caller's artifacts, most recent first, as `(id, source_path)`.
    pub fn my_artifacts(
        &self,
        token: &Token,
        now: u64,
    ) -> Result<Vec<(String, String)>, PortalError> {
        let (user, _) = self.whoami(token, now)?;
        Ok(self
            .artifacts
            .by_owner(&user)
            .into_iter()
            .map(|a| (a.id.to_string(), a.source_path.clone()))
            .collect())
    }

    // ---- jobs --------------------------------------------------------------

    /// The caller's jobs (admins see everyone's).
    pub fn jobs(&self, token: &Token, now: u64) -> Result<Vec<JobView>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        Ok(self
            .scheduler
            .jobs()
            .filter(|j| role.at_least(Role::Admin) || j.spec.user == user)
            .map(job_view)
            .collect())
    }

    /// One job (owner or admin).
    pub fn job(&self, token: &Token, id: JobId, now: u64) -> Result<JobView, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        Ok(job_view(j))
    }

    /// The tail of a job's captured stdout from byte offset `from` (owner
    /// or admin): returns `(total_len, new_bytes)`. Pollers pass the
    /// offset they already have and receive only the growth, so the
    /// edit→compile→submit→poll loop moves O(delta) bytes per poll
    /// instead of re-shipping the whole stream each time.
    pub fn job_stdout_tail(
        &self,
        token: &Token,
        id: JobId,
        from: usize,
        now: u64,
    ) -> Result<(usize, String), PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        let out = &j.streams.stdout;
        let mut start = from.min(out.len());
        // Snap forward to a char boundary so a client-supplied offset
        // landing mid-UTF-8 cannot panic the slice.
        while start < out.len() && !out.is_char_boundary(start) {
            start += 1;
        }
        Ok((out.len(), out[start..].to_string()))
    }

    // ---- status ------------------------------------------------------------

    /// `(free_cores, total_cores, utilization)` for the dashboard.
    pub fn cluster_status(&self) -> (u32, u32, f64) {
        let c = self.scheduler.cluster();
        (c.free_cores(), c.total_cores(), c.utilization())
    }

    /// Per-node health rows for the dashboard.
    pub fn cluster_nodes(&self) -> Vec<NodeView> {
        let c = self.scheduler.cluster();
        c.slave_ids()
            .into_iter()
            .map(|id| NodeView {
                segment: id.segment,
                slot: id.slot,
                health: match c.health(id) {
                    Ok(NodeHealth::Up) => "up".to_string(),
                    Ok(NodeHealth::Draining) => "draining".to_string(),
                    Ok(NodeHealth::Down) => "down".to_string(),
                    Err(_) => "unknown".to_string(),
                },
                cores: c.node_spec(id).map(|n| n.cores).unwrap_or(0),
            })
            .collect()
    }

    /// True while any slave node is out of service. Submissions stay open
    /// (admission checks spec capacity, not live capacity); queued work
    /// runs when nodes return.
    pub fn degraded(&self) -> bool {
        let c = self.scheduler.cluster();
        c.slave_ids()
            .into_iter()
            .any(|id| c.health(id) != Ok(NodeHealth::Up))
    }

    // ---- telemetry ---------------------------------------------------------

    /// Republish the live gauges (queue depth, core counts) into the
    /// registry. A caller that wants an up-to-date exposition without
    /// holding any portal lock during serialization calls this under a
    /// read guard, releases, and renders from the shared registry.
    pub fn publish_gauges(&self) {
        self.scheduler.publish_gauges();
    }

    /// Prometheus text exposition of every registered metric. Gauges are
    /// republished from live state first, so scrapes never see stale depth
    /// or core counts. (The web layer prefers [`Portal::publish_gauges`] +
    /// an unlocked render; this stays for direct library callers.)
    pub fn metrics_text(&self) -> String {
        self.publish_gauges();
        self.obs.metrics.render()
    }

    /// Health snapshot for `/api/health`: the per-node rows, the summary
    /// counts, and the queue/running gauges — one cluster walk, so the
    /// degraded flag and the counts cannot disagree.
    pub fn health_view(&self) -> HealthView {
        let nodes = self.cluster_nodes();
        let count = |h: &str| nodes.iter().filter(|n| n.health == h).count();
        let (nodes_up, nodes_draining, nodes_down) =
            (count("up"), count("draining"), count("down"));
        HealthView {
            degraded: nodes_up < nodes.len(),
            nodes,
            nodes_up,
            nodes_draining,
            nodes_down,
            queue_depth: self.scheduler.pending().len(),
            jobs_running: self.scheduler.running_count(),
            durable: self.wal_enabled,
            recovery: self.recovery.clone(),
            wal_error: self.wal_error(),
            alerts: self.alerts(),
        }
    }

    /// Current SLO alert state, in objective declaration order.
    pub fn alerts(&self) -> Vec<AlertView> {
        self.slo
            .alerts()
            .into_iter()
            .map(|a| AlertView {
                slo: a.slo,
                firing: a.firing,
                since: a.since,
                transitions: a.transitions,
            })
            .collect()
    }

    /// Dashboard snapshot for `/api/dashboard`: windowed queries over the
    /// store, restricted to tick-domain series so the result is
    /// byte-identical across same-seed runs. A fixed 32-tick window keeps
    /// the panels comparable run to run.
    pub fn dashboard_view(&self) -> DashboardView {
        use crate::view::{QuantilePanel, RatePanel};
        use obs::SampleValue;
        const WINDOW: u64 = 32;
        let s = &self.store;
        let scalar = |name: &str| -> i64 {
            match s.latest(name, &[]) {
                Some(SampleValue::Gauge(g)) => g,
                Some(SampleValue::Counter(c)) => c as i64,
                _ => 0,
            }
        };
        let rate = |name: &str| RatePanel {
            total: scalar(name),
            rate_milli: s.rate_milli(name, &[], WINDOW),
        };
        let quantiles = |name: &str| QuantilePanel {
            p50: s.window_quantile(name, &[], WINDOW, 0.5),
            p99: s.window_quantile(name, &[], WINDOW, 0.99),
        };
        DashboardView {
            at: s.last_at().unwrap_or(0),
            window: WINDOW,
            captures: s.len(),
            evicted: s.evicted(),
            queue_depth: scalar("ccp_sched_queue_depth"),
            queue_depth_avg_milli: s.window_avg_milli("ccp_sched_queue_depth", &[], WINDOW),
            jobs_running: scalar("ccp_sched_jobs_running"),
            submitted: rate("ccp_sched_jobs_submitted_total"),
            completed: rate("ccp_sched_jobs_completed_total"),
            dispatched: rate("ccp_sched_jobs_dispatched_total"),
            node_lost: rate("ccp_sched_jobs_node_lost_total"),
            wait_ticks: quantiles("ccp_sched_job_wait_ticks"),
            run_ticks: quantiles("ccp_sched_job_run_ticks"),
            alerts: self.alerts(),
        }
    }

    /// The slowest operations the contention profiler has seen (admin
    /// only — details name other users' paths). Sorted slowest-first.
    pub fn slow_ops(&self, token: &Token, now: u64) -> Result<Vec<SlowOpView>, PortalError> {
        let (_, role) = self.whoami(token, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("slow-op log requires admin"));
        }
        Ok(self
            .obs
            .profiler
            .slowest()
            .into_iter()
            .map(|op| SlowOpView {
                site: op.site.to_string(),
                us: op.us,
                detail: op.detail,
            })
            .collect())
    }

    /// The job's full causal span tree — the `http.request` root plus
    /// every child recorded across scheduler, cluster, execution, checker,
    /// and WAL layers. Owner or admin, like [`Portal::job`]. Jobs
    /// submitted without tracing (or recovered from the WAL, which does
    /// not persist traces) yield an empty tree.
    pub fn job_trace_tree(
        &self,
        token: &Token,
        id: JobId,
        now: u64,
    ) -> Result<TraceView, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        let (root, spans) = match self.scheduler.job_trace(id) {
            Some(ctx) => (Some(ctx.root.0), self.obs.tracer.subtree(ctx.root)),
            None => (None, Vec::new()),
        };
        Ok(TraceView {
            job: id.0,
            root,
            spans: spans
                .into_iter()
                .map(|s| SpanView {
                    id: s.id,
                    parent: s.parent,
                    name: s.name,
                    start: s.start,
                    end: s.end,
                    attrs: s.attrs,
                })
                .collect(),
            truncated: self.obs.tracer.dropped(),
        })
    }

    /// A job's life story — submitted, queued, dispatched, retried,
    /// terminal — in event order. Owner or admin only, like
    /// [`Portal::job`]; the final entry matches the job's current state.
    pub fn job_timeline(
        &self,
        token: &Token,
        id: JobId,
        now: u64,
    ) -> Result<Vec<TimelineEventView>, PortalError> {
        let (user, role) = self.whoami(token, now)?;
        let j = self.scheduler.job(id)?;
        if j.spec.user != user && !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("job belongs to another user"));
        }
        let key = id.0.to_string();
        Ok(self
            .obs
            .tracer
            .find_by_attr("job", &key)
            .into_iter()
            .map(|s| TimelineEventView {
                at: s.start,
                event: s.name.clone(),
                attrs: s
                    .attrs
                    .iter()
                    .filter(|(k, _)| k != "job")
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            })
            .collect())
    }

    /// The most recent `limit` structured events (access log, ...). Admin
    /// only: the log carries request paths across all users.
    pub fn recent_events(
        &self,
        token: &Token,
        limit: usize,
        now: u64,
    ) -> Result<Vec<EventView>, PortalError> {
        let (_, role) = self.whoami(token, now)?;
        if !role.at_least(Role::Admin) {
            return Err(PortalError::Forbidden("event log requires admin"));
        }
        Ok(self
            .obs
            .events
            .recent(limit)
            .into_iter()
            .map(|e| EventView {
                at: e.at,
                kind: e.kind,
                fields: e.fields,
            })
            .collect())
    }
}

fn job_view(j: &sched::JobRecord) -> JobView {
    JobView {
        id: j.id,
        user: j.spec.user.clone(),
        executable: j.spec.executable.clone(),
        state: j.state.clone(),
        state_label: state_label(&j.state),
        cores: j.spec.cores_needed(),
        attempt: j.attempt,
        last_failure: j.last_failure.clone(),
        stdout: j.streams.stdout.clone(),
        stderr: j.streams.stderr.clone(),
    }
}
