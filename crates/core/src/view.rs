//! Plain-data views the web layer renders; no substrate types leak out.

use sched::{JobId, JobState};

/// One file-browser row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileView {
    /// Entry name.
    pub name: String,
    /// True for directories.
    pub is_dir: bool,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Owner.
    pub owner: String,
    /// Logical mtime.
    pub mtime: u64,
}

/// One job-monitor row.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job id.
    pub id: JobId,
    /// Submitting user.
    pub user: String,
    /// Executable (artifact id).
    pub executable: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Human-readable state label.
    pub state_label: String,
    /// Cores the job asked for.
    pub cores: u32,
    /// Dispatches so far (0 = never ran, 2+ = retried after node loss).
    pub attempt: u32,
    /// Most recent failure cause, if any (survives a successful retry so
    /// the monitor can show what happened).
    pub last_failure: Option<String>,
    /// Captured stdout so far.
    pub stdout: String,
    /// Captured stderr so far.
    pub stderr: String,
}

/// One cluster-health row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// Segment index.
    pub segment: usize,
    /// Slot within the segment.
    pub slot: usize,
    /// "up" / "draining" / "down".
    pub health: String,
    /// Cores on the node.
    pub cores: u32,
}

/// One per-job timeline entry (job monitor "history" pane), distilled from
/// the tracer's point events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEventView {
    /// Scheduler tick the event happened at.
    pub at: u64,
    /// Event name (`job.submitted`, `job.dispatched`, ... `job.completed`).
    pub event: String,
    /// Event attributes beyond the job id (user, cores, attempt, ...).
    pub attrs: Vec<(String, String)>,
}

/// One structured-event-log row (admin operations view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventView {
    /// Timestamp (epoch seconds for http events, ticks for scheduler ones).
    pub at: u64,
    /// Event kind (`http.access`, ...).
    pub kind: String,
    /// Key/value payload.
    pub fields: Vec<(String, String)>,
}

/// What one write-ahead log stream went through at boot (`/api/health`
/// surfaces these so an operator can see a crash recovery happened and
/// whether anything was lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryView {
    /// Which subsystem's log: `"vfs"` or `"sched"`.
    pub stream: String,
    /// LSN covered by the snapshot that seeded recovery, if one existed.
    pub snapshot_lsn: Option<u64>,
    /// A snapshot blob existed but failed validation and was ignored.
    pub snapshot_corrupt: bool,
    /// Valid tail records replayed after the snapshot.
    pub records_replayed: u64,
    /// Trailing bytes discarded as a torn final write.
    pub torn_bytes: u64,
    /// Records discarded for checksum / sequence violations.
    pub corrupt_records: u64,
    /// Replayed records the subsystem itself rejected.
    pub replay_errors: u64,
    /// Highest LSN reconstructed.
    pub last_lsn: u64,
    /// Wall time recovery took, in microseconds.
    pub wall_us: u64,
}

/// Health snapshot: the degraded flag, the per-node rows it is derived
/// from, and the headline gauges — all computed from the same cluster
/// walk so the health view can never disagree with `/api/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthView {
    /// True while any node is out of service.
    pub degraded: bool,
    /// Per-node health rows.
    pub nodes: Vec<NodeView>,
    /// Nodes fully in service.
    pub nodes_up: usize,
    /// Nodes finishing their work before maintenance.
    pub nodes_draining: usize,
    /// Nodes lost to faults.
    pub nodes_down: usize,
    /// Jobs waiting in the ready queue.
    pub queue_depth: usize,
    /// Jobs currently on cores.
    pub jobs_running: usize,
    /// True when the portal persists state through write-ahead logs.
    pub durable: bool,
    /// What each log stream recovered at boot (empty in-memory portals).
    pub recovery: Vec<RecoveryView>,
    /// Set when durability degraded: the WAL could not be opened, or hit
    /// an I/O error mid-run and stopped logging. The portal keeps serving
    /// from memory.
    pub wal_error: Option<String>,
    /// SLO alert state, in objective declaration order.
    pub alerts: Vec<AlertView>,
}

/// One SLO alert row (`/api/health`, `/api/dashboard`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertView {
    /// Objective name (`queue-depth`, `job-loss`, ...).
    pub slo: String,
    /// True while the objective is breached on both burn-rate windows.
    pub firing: bool,
    /// Tick the alert entered its current state (`None` before the first
    /// transition).
    pub since: Option<u64>,
    /// Lifetime firing↔cleared transitions.
    pub transitions: u64,
}

/// Latest value and windowed rate of one counter (`/api/dashboard`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatePanel {
    /// Latest captured value.
    pub total: i64,
    /// Per-tick rate over the dashboard window, in milli-units (`None`
    /// until two captures exist).
    pub rate_milli: Option<i64>,
}

/// Sliding-window quantiles of one histogram (`/api/dashboard`). A value
/// of `f64::INFINITY` means the rank landed in the overflow bucket; the
/// web layer renders it as the string `"+Inf"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantilePanel {
    pub p50: Option<f64>,
    pub p99: Option<f64>,
}

/// The `/api/dashboard` snapshot: windowed queries over the time-series
/// store, restricted to tick-domain series so same-seed runs render it
/// byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardView {
    /// Tick of the newest capture (0 before the first).
    pub at: u64,
    /// Window width in ticks behind every rate/quantile/average panel.
    pub window: u64,
    /// Captures currently held by the store.
    pub captures: usize,
    /// Captures that have rolled off the store's ring.
    pub evicted: u64,
    /// Jobs waiting in the ready queue (latest capture).
    pub queue_depth: i64,
    /// Windowed average queue depth, in milli-jobs.
    pub queue_depth_avg_milli: Option<i64>,
    /// Jobs on cores (latest capture).
    pub jobs_running: i64,
    pub submitted: RatePanel,
    pub completed: RatePanel,
    pub dispatched: RatePanel,
    pub node_lost: RatePanel,
    /// Queue-wait distribution over the window.
    pub wait_ticks: QuantilePanel,
    /// Runtime distribution over the window.
    pub run_ticks: QuantilePanel,
    /// SLO alert state.
    pub alerts: Vec<AlertView>,
}

/// One slowest-operations row (`/api/admin/slow`). Wall-clock timings —
/// diagnostic only, never part of the deterministic surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOpView {
    /// Profiler site (`wal.commit`, `pool.task`, ...).
    pub site: String,
    /// Wall-clock duration in microseconds.
    pub us: u64,
    /// What the operation was doing.
    pub detail: String,
}

/// One span row in a job's causal trace (`/api/trace/:job_id`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanView {
    pub id: u64,
    /// Parent span id (`None` only for the trace root).
    pub parent: Option<u64>,
    /// Span name (`http.request`, `cluster.alloc`, `wal.append`, ...).
    pub name: String,
    /// Start tick.
    pub start: u64,
    /// End tick (`None` while open; point events end where they start).
    pub end: Option<u64>,
    pub attrs: Vec<(String, String)>,
}

/// A job's connected span tree: the `http.request` root plus every child
/// across scheduler, cluster, execution, checker, and WAL layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceView {
    /// The job id.
    pub job: u64,
    /// Root span id (`None` when the job was submitted without tracing).
    pub root: Option<u64>,
    /// Reachable spans, ordered by (start, id).
    pub spans: Vec<SpanView>,
    /// Spans evicted from the tracer's ring so far — nonzero means the
    /// tree may be missing its oldest entries.
    pub truncated: u64,
}

/// Quota summary for the dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaView {
    /// Bytes in use.
    pub used: u64,
    /// Byte limit.
    pub limit: u64,
}

/// What the systematic checker concluded about an artifact
/// (`POST /api/analyze`): verdict, budget spent, and — on failure — the
/// minimized repro schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisView {
    /// The analyzed artifact id.
    pub artifact: String,
    /// Verdict class: `clean`, `race`, `deadlock`, `livelock`,
    /// `runtime_error`.
    pub verdict: String,
    /// Human-readable verdict detail (race location, deadlock cycle, ...).
    pub detail: String,
    /// Schedules (complete executions) explored.
    pub schedules: u64,
    /// Visible steps taken across all schedules.
    pub steps: u64,
    /// True iff the schedule space was exhausted, making `clean` a proof
    /// within the step bound rather than a sampling result.
    pub complete: bool,
    /// True iff every schedule within the configured preemption bound was
    /// explored (equals `complete` when no bound is set): the CHESS-style
    /// certificate that makes a bounded `clean` a proof up to the bound.
    pub exhaustive_within_bound: bool,
    /// On failure: thread id per visible step; replaying it reproduces the
    /// failure deterministically.
    pub repro: Vec<usize>,
}

/// Render a [`JobState`] the way the job monitor shows it.
pub fn state_label(state: &JobState) -> String {
    match state {
        JobState::Pending => "pending".to_string(),
        JobState::Running { started_at } => format!("running since t={started_at}"),
        JobState::Completed { at } => format!("completed at t={at}"),
        JobState::Cancelled { at } => format!("cancelled at t={at}"),
        JobState::Failed { at, reason } => format!("failed at t={at}: {reason}"),
        JobState::Requeued { attempt, retry_at } => {
            format!("requeued for attempt {attempt}, retrying at t={retry_at}")
        }
        JobState::TimedOut { at } => format!("timed out at t={at}"),
        JobState::NodeLost { at, attempts } => {
            format!("lost at t={at} after {attempts} attempts")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render() {
        assert_eq!(state_label(&JobState::Pending), "pending");
        assert_eq!(
            state_label(&JobState::Running { started_at: 3 }),
            "running since t=3"
        );
        assert!(state_label(&JobState::Failed {
            at: 9,
            reason: "node down".into()
        })
        .contains("node down"));
        assert_eq!(
            state_label(&JobState::Requeued {
                attempt: 2,
                retry_at: 14
            }),
            "requeued for attempt 2, retrying at t=14"
        );
        assert_eq!(
            state_label(&JobState::TimedOut { at: 30 }),
            "timed out at t=30"
        );
        assert_eq!(
            state_label(&JobState::NodeLost {
                at: 30,
                attempts: 3
            }),
            "lost at t=30 after 3 attempts"
        );
    }
}
