//! The portal's unified error type.

use auth::{AuthError, SessionError};
use sched::{JobId, SchedError};
use std::fmt;
use toolchain::ExecutorError;
use vfs::VfsError;

/// Anything a portal operation can fail with.
#[derive(Debug)]
pub enum PortalError {
    /// Authentication / account error.
    Auth(AuthError),
    /// Session invalid or expired.
    Session(SessionError),
    /// Filesystem error.
    Vfs(VfsError),
    /// Scheduler error.
    Sched(SchedError),
    /// Execution error.
    Exec(ExecutorError),
    /// Path escapes the caller's home directory (students may only touch
    /// their own files; faculty/admin use absolute paths).
    OutsideHome {
        /// The resolved path.
        path: String,
    },
    /// Operation requires a higher role.
    Forbidden(&'static str),
    /// The portal has no admin yet / already has one.
    Bootstrap(&'static str),
    /// The job lost its node and exhausted its retry budget.
    JobLost {
        /// The job.
        job: JobId,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// The job exceeded its wall-clock budget.
    JobTimedOut {
        /// The job.
        job: JobId,
    },
}

impl fmt::Display for PortalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortalError::Auth(e) => write!(f, "auth: {e}"),
            PortalError::Session(e) => write!(f, "session: {e}"),
            PortalError::Vfs(e) => write!(f, "filesystem: {e}"),
            PortalError::Sched(e) => write!(f, "scheduler: {e}"),
            PortalError::Exec(e) => write!(f, "executor: {e}"),
            PortalError::OutsideHome { path } => write!(f, "{path}: outside your home directory"),
            PortalError::Forbidden(what) => write!(f, "forbidden: {what}"),
            PortalError::Bootstrap(what) => write!(f, "bootstrap: {what}"),
            PortalError::JobLost { job, attempts } => {
                write!(f, "{job} lost its node after {attempts} attempts")
            }
            PortalError::JobTimedOut { job } => {
                write!(f, "{job} exceeded its wall-clock budget")
            }
        }
    }
}

impl std::error::Error for PortalError {}

impl From<AuthError> for PortalError {
    fn from(e: AuthError) -> Self {
        PortalError::Auth(e)
    }
}
impl From<SessionError> for PortalError {
    fn from(e: SessionError) -> Self {
        PortalError::Session(e)
    }
}
impl From<VfsError> for PortalError {
    fn from(e: VfsError) -> Self {
        PortalError::Vfs(e)
    }
}
impl From<SchedError> for PortalError {
    fn from(e: SchedError) -> Self {
        PortalError::Sched(e)
    }
}
impl From<ExecutorError> for PortalError {
    fn from(e: ExecutorError) -> Self {
        PortalError::Exec(e)
    }
}
