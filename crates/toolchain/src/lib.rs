//! # toolchain — the portal's compile/execute pipeline
//!
//! The portal provides "limited platform processing, compilation and
//! execution of C, C++, and Java source code" (§I). In this reproduction the
//! executable substrate is [`minilang`] (see DESIGN.md: gcc/javac → minilang
//! substitution); this crate supplies everything around the compiler that
//! the paper's backend had:
//!
//! * [`language`] — source-language detection (C / C++ / Java / MiniLang)
//!   with clear diagnostics when a source needs porting to the teaching
//!   dialect;
//! * [`artifact`] — the compiled-artifact store, content-addressed;
//! * [`cache`] — the compile cache: byte-identical `(language, flags,
//!   source)` inputs skip the compiler, so a class resubmitting starter
//!   code compiles it once;
//! * [`pipeline`] — `CompileRequest` objects: read source from the [`vfs`],
//!   compile, collect gcc-style diagnostics, store the artifact;
//! * [`exec`] — `Executor` objects: run an artifact on a VM wired to the
//!   user's vfs home, with stdin injection and captured streams.

pub mod artifact;
pub mod cache;
pub mod exec;
pub mod language;
pub mod pipeline;

pub use artifact::{Artifact, ArtifactId, ArtifactStore};
pub use cache::{CacheStats, CompileCache};
pub use exec::{ExecReport, Executor, ExecutorError, VfsIo};
pub use language::LanguageId;
pub use pipeline::{
    CompileReport, CompileRequest, Diagnostic, PreparedCompile, Severity, SourceSnapshot,
};
