//! Source-language detection.
//!
//! The portal's upload form accepts C, C++, Java and MiniLang sources; only
//! MiniLang compiles to the cluster's executable format (the VM). The other
//! three are recognized — by extension first, content heuristics second —
//! so the pipeline can say *what* it found and how to port it, instead of
//! producing a wall of parse errors.

use std::fmt;

/// The languages the portal recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LanguageId {
    /// C (`.c`).
    C,
    /// C++ (`.cpp`, `.cc`, `.cxx`).
    Cpp,
    /// Java (`.java`).
    Java,
    /// The teaching language this portal executes (`.mini`, `.ml`).
    MiniLang,
    /// Unknown / plain data.
    Unknown,
}

impl fmt::Display for LanguageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LanguageId::C => "C",
            LanguageId::Cpp => "C++",
            LanguageId::Java => "Java",
            LanguageId::MiniLang => "MiniLang",
            LanguageId::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

impl LanguageId {
    /// Detect from a filename extension.
    pub fn from_extension(path: &str) -> LanguageId {
        let ext = path.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
        match ext.as_str() {
            "c" => LanguageId::C,
            "cpp" | "cc" | "cxx" | "hpp" => LanguageId::Cpp,
            "java" => LanguageId::Java,
            "mini" | "ml" => LanguageId::MiniLang,
            _ => LanguageId::Unknown,
        }
    }

    /// Content sniffing for extensionless uploads.
    pub fn sniff(source: &str) -> LanguageId {
        let head: String = source.lines().take(50).collect::<Vec<_>>().join("\n");
        if head.contains("#include") {
            return if head.contains("std::")
                || head.contains("iostream")
                || head.contains("template<")
            {
                LanguageId::Cpp
            } else {
                LanguageId::C
            };
        }
        if head.contains("public class")
            || head.contains("public static void main")
            || head.contains("System.out")
        {
            return LanguageId::Java;
        }
        if head.contains("fn ")
            && (head.contains("var ") || head.contains("println(") || head.contains("spawn "))
        {
            return LanguageId::MiniLang;
        }
        LanguageId::Unknown
    }

    /// Extension first, content as fallback.
    pub fn detect(path: &str, source: &str) -> LanguageId {
        match LanguageId::from_extension(path) {
            LanguageId::Unknown => LanguageId::sniff(source),
            known => known,
        }
    }

    /// Can this portal execute the language directly?
    pub fn executable_here(self) -> bool {
        self == LanguageId::MiniLang
    }

    /// One-line porting hint shown by the pipeline for non-executable
    /// languages.
    pub fn porting_hint(self) -> Option<&'static str> {
        match self {
            LanguageId::C | LanguageId::Cpp => Some(
                "this cluster executes the MiniLang teaching dialect: replace type declarations with `var`, \
                 pthread_create/join with `spawn`/`join`, pthread_mutex with `mutex()`/`lock`/`unlock`",
            ),
            LanguageId::Java => Some(
                "this cluster executes the MiniLang teaching dialect: replace class boilerplate with free \
                 functions, `synchronized` with `lock`/`unlock`, Thread.start with `spawn`",
            ),
            LanguageId::MiniLang | LanguageId::Unknown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_detection() {
        assert_eq!(LanguageId::from_extension("prog.c"), LanguageId::C);
        assert_eq!(LanguageId::from_extension("prog.cpp"), LanguageId::Cpp);
        assert_eq!(LanguageId::from_extension("Main.java"), LanguageId::Java);
        assert_eq!(
            LanguageId::from_extension("lab1.mini"),
            LanguageId::MiniLang
        );
        assert_eq!(LanguageId::from_extension("README"), LanguageId::Unknown);
    }

    #[test]
    fn content_sniffing() {
        assert_eq!(
            LanguageId::sniff("#include <stdio.h>\nint main(){}"),
            LanguageId::C
        );
        assert_eq!(
            LanguageId::sniff("#include <iostream>\nint main(){std::cout;}"),
            LanguageId::Cpp
        );
        assert_eq!(
            LanguageId::sniff("public class Main { public static void main(String[] a){} }"),
            LanguageId::Java
        );
        assert_eq!(
            LanguageId::sniff("fn main() { println(1); }"),
            LanguageId::MiniLang
        );
        assert_eq!(LanguageId::sniff("hello world"), LanguageId::Unknown);
    }

    #[test]
    fn detect_prefers_extension() {
        assert_eq!(
            LanguageId::detect("x.java", "#include <stdio.h>"),
            LanguageId::Java
        );
        assert_eq!(
            LanguageId::detect("noext", "fn main() { var x = 1; }"),
            LanguageId::MiniLang
        );
    }

    #[test]
    fn executability_and_hints() {
        assert!(LanguageId::MiniLang.executable_here());
        assert!(!LanguageId::Java.executable_here());
        assert!(LanguageId::C.porting_hint().unwrap().contains("pthread"));
        assert!(LanguageId::Java
            .porting_hint()
            .unwrap()
            .contains("synchronized"));
        assert!(LanguageId::MiniLang.porting_hint().is_none());
    }
}
