//! The compiled-artifact store: content-addressed compiled programs.

use crate::language::LanguageId;
use minilang::Program;
use std::collections::HashMap;
use std::fmt;

/// Content-addressed artifact identifier (FNV-1a over the source text plus
/// the owner, rendered as 16 hex chars).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactId(String);

impl ArtifactId {
    /// Derive the id for `owner`'s compilation of `source`.
    pub fn derive(owner: &str, source: &str) -> ArtifactId {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in owner
            .as_bytes()
            .iter()
            .chain([0u8].iter())
            .chain(source.as_bytes())
        {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        ArtifactId(format!("{h:016x}"))
    }

    /// The id text (what job specs carry as `executable`).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Wrap an id string received from a client.
    pub fn from_string(s: impl Into<String>) -> ArtifactId {
        ArtifactId(s.into())
    }
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A stored compiled program plus its provenance.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identifier.
    pub id: ArtifactId,
    /// Owning user.
    pub owner: String,
    /// Source path it was compiled from.
    pub source_path: String,
    /// Detected language of the source.
    pub language: LanguageId,
    /// The compiled program.
    pub program: Program,
    /// Monotonic compile counter (store-local logical time).
    pub compiled_at: u64,
}

/// The artifact store.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    items: HashMap<ArtifactId, Artifact>,
    clock: u64,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Insert (or replace) an artifact, stamping `compiled_at`.
    pub fn put(
        &mut self,
        owner: &str,
        source_path: &str,
        language: LanguageId,
        source: &str,
        program: Program,
    ) -> ArtifactId {
        self.clock += 1;
        let id = ArtifactId::derive(owner, source);
        self.items.insert(
            id.clone(),
            Artifact {
                id: id.clone(),
                owner: owner.to_string(),
                source_path: source_path.to_string(),
                language,
                program,
                compiled_at: self.clock,
            },
        );
        id
    }

    /// Fetch an artifact.
    pub fn get(&self, id: &ArtifactId) -> Option<&Artifact> {
        self.items.get(id)
    }

    /// All of a user's artifacts, most recent first.
    pub fn by_owner(&self, owner: &str) -> Vec<&Artifact> {
        let mut v: Vec<&Artifact> = self.items.values().filter(|a| a.owner == owner).collect();
        v.sort_by_key(|a| std::cmp::Reverse(a.compiled_at));
        v
    }

    /// Remove an artifact; true if it existed.
    pub fn remove(&mut self, id: &ArtifactId) -> bool {
        self.items.remove(id).is_some()
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog() -> Program {
        minilang::compile("fn main() { }").unwrap()
    }

    #[test]
    fn ids_are_content_addressed() {
        let a = ArtifactId::derive("alice", "fn main() {}");
        let b = ArtifactId::derive("alice", "fn main() {}");
        let c = ArtifactId::derive("alice", "fn main() { var x = 1; }");
        let d = ArtifactId::derive("bob", "fn main() {}");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.as_str().len(), 16);
    }

    #[test]
    fn put_get_roundtrip() {
        let mut store = ArtifactStore::new();
        let id = store.put(
            "alice",
            "/home/alice/a.mini",
            LanguageId::MiniLang,
            "src",
            prog(),
        );
        let art = store.get(&id).unwrap();
        assert_eq!(art.owner, "alice");
        assert_eq!(art.language, LanguageId::MiniLang);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn recompile_replaces_same_id() {
        let mut store = ArtifactStore::new();
        let id1 = store.put("alice", "/a.mini", LanguageId::MiniLang, "same", prog());
        let id2 = store.put("alice", "/a.mini", LanguageId::MiniLang, "same", prog());
        assert_eq!(id1, id2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&id1).unwrap().compiled_at, 2);
    }

    #[test]
    fn by_owner_recency_order() {
        let mut store = ArtifactStore::new();
        store.put("alice", "/1.mini", LanguageId::MiniLang, "one", prog());
        store.put("bob", "/2.mini", LanguageId::MiniLang, "two", prog());
        store.put("alice", "/3.mini", LanguageId::MiniLang, "three", prog());
        let mine = store.by_owner("alice");
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].source_path, "/3.mini");
    }

    #[test]
    fn remove_artifact() {
        let mut store = ArtifactStore::new();
        let id = store.put("alice", "/a.mini", LanguageId::MiniLang, "x", prog());
        assert!(store.remove(&id));
        assert!(!store.remove(&id));
        assert!(store.is_empty());
    }
}
