//! Content-addressed compile cache: `(language, flags, source)` → compiled
//! [`Program`], with LRU eviction and hit/miss/eviction accounting.
//!
//! The key hashes the *content*, not the owner: thirty students submitting
//! the same starter code share one compilation. The per-owner
//! [`crate::ArtifactId`] namespace is unaffected — the cache sits in front
//! of the compiler, not the artifact store.

use crate::language::LanguageId;
use minilang::Program;
use std::collections::HashMap;

/// Cache key: FNV-1a over language, flags, and source, with field
/// separators so `("a", "b")` and `("ab", "")` cannot collide trivially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Derive the key for a compilation input.
    pub fn derive(language: LanguageId, flags: &str, source: &str) -> CacheKey {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes.iter().chain([0u8].iter()) {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(format!("{language:?}").as_bytes());
        eat(flags.as_bytes());
        eat(source.as_bytes());
        CacheKey(h)
    }
}

#[derive(Debug)]
struct CacheEntry {
    /// Full input kept to reject hash collisions on lookup.
    language: LanguageId,
    flags: String,
    source: String,
    program: Program,
    /// Logical LRU stamp (bumped on every hit).
    used_at: u64,
}

/// Running totals, cheap to copy into metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a program.
    pub hits: u64,
    /// Lookups that found nothing (or a colliding key).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio over all lookups (0 when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The compile cache. Owned by the portal (one per deployment), consulted
/// by [`crate::CompileRequest::run_cached`].
#[derive(Debug)]
pub struct CompileCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CompileCache {
    /// A cache holding at most `capacity` compiled programs. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a compilation. A hit requires the stored input to match
    /// byte-for-byte — a hash collision counts as a miss and will be
    /// replaced on the next insert.
    pub fn lookup(&mut self, language: LanguageId, flags: &str, source: &str) -> Option<Program> {
        let key = CacheKey::derive(language, flags, source);
        match self.entries.get_mut(&key) {
            Some(e) if e.language == language && e.flags == flags && e.source == source => {
                self.clock += 1;
                e.used_at = self.clock;
                self.hits += 1;
                Some(e.program.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a successful compilation, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, language: LanguageId, flags: &str, source: &str, program: Program) {
        if self.capacity == 0 {
            return;
        }
        let key = CacheKey::derive(language, flags, source);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used_at)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            CacheEntry {
                language,
                flags: flags.to_string(),
                source: source.to_string(),
                program,
                used_at: self.clock,
            },
        );
    }

    /// Current totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Register (describe + zero-value) every `ccp_compile_cache_*` family so
/// a metrics scrape shows them before the first compilation.
pub fn register_cache_metrics(obs: &obs::Obs) {
    let m = &obs.metrics;
    m.describe("ccp_compile_cache_hits_total", "compile cache hits");
    m.describe("ccp_compile_cache_misses_total", "compile cache misses");
    m.describe(
        "ccp_compile_cache_evictions_total",
        "compile cache LRU evictions",
    );
    m.describe("ccp_compile_cache_entries", "live compile cache entries");
    m.counter("ccp_compile_cache_hits_total", &[]);
    m.counter("ccp_compile_cache_misses_total", &[]);
    m.counter("ccp_compile_cache_evictions_total", &[]);
    m.gauge("ccp_compile_cache_entries", &[]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        minilang::compile(src).unwrap()
    }

    #[test]
    fn same_input_hits_and_returns_identical_program() {
        let mut cache = CompileCache::new(8);
        let src = "fn main() { println(1); }";
        assert!(cache.lookup(LanguageId::MiniLang, "", src).is_none());
        cache.insert(LanguageId::MiniLang, "", src, prog(src));
        let hit = cache.lookup(LanguageId::MiniLang, "", src).expect("hit");
        assert_eq!(format!("{hit:?}"), format!("{:?}", prog(src)));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn one_byte_change_misses() {
        let mut cache = CompileCache::new(8);
        let src = "fn main() { println(1); }";
        cache.insert(LanguageId::MiniLang, "", src, prog(src));
        let changed = "fn main() { println(2); }";
        assert!(cache.lookup(LanguageId::MiniLang, "", changed).is_none());
        assert!(cache.lookup(LanguageId::MiniLang, "-O2", src).is_none());
    }

    #[test]
    fn lru_eviction_counts_and_bounds_size() {
        let mut cache = CompileCache::new(2);
        let sources = [
            "fn main() { return 1; }",
            "fn main() { return 2; }",
            "fn main() { return 3; }",
        ];
        for s in &sources {
            cache.insert(LanguageId::MiniLang, "", s, prog(s));
        }
        let st = cache.stats();
        assert_eq!(st.entries, 2);
        assert_eq!(st.evictions, 1);
        // The first insert was least recently used: it is the victim.
        assert!(cache.lookup(LanguageId::MiniLang, "", sources[0]).is_none());
        assert!(cache.lookup(LanguageId::MiniLang, "", sources[2]).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CompileCache::new(0);
        let src = "fn main() { }";
        cache.insert(LanguageId::MiniLang, "", src, prog(src));
        assert!(cache.lookup(LanguageId::MiniLang, "", src).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn hit_rate_tracks_resubmissions() {
        let mut cache = CompileCache::new(8);
        let src = "fn main() { println(7); }";
        for round in 0..10 {
            if cache.lookup(LanguageId::MiniLang, "", src).is_none() {
                assert_eq!(round, 0, "only the first round may miss");
                cache.insert(LanguageId::MiniLang, "", src, prog(src));
            }
        }
        assert!(cache.stats().hit_rate() >= 0.9);
    }
}
