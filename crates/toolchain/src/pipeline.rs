//! The compile pipeline: "it takes the needed information from a user, it
//! then creates a compilation ... object" (§II). A [`CompileRequest`] reads
//! the source from the user's vfs home, detects the language, compiles (if
//! executable here) and stores the artifact.

use crate::artifact::{ArtifactId, ArtifactStore};
use crate::cache::CompileCache;
use crate::language::LanguageId;
use minilang::LangError;
use std::fmt;
use vfs::Vfs;

/// Diagnostic severity, gcc-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fatal problem; no artifact produced.
    Error,
    /// Advisory.
    Warning,
    /// Informational (e.g. porting hints).
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One compiler diagnostic line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// File the diagnostic refers to.
    pub file: String,
    /// 1-based line (0 = whole file).
    pub line: u32,
    /// 1-based column (0 = unknown).
    pub col: u32,
    /// Message text.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}:{}: {}: {}",
                self.file, self.line, self.col, self.severity, self.message
            )
        } else {
            write!(f, "{}: {}: {}", self.file, self.severity, self.message)
        }
    }
}

/// A compilation request (the paper's "compilation object").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// Acting user (vfs permissions apply).
    pub user: String,
    /// Path of the source file inside the vfs.
    pub source_path: String,
    /// Compiler flags; part of the compile-cache key, so requests with
    /// different flags never share a cached program.
    pub flags: String,
}

/// What a compilation produced.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// The request this answers.
    pub request: CompileRequest,
    /// Detected language.
    pub language: LanguageId,
    /// gcc-style diagnostics (errors, warnings, notes).
    pub diagnostics: Vec<Diagnostic>,
    /// The stored artifact on success.
    pub artifact: Option<ArtifactId>,
}

impl CompileReport {
    /// Did the compilation produce an artifact?
    pub fn success(&self) -> bool {
        self.artifact.is_some()
    }

    /// Render diagnostics the way the portal's compile pane shows them.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if self.success() {
            out.push_str(&format!(
                "compiled {} -> artifact {}\n",
                self.request.source_path,
                self.artifact.as_ref().expect("checked")
            ));
        }
        out
    }
}

impl CompileRequest {
    /// A request for `user`'s file at `source_path` with no flags.
    pub fn new(user: &str, source_path: &str) -> CompileRequest {
        CompileRequest {
            user: user.to_string(),
            source_path: source_path.to_string(),
            flags: String::new(),
        }
    }

    /// The same request with compiler flags set.
    pub fn with_flags(mut self, flags: &str) -> CompileRequest {
        self.flags = flags.to_string();
        self
    }

    /// Like [`CompileRequest::run`], recording a
    /// `ccp_toolchain_compiles_total{result}` counter and a wall-clock
    /// `ccp_toolchain_compile_duration_us` histogram into `obs`.
    pub fn run_observed(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        obs: &obs::Obs,
    ) -> CompileReport {
        let started = std::time::Instant::now();
        let report = self.run(fs, store);
        let result = if report.success() { "ok" } else { "error" };
        obs.metrics
            .describe("ccp_toolchain_compiles_total", "compilations by result");
        obs.metrics.describe(
            "ccp_toolchain_compile_duration_us",
            "compilation wall-clock latency",
        );
        obs.metrics
            .counter("ccp_toolchain_compiles_total", &[("result", result)])
            .inc();
        obs.metrics
            .histogram(
                "ccp_toolchain_compile_duration_us",
                &[],
                obs::DURATION_US_BOUNDS,
            )
            .record(started.elapsed().as_micros() as u64);
        report
    }

    /// [`CompileRequest::run_cached`] with telemetry: the
    /// `ccp_toolchain_*` compile metrics plus the
    /// `ccp_compile_cache_{hits,misses,evictions}_total` counters and the
    /// `ccp_compile_cache_entries` gauge.
    pub fn run_cached_observed(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        cache: &mut CompileCache,
        obs: &obs::Obs,
    ) -> CompileReport {
        let before = cache.stats();
        let started = std::time::Instant::now();
        let report = self.run_inner(fs, store, Some(cache));
        let after = cache.stats();
        let result = if report.success() { "ok" } else { "error" };
        let m = &obs.metrics;
        m.describe("ccp_toolchain_compiles_total", "compilations by result");
        m.describe(
            "ccp_toolchain_compile_duration_us",
            "compilation wall-clock latency",
        );
        m.counter("ccp_toolchain_compiles_total", &[("result", result)])
            .inc();
        m.histogram(
            "ccp_toolchain_compile_duration_us",
            &[],
            obs::DURATION_US_BOUNDS,
        )
        .record(started.elapsed().as_micros() as u64);
        crate::cache::register_cache_metrics(obs);
        m.counter("ccp_compile_cache_hits_total", &[])
            .add(after.hits - before.hits);
        m.counter("ccp_compile_cache_misses_total", &[])
            .add(after.misses - before.misses);
        m.counter("ccp_compile_cache_evictions_total", &[])
            .add(after.evictions - before.evictions);
        m.gauge("ccp_compile_cache_entries", &[])
            .set(after.entries as i64);
        report
    }

    /// Like [`CompileRequest::run`], but consult (and fill) the compile
    /// cache: a byte-identical `(language, flags, source)` skips the
    /// compiler and stores the cached program as this user's artifact.
    pub fn run_cached(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        cache: &mut CompileCache,
    ) -> CompileReport {
        self.run_inner(fs, store, Some(cache))
    }

    /// Execute the request against the filesystem and artifact store.
    pub fn run(&self, fs: &Vfs, store: &mut ArtifactStore) -> CompileReport {
        self.run_inner(fs, store, None)
    }

    fn run_inner(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        mut cache: Option<&mut CompileCache>,
    ) -> CompileReport {
        let mut diagnostics = Vec::new();
        let bytes = match fs.read(&self.user, &self.source_path) {
            Ok(b) => b,
            Err(e) => {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    file: self.source_path.clone(),
                    line: 0,
                    col: 0,
                    message: e.to_string(),
                });
                return CompileReport {
                    request: self.clone(),
                    language: LanguageId::Unknown,
                    diagnostics,
                    artifact: None,
                };
            }
        };
        let source = match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    file: self.source_path.clone(),
                    line: 0,
                    col: 0,
                    message: "source is not valid UTF-8".to_string(),
                });
                return CompileReport {
                    request: self.clone(),
                    language: LanguageId::Unknown,
                    diagnostics,
                    artifact: None,
                };
            }
        };
        let language = LanguageId::detect(&self.source_path, &source);
        if !language.executable_here() {
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                file: self.source_path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "{language} sources are recognized but not executable on this cluster"
                ),
            });
            if let Some(hint) = language.porting_hint() {
                diagnostics.push(Diagnostic {
                    severity: Severity::Note,
                    file: self.source_path.clone(),
                    line: 0,
                    col: 0,
                    message: hint.to_string(),
                });
            }
            return CompileReport {
                request: self.clone(),
                language,
                diagnostics,
                artifact: None,
            };
        }
        if let Some(c) = cache.as_deref_mut() {
            if let Some(program) = c.lookup(language, &self.flags, &source) {
                let id = store.put(&self.user, &self.source_path, language, &source, program);
                return CompileReport {
                    request: self.clone(),
                    language,
                    diagnostics,
                    artifact: Some(id),
                };
            }
        }
        match minilang::compile(&source) {
            Ok(program) => {
                if let Some(c) = cache {
                    c.insert(language, &self.flags, &source, program.clone());
                }
                let id = store.put(&self.user, &self.source_path, language, &source, program);
                CompileReport {
                    request: self.clone(),
                    language,
                    diagnostics,
                    artifact: Some(id),
                }
            }
            Err(err) => {
                let (line, col, message) = match &err {
                    LangError::Lex(e) => (e.pos.line, e.pos.col, e.message.clone()),
                    LangError::Parse(e) => (e.pos.line, e.pos.col, e.message.clone()),
                    LangError::Compile(e) => (e.pos.line, e.pos.col, e.message.clone()),
                    LangError::Runtime(e) => (0, 0, e.to_string()),
                };
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    file: self.source_path.clone(),
                    line,
                    col,
                    message,
                });
                CompileReport {
                    request: self.clone(),
                    language,
                    diagnostics,
                    artifact: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vfs, ArtifactStore) {
        let mut fs = Vfs::new();
        fs.add_user("alice", 1 << 20).unwrap();
        (fs, ArtifactStore::new())
    }

    #[test]
    fn good_source_compiles_to_artifact() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/hello.mini",
            b"fn main() { println(42); }".to_vec(),
        )
        .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/hello.mini").run(&fs, &mut store);
        assert!(report.success(), "{:?}", report.diagnostics);
        assert_eq!(report.language, LanguageId::MiniLang);
        assert!(report.render().contains("artifact"));
        assert!(store.get(report.artifact.as_ref().unwrap()).is_some());
    }

    #[test]
    fn syntax_error_positions_reported() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/bad.mini",
            b"fn main() {\n  var = 3;\n}".to_vec(),
        )
        .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/bad.mini").run(&fs, &mut store);
        assert!(!report.success());
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.line, 2);
        assert!(d.to_string().contains("bad.mini:2:"));
    }

    #[test]
    fn missing_file_reported() {
        let (fs, mut store) = setup();
        let report = CompileRequest::new("alice", "/home/alice/nope.mini").run(&fs, &mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("no such file"));
    }

    #[test]
    fn permission_denied_reported() {
        let (mut fs, mut store) = setup();
        fs.add_user("bob", 1 << 20).unwrap();
        fs.write("alice", "/home/alice/x.mini", b"fn main() { }".to_vec())
            .unwrap();
        let report = CompileRequest::new("bob", "/home/alice/x.mini").run(&fs, &mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("permission denied"));
    }

    #[test]
    fn java_source_gets_porting_note() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/Main.java",
            b"public class Main { public static void main(String[] a) {} }".to_vec(),
        )
        .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/Main.java").run(&fs, &mut store);
        assert!(!report.success());
        assert_eq!(report.language, LanguageId::Java);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Note));
        assert!(report.render().contains("synchronized"));
    }

    #[test]
    fn non_utf8_rejected() {
        let (mut fs, mut store) = setup();
        fs.write("alice", "/home/alice/bin.mini", vec![0xFF, 0xFE, 0x00])
            .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/bin.mini").run(&fs, &mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("UTF-8"));
    }
}
