//! The compile pipeline: "it takes the needed information from a user, it
//! then creates a compilation ... object" (§II). A [`CompileRequest`] reads
//! the source from the user's vfs home, detects the language, compiles (if
//! executable here) and stores the artifact.

use crate::artifact::{ArtifactId, ArtifactStore};
use crate::cache::CompileCache;
use crate::language::LanguageId;
use minilang::{LangError, Program};
use parking_lot::Mutex;
use std::fmt;
use vfs::Vfs;

/// Diagnostic severity, gcc-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fatal problem; no artifact produced.
    Error,
    /// Advisory.
    Warning,
    /// Informational (e.g. porting hints).
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One compiler diagnostic line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// File the diagnostic refers to.
    pub file: String,
    /// 1-based line (0 = whole file).
    pub line: u32,
    /// 1-based column (0 = unknown).
    pub col: u32,
    /// Message text.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}:{}: {}: {}",
                self.file, self.line, self.col, self.severity, self.message
            )
        } else {
            write!(f, "{}: {}: {}", self.file, self.severity, self.message)
        }
    }
}

/// A compilation request (the paper's "compilation object").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// Acting user (vfs permissions apply).
    pub user: String,
    /// Path of the source file inside the vfs.
    pub source_path: String,
    /// Compiler flags; part of the compile-cache key, so requests with
    /// different flags never share a cached program.
    pub flags: String,
}

/// What a compilation produced.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// The request this answers.
    pub request: CompileRequest,
    /// Detected language.
    pub language: LanguageId,
    /// gcc-style diagnostics (errors, warnings, notes).
    pub diagnostics: Vec<Diagnostic>,
    /// The stored artifact on success.
    pub artifact: Option<ArtifactId>,
}

impl CompileReport {
    /// Did the compilation produce an artifact?
    pub fn success(&self) -> bool {
        self.artifact.is_some()
    }

    /// Render diagnostics the way the portal's compile pane shows them.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if self.success() {
            out.push_str(&format!(
                "compiled {} -> artifact {}\n",
                self.request.source_path,
                self.artifact.as_ref().expect("checked")
            ));
        }
        out
    }
}

impl CompileRequest {
    /// A request for `user`'s file at `source_path` with no flags.
    pub fn new(user: &str, source_path: &str) -> CompileRequest {
        CompileRequest {
            user: user.to_string(),
            source_path: source_path.to_string(),
            flags: String::new(),
        }
    }

    /// The same request with compiler flags set.
    pub fn with_flags(mut self, flags: &str) -> CompileRequest {
        self.flags = flags.to_string();
        self
    }

    /// Like [`CompileRequest::run`], recording a
    /// `ccp_toolchain_compiles_total{result}` counter and a wall-clock
    /// `ccp_toolchain_compile_duration_us` histogram into `obs`.
    pub fn run_observed(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        obs: &obs::Obs,
    ) -> CompileReport {
        self.snapshot(fs)
            .compile_with(CacheRef::None)
            .commit_observed(store, obs)
    }

    /// [`CompileRequest::run_cached`] with telemetry: the
    /// `ccp_toolchain_*` compile metrics plus the
    /// `ccp_compile_cache_{hits,misses,evictions}_total` counters and the
    /// `ccp_compile_cache_entries` gauge.
    pub fn run_cached_observed(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        cache: &mut CompileCache,
        obs: &obs::Obs,
    ) -> CompileReport {
        self.snapshot(fs)
            .compile_with(CacheRef::Exclusive(cache))
            .commit_observed(store, obs)
    }

    /// Like [`CompileRequest::run`], but consult (and fill) the compile
    /// cache: a byte-identical `(language, flags, source)` skips the
    /// compiler and stores the cached program as this user's artifact.
    pub fn run_cached(
        &self,
        fs: &Vfs,
        store: &mut ArtifactStore,
        cache: &mut CompileCache,
    ) -> CompileReport {
        self.snapshot(fs)
            .compile_with(CacheRef::Exclusive(cache))
            .commit(store)
    }

    /// Execute the request against the filesystem and artifact store.
    pub fn run(&self, fs: &Vfs, store: &mut ArtifactStore) -> CompileReport {
        self.snapshot(fs).compile_with(CacheRef::None).commit(store)
    }

    /// Phase 1 of the split pipeline: capture the source out of the vfs.
    /// The caller holds whatever lock guards the filesystem only for this
    /// call; the returned snapshot owns everything the compile phase
    /// needs, so phases 2 and 3 can run under different (or no) locks.
    pub fn snapshot(&self, fs: &Vfs) -> SourceSnapshot {
        let fail = |message: String| Diagnostic {
            severity: Severity::Error,
            file: self.source_path.clone(),
            line: 0,
            col: 0,
            message,
        };
        let fetched = match fs.read(&self.user, &self.source_path) {
            Ok(bytes) => {
                String::from_utf8(bytes).map_err(|_| fail("source is not valid UTF-8".to_string()))
            }
            Err(e) => Err(fail(e.to_string())),
        };
        SourceSnapshot {
            request: self.clone(),
            fetched,
        }
    }
}

/// Which compile cache phase 2 consults: none, an exclusively borrowed
/// one (the single-owner legacy paths), or a shared mutex-guarded one
/// (concurrent compiles; the lock is held per lookup/insert, never across
/// the compiler).
enum CacheRef<'a> {
    None,
    Exclusive(&'a mut CompileCache),
    Shared(&'a Mutex<CompileCache>),
}

/// Cache accounting for one compilation: stat deltas plus the live entry
/// count, captured under the same guard as the operations themselves so
/// concurrent compiles cannot misattribute each other's hits.
#[derive(Debug, Clone, Copy, Default)]
struct CacheEvents {
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: usize,
    used: bool,
}

impl CacheEvents {
    fn track<T>(&mut self, c: &mut CompileCache, op: impl FnOnce(&mut CompileCache) -> T) -> T {
        let before = c.stats();
        let out = op(c);
        let after = c.stats();
        self.hits += after.hits - before.hits;
        self.misses += after.misses - before.misses;
        self.evictions += after.evictions - before.evictions;
        self.entries = after.entries;
        self.used = true;
        out
    }
}

impl CacheRef<'_> {
    fn with<T>(
        &mut self,
        events: &mut CacheEvents,
        op: impl FnOnce(&mut CompileCache) -> T,
    ) -> Option<T> {
        match self {
            CacheRef::None => None,
            CacheRef::Exclusive(c) => Some(events.track(c, op)),
            CacheRef::Shared(m) => Some(events.track(&mut m.lock(), op)),
        }
    }
}

/// A source file captured out of the vfs (phase 1's output). Owns the
/// bytes, so compiling it requires no filesystem access.
pub struct SourceSnapshot {
    request: CompileRequest,
    fetched: Result<String, Diagnostic>,
}

impl SourceSnapshot {
    /// Phase 2: detect the language and compile. The shared cache — when
    /// given — is locked per lookup/insert only; the compiler itself runs
    /// with no locks held.
    pub fn compile(self, cache: Option<&Mutex<CompileCache>>) -> PreparedCompile {
        self.compile_with(match cache {
            Some(m) => CacheRef::Shared(m),
            None => CacheRef::None,
        })
    }

    fn compile_with(self, cache: CacheRef<'_>) -> PreparedCompile {
        let started = std::time::Instant::now();
        let mut events = CacheEvents::default();
        let (request, language, diagnostics, compiled) = self.compile_parts(cache, &mut events);
        PreparedCompile {
            request,
            language,
            diagnostics,
            compiled,
            cache_events: events,
            compile_us: started.elapsed().as_micros() as u64,
        }
    }

    #[allow(clippy::type_complexity)]
    fn compile_parts(
        self,
        mut cache: CacheRef<'_>,
        events: &mut CacheEvents,
    ) -> (
        CompileRequest,
        LanguageId,
        Vec<Diagnostic>,
        Option<(String, Program)>,
    ) {
        let request = self.request;
        let mut diagnostics = Vec::new();
        let source = match self.fetched {
            Ok(s) => s,
            Err(d) => {
                diagnostics.push(d);
                return (request, LanguageId::Unknown, diagnostics, None);
            }
        };
        let language = LanguageId::detect(&request.source_path, &source);
        if !language.executable_here() {
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                file: request.source_path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "{language} sources are recognized but not executable on this cluster"
                ),
            });
            if let Some(hint) = language.porting_hint() {
                diagnostics.push(Diagnostic {
                    severity: Severity::Note,
                    file: request.source_path.clone(),
                    line: 0,
                    col: 0,
                    message: hint.to_string(),
                });
            }
            return (request, language, diagnostics, None);
        }
        if let Some(Some(program)) =
            cache.with(events, |c| c.lookup(language, &request.flags, &source))
        {
            return (request, language, diagnostics, Some((source, program)));
        }
        match minilang::compile(&source) {
            Ok(program) => {
                cache.with(events, |c| {
                    c.insert(language, &request.flags, &source, program.clone())
                });
                (request, language, diagnostics, Some((source, program)))
            }
            Err(err) => {
                let (line, col, message) = match &err {
                    LangError::Lex(e) => (e.pos.line, e.pos.col, e.message.clone()),
                    LangError::Parse(e) => (e.pos.line, e.pos.col, e.message.clone()),
                    LangError::Compile(e) => (e.pos.line, e.pos.col, e.message.clone()),
                    LangError::Runtime(e) => (0, 0, e.to_string()),
                };
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    file: request.source_path.clone(),
                    line,
                    col,
                    message,
                });
                (request, language, diagnostics, None)
            }
        }
    }
}

/// A finished compilation not yet recorded in an [`ArtifactStore`] —
/// phase 2's output, phase 3's input. Carries the compiled program (and
/// the source the store's content-addressed id derives from), so the
/// commit is a map insert, not a compile.
pub struct PreparedCompile {
    request: CompileRequest,
    language: LanguageId,
    diagnostics: Vec<Diagnostic>,
    compiled: Option<(String, Program)>,
    cache_events: CacheEvents,
    compile_us: u64,
}

impl PreparedCompile {
    /// Did the compilation produce a program?
    pub fn success(&self) -> bool {
        self.compiled.is_some()
    }

    /// Phase 3: record the artifact. The caller holds whatever lock
    /// guards the store only for this call.
    pub fn commit(self, store: &mut ArtifactStore) -> CompileReport {
        let PreparedCompile {
            request,
            language,
            diagnostics,
            compiled,
            ..
        } = self;
        let artifact = compiled.map(|(source, program)| {
            store.put(
                &request.user,
                &request.source_path,
                language,
                &source,
                program,
            )
        });
        CompileReport {
            request,
            language,
            diagnostics,
            artifact,
        }
    }

    /// [`PreparedCompile::commit`] plus telemetry: the `ccp_toolchain_*`
    /// compile series and — when a cache was consulted — the
    /// `ccp_compile_cache_*` series.
    pub fn commit_observed(self, store: &mut ArtifactStore, obs: &obs::Obs) -> CompileReport {
        let result = if self.success() { "ok" } else { "error" };
        let events = self.cache_events;
        let m = &obs.metrics;
        m.describe("ccp_toolchain_compiles_total", "compilations by result");
        m.describe(
            "ccp_toolchain_compile_duration_us",
            "compilation wall-clock latency",
        );
        m.counter("ccp_toolchain_compiles_total", &[("result", result)])
            .inc();
        m.histogram(
            "ccp_toolchain_compile_duration_us",
            &[],
            obs::DURATION_US_BOUNDS,
        )
        .record(self.compile_us);
        if events.used {
            crate::cache::register_cache_metrics(obs);
            m.counter("ccp_compile_cache_hits_total", &[])
                .add(events.hits);
            m.counter("ccp_compile_cache_misses_total", &[])
                .add(events.misses);
            m.counter("ccp_compile_cache_evictions_total", &[])
                .add(events.evictions);
            m.gauge("ccp_compile_cache_entries", &[])
                .set(events.entries as i64);
        }
        self.commit(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vfs, ArtifactStore) {
        let mut fs = Vfs::new();
        fs.add_user("alice", 1 << 20).unwrap();
        (fs, ArtifactStore::new())
    }

    #[test]
    fn good_source_compiles_to_artifact() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/hello.mini",
            b"fn main() { println(42); }".to_vec(),
        )
        .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/hello.mini").run(&fs, &mut store);
        assert!(report.success(), "{:?}", report.diagnostics);
        assert_eq!(report.language, LanguageId::MiniLang);
        assert!(report.render().contains("artifact"));
        assert!(store.get(report.artifact.as_ref().unwrap()).is_some());
    }

    #[test]
    fn syntax_error_positions_reported() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/bad.mini",
            b"fn main() {\n  var = 3;\n}".to_vec(),
        )
        .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/bad.mini").run(&fs, &mut store);
        assert!(!report.success());
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.line, 2);
        assert!(d.to_string().contains("bad.mini:2:"));
    }

    #[test]
    fn missing_file_reported() {
        let (fs, mut store) = setup();
        let report = CompileRequest::new("alice", "/home/alice/nope.mini").run(&fs, &mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("no such file"));
    }

    #[test]
    fn permission_denied_reported() {
        let (mut fs, mut store) = setup();
        fs.add_user("bob", 1 << 20).unwrap();
        fs.write("alice", "/home/alice/x.mini", b"fn main() { }".to_vec())
            .unwrap();
        let report = CompileRequest::new("bob", "/home/alice/x.mini").run(&fs, &mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("permission denied"));
    }

    #[test]
    fn java_source_gets_porting_note() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/Main.java",
            b"public class Main { public static void main(String[] a) {} }".to_vec(),
        )
        .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/Main.java").run(&fs, &mut store);
        assert!(!report.success());
        assert_eq!(report.language, LanguageId::Java);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Note));
        assert!(report.render().contains("synchronized"));
    }

    #[test]
    fn split_phases_match_run_and_share_a_mutexed_cache() {
        let (mut fs, mut store) = setup();
        fs.write(
            "alice",
            "/home/alice/p.mini",
            b"fn main() { println(9); }".to_vec(),
        )
        .unwrap();
        let cache = Mutex::new(CompileCache::new(8));
        let req = CompileRequest::new("alice", "/home/alice/p.mini");
        // Snapshot, then drop all filesystem access before compiling.
        let snap = req.snapshot(&fs);
        drop(fs);
        let prepared = snap.compile(Some(&cache));
        assert!(prepared.success());
        assert_eq!(store.len(), 0, "nothing stored before commit");
        let report = prepared.commit(&mut store);
        assert!(report.success());
        assert_eq!(store.len(), 1);
        let st = cache.lock().stats();
        assert_eq!((st.hits, st.misses, st.entries), (0, 1, 1));
    }

    #[test]
    fn snapshot_carries_read_errors_through_commit() {
        let (fs, mut store) = setup();
        let report = CompileRequest::new("alice", "/home/alice/nope.mini")
            .snapshot(&fs)
            .compile(None)
            .commit(&mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("no such file"));
        assert!(store.is_empty());
    }

    #[test]
    fn non_utf8_rejected() {
        let (mut fs, mut store) = setup();
        fs.write("alice", "/home/alice/bin.mini", vec![0xFF, 0xFE, 0x00])
            .unwrap();
        let report = CompileRequest::new("alice", "/home/alice/bin.mini").run(&fs, &mut store);
        assert!(!report.success());
        assert!(report.diagnostics[0].message.contains("UTF-8"));
    }
}
