//! Executor objects: run a compiled artifact on the VM, with file I/O wired
//! into the user's vfs home and stdin lines available to the program.
//!
//! This is the paper's "executor object, which in turn upon success contacts
//! a job distributor" (§II) — the distributor half lives in `ccp-core`,
//! which submits these executions as jobs; this module is the part that
//! actually runs bytecode.

use crate::artifact::{Artifact, ArtifactId, ArtifactStore};
use minilang::{ExecOutcome, HostIo, RuntimeError, SchedPolicy, Vm, VmConfig};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use vfs::Vfs;

/// A [`HostIo`] backed by the shared [`Vfs`], acting as a specific user.
/// Relative paths resolve against the user's home directory.
pub struct VfsIo {
    fs: Arc<Mutex<Vfs>>,
    user: String,
}

impl VfsIo {
    /// Wrap the shared filesystem for `user`.
    pub fn new(fs: Arc<Mutex<Vfs>>, user: &str) -> VfsIo {
        VfsIo {
            fs,
            user: user.to_string(),
        }
    }

    fn resolve(&self, path: &str) -> String {
        if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/home/{}/{}", self.user, path)
        }
    }
}

impl HostIo for VfsIo {
    fn read_file(&mut self, path: &str) -> Result<String, String> {
        let full = self.resolve(path);
        let bytes = self
            .fs
            .lock()
            .read(&self.user, &full)
            .map_err(|e| e.to_string())?;
        String::from_utf8(bytes).map_err(|_| format!("{full}: not UTF-8"))
    }

    fn write_file(&mut self, path: &str, content: &str) -> Result<(), String> {
        let full = self.resolve(path);
        self.fs
            .lock()
            .write(&self.user, &full, content.as_bytes().to_vec())
            .map_err(|e| e.to_string())
    }

    fn append_file(&mut self, path: &str, content: &str) -> Result<(), String> {
        let full = self.resolve(path);
        self.fs
            .lock()
            .append(&self.user, &full, content.as_bytes())
            .map_err(|e| e.to_string())
    }
}

/// Executor failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// Artifact id not found in the store.
    NoSuchArtifact(String),
    /// The program failed at runtime (deadlock, type error, ...).
    Runtime(RuntimeError),
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::NoSuchArtifact(id) => write!(f, "no such artifact {id}"),
            ExecutorError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ExecutorError {}

/// What an execution produced (success or failure, streams always captured).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// The artifact that ran.
    pub artifact: ArtifactId,
    /// VM outcome on success.
    pub outcome: Option<ExecOutcome>,
    /// Runtime error on failure.
    pub error: Option<RuntimeError>,
}

impl ExecReport {
    /// Did the run complete without a runtime error?
    pub fn success(&self) -> bool {
        self.outcome.is_some()
    }
}

/// Runs artifacts. One executor per execution request.
pub struct Executor {
    /// Scheduler seed (exposed so graders can sweep seeds).
    pub seed: u64,
    /// Scheduling policy for the VM's green threads.
    pub policy: SchedPolicy,
    /// Instruction budget.
    pub max_instructions: u64,
}

impl Default for Executor {
    fn default() -> Self {
        let d = VmConfig::default();
        Executor {
            seed: 0,
            policy: d.policy,
            max_instructions: d.max_instructions,
        }
    }
}

impl Executor {
    /// An executor with a specific seed.
    pub fn with_seed(seed: u64) -> Executor {
        Executor {
            seed,
            ..Executor::default()
        }
    }

    /// Run `artifact` as `user`, with filesystem access through `fs`.
    pub fn run(
        &self,
        store: &ArtifactStore,
        artifact: &ArtifactId,
        fs: Arc<Mutex<Vfs>>,
        user: &str,
    ) -> Result<ExecReport, ExecutorError> {
        self.run_with_stdin(store, artifact, fs, user, &[])
    }

    /// Like [`Executor::run_with_stdin`], recording execution telemetry into
    /// `obs`: an `ccp_toolchain_execs_total{result}` counter, a wall-clock
    /// duration histogram, and a (deterministic) instruction-count histogram.
    pub fn run_with_stdin_observed(
        &self,
        store: &ArtifactStore,
        artifact: &ArtifactId,
        fs: Arc<Mutex<Vfs>>,
        user: &str,
        stdin: &[String],
        obs: &obs::Obs,
    ) -> Result<ExecReport, ExecutorError> {
        let started = std::time::Instant::now();
        let result = self.run_with_stdin(store, artifact, fs, user, stdin);
        let label = match &result {
            Ok(report) if report.success() => "ok",
            Ok(_) => "runtime_error",
            Err(_) => "error",
        };
        let executed = result
            .as_ref()
            .ok()
            .and_then(|r| r.outcome.as_ref())
            .map(|o| o.executed);
        record_exec_metrics(obs, label, started.elapsed().as_micros() as u64, executed);
        result
    }

    /// Like [`Executor::run`], queuing `stdin` lines for `read_line()`.
    pub fn run_with_stdin(
        &self,
        store: &ArtifactStore,
        artifact: &ArtifactId,
        fs: Arc<Mutex<Vfs>>,
        user: &str,
        stdin: &[String],
    ) -> Result<ExecReport, ExecutorError> {
        let art = store
            .get(artifact)
            .ok_or_else(|| ExecutorError::NoSuchArtifact(artifact.to_string()))?;
        Ok(self.run_artifact_with_stdin(art, fs, user, stdin))
    }

    /// Like [`Executor::run_with_stdin`], but for an already-fetched
    /// [`Artifact`]: a caller that cloned the artifact under one lock can
    /// execute it later with no store access at all (the program rides in
    /// the artifact). Infallible — the VM's own failures land in the
    /// report.
    pub fn run_artifact_with_stdin(
        &self,
        art: &Artifact,
        fs: Arc<Mutex<Vfs>>,
        user: &str,
        stdin: &[String],
    ) -> ExecReport {
        let config = VmConfig {
            seed: self.seed,
            policy: self.policy,
            max_instructions: self.max_instructions,
            ..VmConfig::default()
        };
        let io = VfsIo::new(fs, user);
        let mut vm = Vm::with_io(art.program.clone(), config, Box::new(io));
        for line in stdin {
            vm.push_stdin(line.clone());
        }
        match vm.run() {
            Ok(outcome) => ExecReport {
                artifact: art.id.clone(),
                outcome: Some(outcome),
                error: None,
            },
            Err(e) => ExecReport {
                artifact: art.id.clone(),
                outcome: None,
                error: Some(e),
            },
        }
    }

    /// [`Executor::run_artifact_with_stdin`] with the same telemetry as
    /// [`Executor::run_with_stdin_observed`].
    pub fn run_artifact_with_stdin_observed(
        &self,
        art: &Artifact,
        fs: Arc<Mutex<Vfs>>,
        user: &str,
        stdin: &[String],
        obs: &obs::Obs,
    ) -> ExecReport {
        let started = std::time::Instant::now();
        let report = self.run_artifact_with_stdin(art, fs, user, stdin);
        let label = if report.success() {
            "ok"
        } else {
            "runtime_error"
        };
        let executed = report.outcome.as_ref().map(|o| o.executed);
        record_exec_metrics(obs, label, started.elapsed().as_micros() as u64, executed);
        report
    }
}

/// Shared recorder for the `ccp_toolchain_exec*` families.
fn record_exec_metrics(
    obs: &obs::Obs,
    label: &'static str,
    duration_us: u64,
    executed: Option<u64>,
) {
    let m = &obs.metrics;
    m.describe("ccp_toolchain_execs_total", "artifact executions by result");
    m.describe(
        "ccp_toolchain_exec_duration_us",
        "execution wall-clock latency",
    );
    m.describe(
        "ccp_toolchain_exec_instructions",
        "VM instructions per execution",
    );
    m.counter("ccp_toolchain_execs_total", &[("result", label)])
        .inc();
    m.histogram(
        "ccp_toolchain_exec_duration_us",
        &[],
        obs::DURATION_US_BOUNDS,
    )
    .record(duration_us);
    if let Some(executed) = executed {
        m.histogram(
            "ccp_toolchain_exec_instructions",
            &[],
            obs::INSTRUCTION_BOUNDS,
        )
        .record(executed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::LanguageId;

    fn setup(src: &str) -> (Arc<Mutex<Vfs>>, ArtifactStore, ArtifactId) {
        let mut fs = Vfs::new();
        fs.add_user("alice", 1 << 20).unwrap();
        let mut store = ArtifactStore::new();
        let program = minilang::compile(src).unwrap();
        let id = store.put(
            "alice",
            "/home/alice/p.mini",
            LanguageId::MiniLang,
            src,
            program,
        );
        (Arc::new(Mutex::new(fs)), store, id)
    }

    #[test]
    fn run_captures_stdout() {
        let (fs, store, id) = setup("fn main() { println(\"hi\"); }");
        let report = Executor::default().run(&store, &id, fs, "alice").unwrap();
        assert!(report.success());
        assert_eq!(report.outcome.unwrap().stdout, "hi\n");
    }

    #[test]
    fn relative_paths_resolve_to_home() {
        let (fs, store, id) = setup(r#"fn main() { write_file("out.txt", "data"); }"#);
        let report = Executor::default()
            .run(&store, &id, Arc::clone(&fs), "alice")
            .unwrap();
        assert!(report.success(), "{:?}", report.error);
        let content = fs.lock().read("alice", "/home/alice/out.txt").unwrap();
        assert_eq!(content, b"data");
    }

    #[test]
    fn permission_errors_surface_as_io() {
        let (fs, store, id) = setup(r#"fn main() { write_file("/home/root-owned.txt", "x"); }"#);
        let report = Executor::default().run(&store, &id, fs, "alice").unwrap();
        assert!(!report.success());
        assert!(matches!(report.error, Some(RuntimeError::Io(_))));
    }

    #[test]
    fn missing_artifact_error() {
        let (fs, store, _) = setup("fn main() { }");
        let err = Executor::default()
            .run(&store, &ArtifactId::from_string("feedbeef"), fs, "alice")
            .unwrap_err();
        assert!(matches!(err, ExecutorError::NoSuchArtifact(_)));
    }

    #[test]
    fn deadlock_reported_not_hung() {
        let (fs, store, id) = setup("fn main() { var m = mutex(); lock(m); lock(m); }");
        let report = Executor::default().run(&store, &id, fs, "alice").unwrap();
        assert!(matches!(report.error, Some(RuntimeError::Deadlock { .. })));
    }

    #[test]
    fn seed_controls_scheduling() {
        let src = r#"
            var counter = 0;
            fn w() { for (var i = 0; i < 100; i = i + 1) { counter = counter + 1; } }
            fn main() { var a = spawn w(); var b = spawn w(); join(a); join(b); return counter; }
        "#;
        let (fs, store, id) = setup(src);
        let r1 = Executor::with_seed(3)
            .run(&store, &id, Arc::clone(&fs), "alice")
            .unwrap();
        let r2 = Executor::with_seed(3)
            .run(&store, &id, fs, "alice")
            .unwrap();
        assert_eq!(
            r1.outcome.unwrap().main_result,
            r2.outcome.unwrap().main_result
        );
    }
}
