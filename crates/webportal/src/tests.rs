//! In-process HTTP tests: synthetic requests through the full route table.

use crate::app::{build_router, dispatch, App};
use auth::Role;
use ccp_core::{Portal, PortalConfig};
use cluster::ClusterSpec;
use httpd::json::Json;
use httpd::{Method, Response, Router, Status};
use std::sync::Arc;

fn test_app() -> (Arc<App>, Router) {
    let config = PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        ..PortalConfig::default()
    };
    let mut portal = Portal::new(config);
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let app = App::new(portal);
    let router = build_router(Arc::clone(&app));
    (app, router)
}

fn login(router: &Router, user: &str, password: &str) -> String {
    let body = format!(r#"{{"user":"{user}","password":"{password}"}}"#);
    let resp = dispatch(router, Method::Post, "/api/login", body.as_bytes(), None);
    assert_eq!(resp.status, Status::OK, "{}", resp.body_str());
    Json::parse(resp.body_str())
        .unwrap()
        .get("token")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

fn make_student(app: &Arc<App>, router: &Router, name: &str) -> String {
    let admin = login(router, "admin", "super-secret9");
    let body = format!(r#"{{"name":"{name}","password":"password99","role":"student"}}"#);
    let resp = dispatch(
        router,
        Method::Post,
        "/api/admin/users",
        body.as_bytes(),
        Some(&admin),
    );
    assert_eq!(resp.status, Status::CREATED, "{}", resp.body_str());
    let _ = app;
    login(router, name, "password99")
}

fn json_of(resp: &Response) -> Json {
    Json::parse(resp.body_str()).unwrap_or(Json::Null)
}

#[test]
fn login_issues_cookie_and_token() {
    let (_, router) = test_app();
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"admin","password":"super-secret9"}"#,
        None,
    );
    assert_eq!(resp.status, Status::OK);
    assert!(resp.header("set-cookie").unwrap().starts_with("sid="));
    assert!(json_of(&resp).get("token").is_some());
}

#[test]
fn bad_credentials_401() {
    let (_, router) = test_app();
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"admin","password":"nope-nope"}"#,
        None,
    );
    assert_eq!(resp.status, Status::UNAUTHORIZED);
}

#[test]
fn missing_session_401() {
    let (_, router) = test_app();
    for path in ["/api/whoami", "/api/files", "/api/quota", "/api/jobs"] {
        let resp = dispatch(&router, Method::Get, path, b"", None);
        assert_eq!(resp.status, Status::UNAUTHORIZED, "{path}");
    }
}

#[test]
fn whoami_reports_role() {
    let (_, router) = test_app();
    let tok = login(&router, "admin", "super-secret9");
    let resp = dispatch(&router, Method::Get, "/api/whoami", b"", Some(&tok));
    let j = json_of(&resp);
    assert_eq!(j.get("user").unwrap().as_str(), Some("admin"));
    assert_eq!(j.get("role").unwrap().as_str(), Some("admin"));
}

#[test]
fn logout_invalidates_session() {
    let (_, router) = test_app();
    let tok = login(&router, "admin", "super-secret9");
    dispatch(&router, Method::Post, "/api/logout", b"", Some(&tok));
    let resp = dispatch(&router, Method::Get, "/api/whoami", b"", Some(&tok));
    assert_eq!(resp.status, Status::UNAUTHORIZED);
}

#[test]
fn student_cannot_create_users() {
    let (app, router) = test_app();
    let student = make_student(&app, &router, "alice");
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/users",
        br#"{"name":"eve","password":"password99"}"#,
        Some(&student),
    );
    assert_eq!(resp.status, Status::FORBIDDEN);
}

#[test]
fn file_upload_download_listing() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/file?path=hello.txt",
        b"contents!",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::CREATED);
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/file?path=hello.txt",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.body, b"contents!");
    let resp = dispatch(&router, Method::Get, "/api/files", b"", Some(&tok));
    let rows = json_of(&resp);
    let arr = rows.as_arr().unwrap();
    assert_eq!(arr.len(), 1);
    assert_eq!(arr[0].get("name").unwrap().as_str(), Some("hello.txt"));
    assert_eq!(arr[0].get("size").unwrap().as_num(), Some(9.0));
}

#[test]
fn file_operations_mv_cp_rm_mkdir() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/mkdir?path=src",
        b"",
        Some(&tok),
    );
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=src/a.txt",
        b"A",
        Some(&tok),
    );
    let r = dispatch(
        &router,
        Method::Post,
        "/api/cp?from=src/a.txt&to=src/b.txt",
        b"",
        Some(&tok),
    );
    assert_eq!(r.status, Status::OK, "{}", r.body_str());
    let r = dispatch(
        &router,
        Method::Post,
        "/api/mv?from=src/b.txt&to=c.txt",
        b"",
        Some(&tok),
    );
    assert_eq!(r.status, Status::OK);
    let r = dispatch(&router, Method::Post, "/api/rm?path=src", b"", Some(&tok));
    assert_eq!(r.status, Status::OK);
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/file?path=c.txt",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.body, b"A");
}

#[test]
fn reading_missing_file_404() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/file?path=ghost.txt",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::NOT_FOUND);
}

#[test]
fn escape_attempt_403() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/file?path=%2Fhome%2Fadmin%2Fx",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::FORBIDDEN);
}

#[test]
fn compile_and_run_through_api() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=p.mini",
        b"fn main() { println(\"web run\"); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=p.mini",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::OK, "{}", resp.body_str());
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/run?artifact={artifact}"),
        b"",
        Some(&tok),
    );
    let j = json_of(&resp);
    assert_eq!(j.get("success").unwrap().as_bool(), Some(true));
    assert_eq!(j.get("stdout").unwrap().as_str(), Some("web run\n"));
}

#[test]
fn compile_failure_returns_diagnostics() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=bad.mini",
        b"fn main() { oops",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=bad.mini",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::BAD_REQUEST);
    let j = json_of(&resp);
    assert_eq!(j.get("success").unwrap().as_bool(), Some(false));
    assert!(!j.get("diagnostics").unwrap().as_arr().unwrap().is_empty());
}

#[test]
fn job_submission_and_monitoring() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=j.mini",
        b"fn main() { println(\"batch\"); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=j.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let body = format!(r#"{{"artifact":"{artifact}","cores":1,"estimated_ticks":3}}"#);
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/jobs",
        body.as_bytes(),
        Some(&tok),
    );
    assert_eq!(resp.status, Status::CREATED);
    let id = json_of(&resp).get("job").unwrap().as_num().unwrap() as u64;
    // Pump the distributor.
    for _ in 0..10 {
        dispatch(&router, Method::Post, "/api/tick", b"", Some(&tok));
    }
    let resp = dispatch(
        &router,
        Method::Get,
        &format!("/api/jobs/{id}"),
        b"",
        Some(&tok),
    );
    let j = json_of(&resp);
    assert!(
        j.get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("completed"),
        "{}",
        resp.body_str()
    );
    assert_eq!(j.get("stdout").unwrap().as_str(), Some("batch\n"));
}

#[test]
fn status_endpoint_public() {
    let (_, router) = test_app();
    let resp = dispatch(&router, Method::Get, "/api/status", b"", None);
    let j = json_of(&resp);
    assert_eq!(j.get("total_cores").unwrap().as_num(), Some(16.0));
    assert_eq!(j.get("free_cores").unwrap().as_num(), Some(16.0));
}

#[test]
fn html_pages_render() {
    let (app, router) = test_app();
    let resp = dispatch(&router, Method::Get, "/", b"", None);
    assert!(resp.body_str().contains("Cluster Computing Portal"));
    assert!(resp.body_str().contains("16 of 16 cores free"));
    // File browser redirects anonymous users home.
    let resp = dispatch(&router, Method::Get, "/files", b"", None);
    assert_eq!(resp.status, Status::FOUND);
    // Signed in: renders the listing.
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=visible.txt",
        b"x",
        Some(&tok),
    );
    let resp = dispatch(&router, Method::Get, "/files", b"", Some(&tok));
    assert!(
        resp.body_str().contains("visible.txt"),
        "{}",
        resp.body_str()
    );
    let resp = dispatch(&router, Method::Get, "/jobs", b"", Some(&tok));
    assert!(resp.body_str().contains("Job Monitor"));
}

#[test]
fn run_with_stdin_lines() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=s.mini",
        b"fn main() { println(read_line(), \"-\", read_line()); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=s.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/run?artifact={artifact}"),
        b"first\nsecond",
        Some(&tok),
    );
    assert_eq!(
        json_of(&resp).get("stdout").unwrap().as_str(),
        Some("first-second\n")
    );
}

#[test]
fn deadlocked_run_reports_error_json() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=d.mini",
        b"fn main() { var m = mutex(); lock(m); lock(m); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=d.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/run?artifact={artifact}"),
        b"",
        Some(&tok),
    );
    let j = json_of(&resp);
    assert_eq!(j.get("success").unwrap().as_bool(), Some(false));
    assert!(j
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("deadlock"));
}

#[test]
fn quota_endpoint() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=f",
        b"12345",
        Some(&tok),
    );
    let resp = dispatch(&router, Method::Get, "/api/quota", b"", Some(&tok));
    assert_eq!(json_of(&resp).get("used").unwrap().as_num(), Some(5.0));
}

#[test]
fn serves_over_real_tcp() {
    use std::io::{Read, Write};
    let (app, _router) = test_app();
    let handle = crate::app::serve(app, "127.0.0.1:0").unwrap();
    let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
    s.write_all(b"GET /api/status HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    assert!(out.contains("total_cores"));
    handle.shutdown();
}

#[test]
fn artifacts_listing() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=one.mini",
        b"fn main() { }",
        Some(&tok),
    );
    dispatch(
        &router,
        Method::Post,
        "/api/compile?path=one.mini",
        b"",
        Some(&tok),
    );
    let resp = dispatch(&router, Method::Get, "/api/artifacts", b"", Some(&tok));
    let arr = json_of(&resp);
    assert_eq!(arr.as_arr().unwrap().len(), 1);
    assert!(arr.as_arr().unwrap()[0]
        .get("source")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("one.mini"));
}

#[test]
fn role_parsing_in_user_creation() {
    let (_, router) = test_app();
    let admin = login(&router, "admin", "super-secret9");
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/users",
        br#"{"name":"prof","password":"password99","role":"faculty"}"#,
        Some(&admin),
    );
    assert_eq!(resp.status, Status::CREATED);
    let prof = login(&router, "prof", "password99");
    let resp = dispatch(&router, Method::Get, "/api/whoami", b"", Some(&prof));
    assert_eq!(
        json_of(&resp).get("role").unwrap().as_str(),
        Some("faculty")
    );
    let _ = Role::Faculty;
}

#[test]
fn multipart_multi_file_upload() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    let body = "--BNDRY\r\nContent-Disposition: form-data; name=\"f\"; filename=\"one.mini\"\r\n\r\nfn main() { }\r\n--BNDRY\r\nContent-Disposition: form-data; name=\"f\"; filename=\"two.txt\"\r\n\r\nnotes here\r\n--BNDRY--\r\n".to_string();
    let mut req =
        httpd::Request::synthetic(Method::Post, "/api/upload?dir=uploads", body.as_bytes())
            .with_header("cookie", &format!("sid={tok}"))
            .with_header("content-type", "multipart/form-data; boundary=BNDRY");
    // Directory must exist first.
    dispatch(
        &router,
        Method::Post,
        "/api/mkdir?path=uploads",
        b"",
        Some(&tok),
    );
    let resp = router.dispatch(&mut req);
    assert_eq!(resp.status, Status::CREATED, "{}", resp.body_str());
    let saved = json_of(&resp);
    assert_eq!(saved.get("saved").unwrap().as_arr().unwrap().len(), 2);
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/file?path=uploads/two.txt",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.body, b"notes here");
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/file?path=uploads/one.mini",
        b"",
        Some(&tok),
    );
    assert_eq!(resp.body, b"fn main() { }");
}

#[test]
fn health_endpoint_and_admin_drain_cycle() {
    let (_, router) = test_app();
    // Health is public and starts clean.
    let resp = dispatch(&router, Method::Get, "/api/health", b"", None);
    let j = json_of(&resp);
    assert_eq!(j.get("degraded").unwrap().as_bool(), Some(false));
    assert_eq!(j.get("nodes").unwrap().as_arr().unwrap().len(), 4);
    // Drain one node as admin: health flips to degraded.
    let admin = login(&router, "admin", "super-secret9");
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/drain?segment=0&slot=1",
        b"",
        Some(&admin),
    );
    assert_eq!(resp.status, Status::OK, "{}", resp.body_str());
    let j = json_of(&dispatch(&router, Method::Get, "/api/health", b"", None));
    assert_eq!(j.get("degraded").unwrap().as_bool(), Some(true));
    let draining: Vec<_> = j
        .get("nodes")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|n| n.get("health").unwrap().as_str() == Some("draining"))
        .collect();
    assert_eq!(draining.len(), 1);
    assert_eq!(draining[0].get("slot").unwrap().as_num(), Some(1.0));
    // Undrain restores full health.
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/undrain?segment=0&slot=1",
        b"",
        Some(&admin),
    );
    assert_eq!(resp.status, Status::OK);
    let j = json_of(&dispatch(&router, Method::Get, "/api/health", b"", None));
    assert_eq!(j.get("degraded").unwrap().as_bool(), Some(false));
}

#[test]
fn drain_requires_admin_role_and_params() {
    let (app, router) = test_app();
    let student = make_student(&app, &router, "alice");
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/drain?segment=0&slot=0",
        b"",
        Some(&student),
    );
    assert_eq!(resp.status, Status::FORBIDDEN);
    let admin = login(&router, "admin", "super-secret9");
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/drain?segment=0",
        b"",
        Some(&admin),
    );
    assert_eq!(resp.status, Status::BAD_REQUEST);
}

#[test]
fn job_json_reports_attempts_and_failure_cause() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=r.mini",
        b"fn main() { println(\"x\"); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=r.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let body = format!(r#"{{"artifact":"{artifact}","cores":1,"estimated_ticks":50}}"#);
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/jobs",
        body.as_bytes(),
        Some(&tok),
    );
    let id = json_of(&resp).get("job").unwrap().as_num().unwrap() as u64;
    dispatch(&router, Method::Post, "/api/tick", b"", Some(&tok));
    let j = json_of(&dispatch(
        &router,
        Method::Get,
        &format!("/api/jobs/{id}"),
        b"",
        Some(&tok),
    ));
    assert_eq!(j.get("attempt").unwrap().as_num(), Some(1.0));
    assert_eq!(j.get("last_failure"), Some(&Json::Null));
    // Stretch the job's true runtime (the trivial program finished in one
    // tick) so the node failure lands while it is still running, then kill
    // every node: the job is requeued and the monitor shows the cause.
    app.write(|portal| {
        let sched = portal.scheduler_mut();
        sched.job_mut(sched::JobId(id)).unwrap().spec.actual_ticks = 100;
        for node in sched.cluster().slave_ids() {
            sched
                .cluster_mut()
                .set_health(node, cluster::NodeHealth::Down)
                .unwrap();
        }
    });
    dispatch(&router, Method::Post, "/api/tick", b"", Some(&tok));
    let j = json_of(&dispatch(
        &router,
        Method::Get,
        &format!("/api/jobs/{id}"),
        b"",
        Some(&tok),
    ));
    assert!(
        j.get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("requeued"),
        "{j:?}"
    );
    assert_eq!(
        j.get("last_failure").unwrap().as_str(),
        Some("node went down")
    );
    let j = json_of(&dispatch(&router, Method::Get, "/api/health", b"", None));
    assert_eq!(j.get("degraded").unwrap().as_bool(), Some(true));
}

#[test]
fn metrics_endpoint_covers_httpd_sched_and_cluster() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    // Drive one job through so sched/toolchain counters move.
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=m.mini",
        b"fn main() { println(\"m\"); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=m.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let body = format!(r#"{{"artifact":"{artifact}","cores":1,"estimated_ticks":3}}"#);
    dispatch(
        &router,
        Method::Post,
        "/api/jobs",
        body.as_bytes(),
        Some(&tok),
    );
    for _ in 0..10 {
        dispatch(&router, Method::Post, "/api/tick", b"", Some(&tok));
    }
    // Public, Prometheus-typed, and covering every layer.
    let mut req = httpd::Request::synthetic(Method::Get, "/api/metrics", b"");
    let resp = router.dispatch(&mut req);
    assert_eq!(resp.status, Status::OK);
    assert!(resp
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = resp.body_str().to_string();
    for needle in [
        // httpd: counter, histogram, gauge (requests routed through dispatch).
        "# TYPE ccp_httpd_requests_total counter",
        "ccp_httpd_requests_total{method=\"POST\",route=\"/api/tick\",status=\"200\"} 10",
        "ccp_httpd_request_duration_us_bucket",
        "# TYPE ccp_httpd_inflight gauge",
        // sched: counter, gauge, histogram.
        "ccp_sched_jobs_submitted_total 1",
        "ccp_sched_jobs_completed_total 1",
        "ccp_sched_queue_depth 0",
        "ccp_sched_job_run_ticks_count 1",
        // cluster: counter, gauge, histogram.
        "ccp_cluster_allocations_total 1",
        "ccp_cluster_nodes{state=\"up\"} 4",
        "ccp_cluster_alloc_cores_count 1",
        // toolchain rides along.
        "ccp_toolchain_compiles_total{result=\"ok\"} 1",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn trace_endpoint_returns_gated_timeline() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=t.mini",
        b"fn main() { println(\"t\"); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=t.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let body = format!(r#"{{"artifact":"{artifact}","cores":1,"estimated_ticks":3}}"#);
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/jobs",
        body.as_bytes(),
        Some(&tok),
    );
    let id = json_of(&resp).get("job").unwrap().as_num().unwrap() as u64;
    for _ in 0..10 {
        dispatch(&router, Method::Post, "/api/tick", b"", Some(&tok));
    }
    // Owner gets the ordered timeline ending in the terminal event.
    let resp = dispatch(
        &router,
        Method::Get,
        &format!("/api/trace/{id}"),
        b"",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::OK, "{}", resp.body_str());
    let j = json_of(&resp);
    let events: Vec<String> = j
        .get("timeline")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|e| e.get("event").unwrap().as_str().unwrap().to_string())
        .collect();
    // Traced submission: the http.request root and the cluster/exec
    // children now carry the job attr too, so the timeline shows the
    // whole causal chain, not just the scheduler lifecycle.
    assert_eq!(
        events,
        vec![
            "http.request",
            "job.submitted",
            "job.queued",
            "cluster.alloc",
            "job.dispatched",
            "exec.run",
            "job.completed"
        ]
    );
    // The span tree view: one connected tree rooted at http.request.
    let root = j.get("root").unwrap().as_num().unwrap() as u64;
    let spans = j.get("spans").unwrap().as_arr().unwrap();
    assert!(!spans.is_empty());
    assert_eq!(spans[0].get("id").unwrap().as_num().unwrap() as u64, root);
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("http.request"));
    for s in &spans[1..] {
        assert!(
            s.get("parent").unwrap().as_num().is_some(),
            "disconnected span"
        );
    }
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name")?.as_str())
        .collect();
    for needle in [
        "job.submitted",
        "cluster.alloc",
        "exec.run",
        "job.completed",
    ] {
        assert!(names.contains(&needle), "missing {needle} in {names:?}");
    }
    assert_eq!(j.get("truncated").unwrap().as_num(), Some(0.0));
    let job_state = json_of(&dispatch(
        &router,
        Method::Get,
        &format!("/api/jobs/{id}"),
        b"",
        Some(&tok),
    ));
    assert!(job_state
        .get("state")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("completed"));
    // Another student is refused; anonymous is 401.
    let eve = make_student(&app, &router, "eve");
    let resp = dispatch(
        &router,
        Method::Get,
        &format!("/api/trace/{id}"),
        b"",
        Some(&eve),
    );
    assert_eq!(resp.status, Status::FORBIDDEN);
    let resp = dispatch(&router, Method::Get, &format!("/api/trace/{id}"), b"", None);
    assert_eq!(resp.status, Status::UNAUTHORIZED);
}

#[test]
fn admin_events_endpoint_gated() {
    let (app, router) = test_app();
    let student = make_student(&app, &router, "alice");
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/admin/events",
        b"",
        Some(&student),
    );
    assert_eq!(resp.status, Status::FORBIDDEN);
    let admin = login(&router, "admin", "super-secret9");
    let resp = dispatch(
        &router,
        Method::Get,
        "/api/admin/events?limit=5",
        b"",
        Some(&admin),
    );
    assert_eq!(resp.status, Status::OK);
    let j = json_of(&resp);
    assert!(j.get("events").unwrap().as_arr().is_some());
    assert_eq!(j.get("truncated").unwrap().as_num(), Some(0.0));
}

#[test]
fn health_reports_headline_gauges() {
    let (_, router) = test_app();
    let j = json_of(&dispatch(&router, Method::Get, "/api/health", b"", None));
    assert_eq!(j.get("nodes_up").unwrap().as_num(), Some(4.0));
    assert_eq!(j.get("nodes_draining").unwrap().as_num(), Some(0.0));
    assert_eq!(j.get("nodes_down").unwrap().as_num(), Some(0.0));
    assert_eq!(j.get("queue_depth").unwrap().as_num(), Some(0.0));
    assert_eq!(j.get("jobs_running").unwrap().as_num(), Some(0.0));
    // The flag and the counts derive from one snapshot: drain a node and
    // both move together.
    let admin = login(&router, "admin", "super-secret9");
    dispatch(
        &router,
        Method::Post,
        "/api/admin/drain?segment=1&slot=0",
        b"",
        Some(&admin),
    );
    let j = json_of(&dispatch(&router, Method::Get, "/api/health", b"", None));
    assert_eq!(j.get("degraded").unwrap().as_bool(), Some(true));
    assert_eq!(j.get("nodes_up").unwrap().as_num(), Some(3.0));
    assert_eq!(j.get("nodes_draining").unwrap().as_num(), Some(1.0));
}

#[test]
fn upload_without_multipart_content_type_rejected() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    let resp = dispatch(&router, Method::Post, "/api/upload", b"data", Some(&tok));
    assert_eq!(resp.status, Status::BAD_REQUEST);
}

#[test]
fn analyze_endpoint_reports_race_with_repro() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    // Two threads bump an unlocked global: the checker must call the race.
    let racy = b"var n = 0;\nfn w() { n = n + 1; }\nfn main() { var a = spawn w(); var b = spawn w(); join(a); join(b); }";
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=racy.mini",
        racy,
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=racy.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/analyze?artifact={artifact}"),
        b"",
        Some(&tok),
    );
    assert_eq!(resp.status, Status::OK, "{}", resp.body_str());
    let j = json_of(&resp);
    assert_eq!(j.get("verdict").unwrap().as_str(), Some("race"));
    assert!(j
        .get("detail")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("data race"));
    assert!(
        !j.get("repro").unwrap().as_arr().unwrap().is_empty(),
        "race carries a repro"
    );
    assert!(j.get("schedules").unwrap().as_num().unwrap() >= 1.0);
    // A failing analysis never certifies exhaustiveness.
    assert_eq!(
        j.get("exhaustive_within_bound").unwrap().as_bool(),
        Some(false)
    );
    // The analysis shows up in the metrics exposition, including the eager
    // DPOR reduction families.
    let resp = dispatch(&router, Method::Get, "/api/metrics", b"", None);
    assert!(
        resp.body_str()
            .contains("ccp_checker_analyses_total{verdict=\"race\"} 1"),
        "checker counters missing from /api/metrics"
    );
    for family in [
        "ccp_checker_dpor_backtracks_total",
        "ccp_checker_dpor_pruned_siblings_total",
        "ccp_checker_dpor_bound_pruned_total",
    ] {
        assert!(
            resp.body_str().contains(family),
            "{family} missing from /api/metrics"
        );
    }
}

#[test]
fn analyze_endpoint_clean_program_and_ownership() {
    let (app, router) = test_app();
    let tok = make_student(&app, &router, "alice");
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=ok.mini",
        b"fn main() { println(1); }",
        Some(&tok),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=ok.mini",
        b"",
        Some(&tok),
    );
    let artifact = json_of(&resp)
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/analyze?artifact={artifact}&budget=8"),
        b"",
        Some(&tok),
    );
    let j = json_of(&resp);
    assert_eq!(j.get("verdict").unwrap().as_str(), Some("clean"));
    assert_eq!(j.get("complete").unwrap().as_bool(), Some(true));
    // No preemption bound is configured, so the bounded certificate must
    // coincide with `complete`.
    assert_eq!(
        j.get("exhaustive_within_bound").unwrap().as_bool(),
        Some(true)
    );
    assert!(j.get("repro").unwrap().as_arr().unwrap().is_empty());
    // Another student may not analyze alice's artifact.
    let other = make_student(&app, &router, "bob");
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/analyze?artifact={artifact}"),
        b"",
        Some(&other),
    );
    assert_eq!(resp.status, Status::FORBIDDEN);
    // No session at all: 401.
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/analyze?artifact={artifact}"),
        b"",
        None,
    );
    assert_eq!(resp.status, Status::UNAUTHORIZED);
}
