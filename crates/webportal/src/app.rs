//! The HTTP application: routes → portal calls → JSON/HTML responses.

use auth::{Role, Token};
use ccp_core::{Portal, PortalError};
use httpd::forms::{multipart_boundary, parse_cookies, parse_multipart, parse_query};
use httpd::json::{quantile_json, Json};
use httpd::{Method, Request, Response, Router, Server, ServerConfig, ServerHandle, Status};
use parking_lot::RwLock;
use sched::JobId;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// How routes lock the portal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Fine-grained (the default): read-mostly routes share an `RwLock`
    /// read guard, mutations take the write guard, and the heavy
    /// operations (compile / run / analyze) run their expensive middle
    /// phase with no portal lock held at all.
    Fine,
    /// One big lock: every route takes the exclusive guard and heavy
    /// operations run to completion under it. This reproduces the old
    /// `Mutex<Portal>` behaviour faithfully — it exists as the baseline
    /// the contention bench measures [`LockMode::Fine`] against.
    Global,
}

/// The shared application state.
pub struct App {
    /// The portal backend. Reads share; mutations and ticks are exclusive.
    pub portal: RwLock<Portal>,
    mode: LockMode,
    /// The portal's telemetry domain, `Arc`-shared out so metrics render
    /// and route instrumentation never need a portal lock.
    obs: Arc<obs::Obs>,
}

impl App {
    /// Wrap a portal with fine-grained locking.
    pub fn new(portal: Portal) -> Arc<App> {
        App::with_mode(portal, LockMode::Fine)
    }

    /// Wrap a portal with an explicit [`LockMode`] (the bench boots one
    /// app per mode to measure the difference).
    pub fn with_mode(portal: Portal, mode: LockMode) -> Arc<App> {
        let obs = Arc::clone(portal.obs());
        Arc::new(App {
            portal: RwLock::new(portal),
            mode,
            obs,
        })
    }

    /// This app's locking discipline.
    pub fn mode(&self) -> LockMode {
        self.mode
    }

    /// The portal's telemetry domain, lock-free.
    pub fn obs(&self) -> &Arc<obs::Obs> {
        &self.obs
    }

    /// Run `f` under a shared read guard ([`LockMode::Global`] degrades
    /// to the write guard — the faithful single-lock baseline). The wait
    /// for the guard is recorded at the profiler's `portal.lock` site.
    pub fn read<R>(&self, f: impl FnOnce(&Portal) -> R) -> R {
        match self.mode {
            LockMode::Fine => {
                let t0 = Instant::now();
                let guard = self.portal.read();
                self.observe_lock_wait(t0, "read");
                f(&guard)
            }
            LockMode::Global => self.write(|p| f(p)),
        }
    }

    /// Run `f` under the exclusive write guard, recording the wait at the
    /// profiler's `portal.lock` site.
    pub fn write<R>(&self, f: impl FnOnce(&mut Portal) -> R) -> R {
        let t0 = Instant::now();
        let mut guard = self.portal.write();
        self.observe_lock_wait(t0, "write");
        f(&mut guard)
    }

    fn observe_lock_wait(&self, since: Instant, kind: &'static str) {
        self.obs
            .profiler
            .observe("portal.lock", since.elapsed().as_micros() as u64, || {
                format!("portal {kind} guard")
            });
    }
}

/// Wall-clock seconds (session clock).
fn now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Extract the bearer token from cookie or Authorization header.
fn token_of(req: &Request) -> Option<Token> {
    if let Some(cookie) = req.header("cookie") {
        if let Some(sid) = parse_cookies(cookie).get("sid") {
            return Some(Token::from_string(sid.clone()));
        }
    }
    if let Some(auth) = req.header("authorization") {
        if let Some(rest) = auth.strip_prefix("Bearer ") {
            return Some(Token::from_string(rest.trim().to_string()));
        }
    }
    None
}

/// Map a portal error onto an HTTP status + JSON body.
fn err_response(e: &PortalError) -> Response {
    let status = match e {
        PortalError::Auth(_) | PortalError::Session(_) => Status::UNAUTHORIZED,
        PortalError::Forbidden(_) | PortalError::OutsideHome { .. } => Status::FORBIDDEN,
        PortalError::Vfs(vfs::VfsError::NotFound(_)) => Status::NOT_FOUND,
        PortalError::Vfs(vfs::VfsError::AlreadyExists(_)) => Status::CONFLICT,
        PortalError::Vfs(vfs::VfsError::QuotaExceeded { .. }) => Status::PAYLOAD_TOO_LARGE,
        PortalError::Vfs(_) | PortalError::Bootstrap(_) => Status::BAD_REQUEST,
        PortalError::Sched(sched::SchedError::NoSuchJob(_)) => Status::NOT_FOUND,
        PortalError::Sched(_) | PortalError::Exec(_) => Status::BAD_REQUEST,
        PortalError::JobLost { .. } => Status::GONE,
        PortalError::JobTimedOut { .. } => Status::REQUEST_TIMEOUT,
    };
    Response::json(
        status,
        &Json::obj(vec![("error", Json::str(e.to_string()))]),
    )
}

macro_rules! try_portal {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => return err_response(&e),
        }
    };
}

/// Require a token or answer 401.
macro_rules! need_token {
    ($req:expr) => {
        match token_of($req) {
            Some(t) => t,
            None => return Response::error(Status::UNAUTHORIZED, "missing session"),
        }
    };
}

fn qparam(req: &Request, name: &str) -> Option<String> {
    parse_query(&req.query).get(name).cloned()
}

fn json_body(req: &Request) -> Option<Json> {
    Json::parse(req.body_str()).ok()
}

fn json_str(body: &Json, key: &str) -> Option<String> {
    body.get(key)?.as_str().map(String::from)
}

/// Build the full route table over shared state.
pub fn build_router(app: Arc<App>) -> Router {
    let mut router = Router::new();

    // ---- pages -------------------------------------------------------------
    {
        let app = Arc::clone(&app);
        router.get("/", move |req| crate::pages::home(&app, req));
    }
    {
        let app = Arc::clone(&app);
        router.get("/files", move |req| crate::pages::files(&app, req));
    }
    {
        let app = Arc::clone(&app);
        router.get("/jobs", move |req| crate::pages::jobs(&app, req));
    }

    // ---- auth ---------------------------------------------------------------
    {
        let app = Arc::clone(&app);
        router.post("/api/login", move |req| {
            let Some(body) = json_body(req) else {
                return Response::error(Status::BAD_REQUEST, "expected JSON body");
            };
            let (Some(user), Some(password)) =
                (json_str(&body, "user"), json_str(&body, "password"))
            else {
                return Response::error(Status::BAD_REQUEST, "need user and password");
            };
            let token = try_portal!(app.write(|p| p.login(&user, &password, now())));
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("token", Json::str(token.as_str())),
                    ("user", Json::str(user)),
                ]),
            )
            .with_cookie("sid", token.as_str())
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/logout", move |req| {
            let token = need_token!(req);
            app.write(|p| p.logout(&token));
            Response::json(Status::OK, &Json::obj(vec![("ok", Json::Bool(true))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/whoami", move |req| {
            let token = need_token!(req);
            let (user, role) = try_portal!(app.read(|p| p.whoami(&token, now())));
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("user", Json::str(user)),
                    ("role", Json::str(role.name())),
                ]),
            )
        });
    }

    // ---- admin ----------------------------------------------------------------
    {
        let app = Arc::clone(&app);
        router.post("/api/admin/users", move |req| {
            let token = need_token!(req);
            let Some(body) = json_body(req) else {
                return Response::error(Status::BAD_REQUEST, "expected JSON body");
            };
            let (Some(name), Some(password)) =
                (json_str(&body, "name"), json_str(&body, "password"))
            else {
                return Response::error(Status::BAD_REQUEST, "need name and password");
            };
            let role = match json_str(&body, "role").as_deref() {
                Some("faculty") => Role::Faculty,
                Some("admin") => Role::Admin,
                _ => Role::Student,
            };
            try_portal!(app.write(|p| p.create_user(&token, &name, &password, role, now())));
            Response::json(
                Status::CREATED,
                &Json::obj(vec![("created", Json::str(name))]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/admin/users", move |req| {
            let token = need_token!(req);
            let users = try_portal!(app.read(|p| p.list_users(&token, now())));
            Response::json(
                Status::OK,
                &Json::Arr(users.into_iter().map(Json::Str).collect()),
            )
        });
    }

    // ---- file manager ------------------------------------------------------------
    {
        let app = Arc::clone(&app);
        router.get("/api/files", move |req| {
            let token = need_token!(req);
            let path = qparam(req, "path").unwrap_or_default();
            let listing = try_portal!(app.read(|p| p.list_dir(&token, &path, now())));
            let rows = listing
                .into_iter()
                .map(|f| {
                    Json::obj(vec![
                        ("name", Json::str(f.name)),
                        ("dir", Json::Bool(f.is_dir)),
                        ("size", Json::num(f.size as f64)),
                        ("owner", Json::str(f.owner)),
                        ("mtime", Json::num(f.mtime as f64)),
                    ])
                })
                .collect();
            Response::json(Status::OK, &Json::Arr(rows))
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/file", move |req| {
            let token = need_token!(req);
            let Some(path) = qparam(req, "path") else {
                return Response::error(Status::BAD_REQUEST, "need path");
            };
            let data = try_portal!(app.read(|p| p.read_file(&token, &path, now())));
            Response::new(Status::OK)
                .with_header("Content-Type", "application/octet-stream")
                .with_body(data)
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/file", move |req| {
            let token = need_token!(req);
            let Some(path) = qparam(req, "path") else {
                return Response::error(Status::BAD_REQUEST, "need path");
            };
            try_portal!(app.write(|p| p.write_file(&token, &path, req.body.clone(), now())));
            Response::json(
                Status::CREATED,
                &Json::obj(vec![("saved", Json::str(path))]),
            )
        });
    }
    {
        // Multi-file upload: "the download, and upload of multiple files"
        // (paper SIV). multipart/form-data; each file part saves under the
        // target directory (?dir=..., default home).
        let app = Arc::clone(&app);
        router.post("/api/upload", move |req| {
            let token = need_token!(req);
            let Some(boundary) = req.header("content-type").and_then(multipart_boundary) else {
                return Response::error(Status::BAD_REQUEST, "expected multipart/form-data");
            };
            let dir = qparam(req, "dir").unwrap_or_default();
            let parts = parse_multipart(&req.body, &boundary);
            let mut saved = Vec::new();
            for part in parts {
                let Some(filename) = part.filename else {
                    continue;
                };
                if filename.is_empty() {
                    continue;
                }
                let path = if dir.is_empty() {
                    filename.clone()
                } else {
                    format!("{dir}/{filename}")
                };
                try_portal!(app.write(|p| p.write_file(&token, &path, part.data, now())));
                saved.push(Json::str(path));
            }
            Response::json(
                Status::CREATED,
                &Json::obj(vec![("saved", Json::Arr(saved))]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/mkdir", move |req| {
            let token = need_token!(req);
            let Some(path) = qparam(req, "path") else {
                return Response::error(Status::BAD_REQUEST, "need path");
            };
            try_portal!(app.write(|p| p.mkdir(&token, &path, now())));
            Response::json(
                Status::CREATED,
                &Json::obj(vec![("created", Json::str(path))]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/rm", move |req| {
            let token = need_token!(req);
            let Some(path) = qparam(req, "path") else {
                return Response::error(Status::BAD_REQUEST, "need path");
            };
            try_portal!(app.write(|p| p.remove(&token, &path, now())));
            Response::json(Status::OK, &Json::obj(vec![("removed", Json::str(path))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/mv", move |req| {
            let token = need_token!(req);
            let (Some(from), Some(to)) = (qparam(req, "from"), qparam(req, "to")) else {
                return Response::error(Status::BAD_REQUEST, "need from and to");
            };
            try_portal!(app.write(|p| p.rename(&token, &from, &to, now())));
            Response::json(Status::OK, &Json::obj(vec![("moved", Json::str(to))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/cp", move |req| {
            let token = need_token!(req);
            let (Some(from), Some(to)) = (qparam(req, "from"), qparam(req, "to")) else {
                return Response::error(Status::BAD_REQUEST, "need from and to");
            };
            try_portal!(app.write(|p| p.copy(&token, &from, &to, now())));
            Response::json(Status::OK, &Json::obj(vec![("copied", Json::str(to))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/quota", move |req| {
            let token = need_token!(req);
            let q = try_portal!(app.read(|p| p.quota(&token, now())));
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("used", Json::num(q.used as f64)),
                    ("limit", Json::num(q.limit as f64)),
                ]),
            )
        });
    }

    // ---- compile & run -------------------------------------------------------------
    {
        let app = Arc::clone(&app);
        router.post("/api/compile", move |req| {
            let token = need_token!(req);
            let Some(path) = qparam(req, "path") else {
                return Response::error(Status::BAD_REQUEST, "need path");
            };
            // Two-phase under fine locking: validate + snapshot inputs
            // under a brief read guard, compile with NO portal lock held,
            // then commit the artifact under a brief write guard. The
            // stamp check at commit drops results from sessions revoked
            // mid-compile.
            let report = match app.mode() {
                LockMode::Fine => {
                    let phase = try_portal!(app.read(|p| p.compile_begin(&token, &path, now())));
                    let done = phase.run();
                    try_portal!(app.write(|p| p.compile_commit(done, now())))
                }
                LockMode::Global => try_portal!(app.write(|p| p.compile(&token, &path, now()))),
            };
            let status = if report.success() {
                Status::OK
            } else {
                Status::BAD_REQUEST
            };
            Response::json(
                status,
                &Json::obj(vec![
                    ("success", Json::Bool(report.success())),
                    ("language", Json::str(report.language.to_string())),
                    (
                        "artifact",
                        report
                            .artifact
                            .as_ref()
                            .map(|a| Json::str(a.to_string()))
                            .unwrap_or(Json::Null),
                    ),
                    (
                        "diagnostics",
                        Json::Arr(
                            report
                                .diagnostics
                                .iter()
                                .map(|d| Json::str(d.to_string()))
                                .collect(),
                        ),
                    ),
                ]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/artifacts", move |req| {
            let token = need_token!(req);
            let arts = try_portal!(app.read(|p| p.my_artifacts(&token, now())));
            let rows = arts
                .into_iter()
                .map(|(id, src)| Json::obj(vec![("id", Json::str(id)), ("source", Json::str(src))]))
                .collect();
            Response::json(Status::OK, &Json::Arr(rows))
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/run", move |req| {
            let token = need_token!(req);
            let Some(artifact) = qparam(req, "artifact") else {
                return Response::error(Status::BAD_REQUEST, "need artifact");
            };
            let seed: u64 = qparam(req, "seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let stdin: Vec<String> = req.body_str().lines().map(String::from).collect();
            // The whole VM execution runs without the portal lock in fine
            // mode; only the begin/finish bookends touch it, both briefly.
            let report = match app.mode() {
                LockMode::Fine => {
                    let phase = try_portal!(app.read(|p| p.run_begin(
                        &token,
                        &artifact,
                        seed,
                        &stdin,
                        now()
                    )));
                    let done = phase.run();
                    try_portal!(app.read(|p| p.run_finish(done, now())))
                }
                LockMode::Global => try_portal!(app.write(|p| p.run_interactive_stdin(
                    &token,
                    &artifact,
                    seed,
                    &stdin,
                    now()
                ))),
            };
            match (&report.outcome, &report.error) {
                (Some(out), _) => Response::json(
                    Status::OK,
                    &Json::obj(vec![
                        ("success", Json::Bool(true)),
                        ("stdout", Json::str(out.stdout.clone())),
                        ("executed", Json::num(out.executed as f64)),
                        ("threads", Json::num(out.peak_threads as f64)),
                    ]),
                ),
                (None, Some(e)) => Response::json(
                    Status::OK,
                    &Json::obj(vec![
                        ("success", Json::Bool(false)),
                        ("error", Json::str(e.to_string())),
                    ]),
                ),
                (None, None) => Response::error(Status::INTERNAL, "executor returned nothing"),
            }
        });
    }
    {
        let app = Arc::clone(&app);
        // Systematic interleaving analysis (the "analyze" button): verdict,
        // exploration counters, and — on failure — the repro schedule.
        router.post("/api/analyze", move |req| {
            let token = need_token!(req);
            let Some(artifact) = qparam(req, "artifact") else {
                return Response::error(Status::BAD_REQUEST, "need artifact");
            };
            let budget: Option<u64> = qparam(req, "budget").and_then(|s| s.parse().ok());
            // Exploration burns real checker CPU on the shared pool; in
            // fine mode no portal lock is held while it runs.
            let view = match app.mode() {
                LockMode::Fine => {
                    let phase = try_portal!(app.read(|p| p.analyze_begin(
                        &token,
                        &artifact,
                        budget,
                        now()
                    )));
                    let done = phase.run();
                    try_portal!(app.read(|p| p.analyze_finish(done, now())))
                }
                LockMode::Global => {
                    try_portal!(app.write(|p| p.analyze_job(&token, &artifact, budget, now())))
                }
            };
            let repro = view.repro.iter().map(|&t| Json::num(t as f64)).collect();
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("artifact", Json::str(view.artifact)),
                    ("verdict", Json::str(view.verdict)),
                    ("detail", Json::str(view.detail)),
                    ("schedules", Json::num(view.schedules as f64)),
                    ("steps", Json::num(view.steps as f64)),
                    ("complete", Json::Bool(view.complete)),
                    (
                        "exhaustive_within_bound",
                        Json::Bool(view.exhaustive_within_bound),
                    ),
                    ("repro", Json::Arr(repro)),
                ]),
            )
        });
    }

    // ---- the job distributor ---------------------------------------------------------
    {
        let app = Arc::clone(&app);
        router.post("/api/jobs", move |req| {
            let token = need_token!(req);
            let Some(body) = json_body(req) else {
                return Response::error(Status::BAD_REQUEST, "expected JSON body");
            };
            let Some(artifact) = json_str(&body, "artifact") else {
                return Response::error(Status::BAD_REQUEST, "need artifact");
            };
            let cores = body.get("cores").and_then(Json::as_num).unwrap_or(1.0) as u32;
            let est = body
                .get("estimated_ticks")
                .and_then(Json::as_num)
                .unwrap_or(10.0) as u64;
            // Traced: the portal mints an http.request root span and
            // threads it through the scheduler, so /api/trace/:id can
            // render the job's whole life as one tree.
            let id = try_portal!(app.write(|p| p.submit_job_traced(
                &token,
                &artifact,
                cores,
                est,
                now()
            )));
            Response::json(
                Status::CREATED,
                &Json::obj(vec![("job", Json::num(id.0 as f64))]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/jobs", move |req| {
            let token = need_token!(req);
            let jobs = try_portal!(app.read(|p| p.jobs(&token, now())));
            let rows = jobs.into_iter().map(|j| job_json(&j)).collect();
            Response::json(Status::OK, &Json::Arr(rows))
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/jobs/:id", move |req| {
            let token = need_token!(req);
            let Some(id) = req.param("id").and_then(|s| s.parse::<u64>().ok()) else {
                return Response::error(Status::BAD_REQUEST, "bad job id");
            };
            let job = try_portal!(app.read(|p| p.job(&token, JobId(id), now())));
            Response::json(Status::OK, &job_json(&job))
        });
    }
    {
        // Incremental stdout poll: `?from=` is the byte offset the client
        // already holds; the response carries only the growth. The
        // semester workload polls this in a tight loop, so the payload
        // must stay O(new bytes), not O(stream).
        let app = Arc::clone(&app);
        router.get("/api/jobs/:id/stdout", move |req| {
            let token = need_token!(req);
            let Some(id) = req.param("id").and_then(|s| s.parse::<u64>().ok()) else {
                return Response::error(Status::BAD_REQUEST, "bad job id");
            };
            let from = qparam(req, "from")
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(0);
            let (len, tail) =
                try_portal!(app.read(|p| p.job_stdout_tail(&token, JobId(id), from, now())));
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("len", Json::num(len as f64)),
                    ("from", Json::num(from.min(len) as f64)),
                    ("data", Json::str(tail)),
                ]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/jobs/:id/stdin", move |req| {
            let token = need_token!(req);
            let Some(id) = req.param("id").and_then(|s| s.parse::<u64>().ok()) else {
                return Response::error(Status::BAD_REQUEST, "bad job id");
            };
            try_portal!(app.write(|p| p.send_stdin(&token, JobId(id), req.body_str(), now())));
            Response::json(Status::OK, &Json::obj(vec![("ok", Json::Bool(true))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/jobs/:id/cancel", move |req| {
            let token = need_token!(req);
            let Some(id) = req.param("id").and_then(|s| s.parse::<u64>().ok()) else {
                return Response::error(Status::BAD_REQUEST, "bad job id");
            };
            try_portal!(app.write(|p| p.cancel_job(&token, JobId(id), now())));
            Response::json(
                Status::OK,
                &Json::obj(vec![("cancelled", Json::num(id as f64))]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/tick", move |req| {
            let token = need_token!(req);
            // Only authenticated users may pump the clock (any role: the
            // test driver and the background ticker both authenticate).
            // Validation and the tick happen under ONE acquisition: a
            // token revoked between two separate lock takes could
            // otherwise still drive the clock (TOCTOU).
            let dispatched = try_portal!(app.write(|p| {
                p.whoami(&token, now())?;
                Ok::<_, PortalError>(p.tick())
            }));
            Response::json(
                Status::OK,
                &Json::obj(vec![(
                    "dispatched",
                    Json::Arr(dispatched.iter().map(|j| Json::num(j.0 as f64)).collect()),
                )]),
            )
        });
    }
    {
        // Admin: stop placing new jobs on a node, letting running work finish.
        let app = Arc::clone(&app);
        router.post("/api/admin/drain", move |req| {
            let token = need_token!(req);
            let (Some(segment), Some(slot)) = (
                qparam(req, "segment").and_then(|s| s.parse::<usize>().ok()),
                qparam(req, "slot").and_then(|s| s.parse::<usize>().ok()),
            ) else {
                return Response::error(Status::BAD_REQUEST, "need segment and slot");
            };
            try_portal!(app.write(|p| p.drain_node(&token, segment, slot, now())));
            Response::json(Status::OK, &Json::obj(vec![("draining", Json::Bool(true))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.post("/api/admin/undrain", move |req| {
            let token = need_token!(req);
            let (Some(segment), Some(slot)) = (
                qparam(req, "segment").and_then(|s| s.parse::<usize>().ok()),
                qparam(req, "slot").and_then(|s| s.parse::<usize>().ok()),
            ) else {
                return Response::error(Status::BAD_REQUEST, "need segment and slot");
            };
            try_portal!(app.write(|p| p.undrain_node(&token, segment, slot, now())));
            Response::json(
                Status::OK,
                &Json::obj(vec![("draining", Json::Bool(false))]),
            )
        });
    }
    {
        // Unauthenticated liveness/health probe: degraded flag, the
        // per-node rows it is derived from, and the headline gauges —
        // all one snapshot, so the counts cannot contradict the flag.
        let app = Arc::clone(&app);
        router.get("/api/health", move |_req| {
            // The view is cloned out under the guard; serialization below
            // happens with no portal lock held. The server gauge lives in
            // the shared registry and needs no lock at all.
            let h = app.read(|p| p.health_view());
            let open_connections = app
                .obs()
                .metrics
                .gauge("ccp_httpd_open_connections", &[])
                .get();
            let nodes = h
                .nodes
                .into_iter()
                .map(|n| {
                    Json::obj(vec![
                        ("segment", Json::num(n.segment as f64)),
                        ("slot", Json::num(n.slot as f64)),
                        ("health", Json::str(n.health)),
                        ("cores", Json::num(n.cores as f64)),
                    ])
                })
                .collect();
            let recovery = h
                .recovery
                .into_iter()
                .map(|r| {
                    Json::obj(vec![
                        ("stream", Json::str(r.stream)),
                        (
                            "snapshot_lsn",
                            r.snapshot_lsn
                                .map(|l| Json::num(l as f64))
                                .unwrap_or(Json::Null),
                        ),
                        ("snapshot_corrupt", Json::Bool(r.snapshot_corrupt)),
                        ("records_replayed", Json::num(r.records_replayed as f64)),
                        ("torn_bytes", Json::num(r.torn_bytes as f64)),
                        ("corrupt_records", Json::num(r.corrupt_records as f64)),
                        ("replay_errors", Json::num(r.replay_errors as f64)),
                        ("last_lsn", Json::num(r.last_lsn as f64)),
                        ("recovery_us", Json::num(r.wall_us as f64)),
                    ])
                })
                .collect();
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("degraded", Json::Bool(h.degraded)),
                    ("nodes", Json::Arr(nodes)),
                    ("nodes_up", Json::num(h.nodes_up as f64)),
                    ("nodes_draining", Json::num(h.nodes_draining as f64)),
                    ("nodes_down", Json::num(h.nodes_down as f64)),
                    ("queue_depth", Json::num(h.queue_depth as f64)),
                    ("jobs_running", Json::num(h.jobs_running as f64)),
                    ("open_connections", Json::num(open_connections as f64)),
                    ("durable", Json::Bool(h.durable)),
                    ("recovery", Json::Arr(recovery)),
                    (
                        "wal_error",
                        h.wal_error.map(Json::str).unwrap_or(Json::Null),
                    ),
                    (
                        "alerts",
                        Json::Arr(h.alerts.iter().map(alert_json).collect()),
                    ),
                ]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/status", move |_req| {
            let (free, total, util) = app.read(|p| p.cluster_status());
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("free_cores", Json::num(free as f64)),
                    ("total_cores", Json::num(total as f64)),
                    ("utilization", Json::num(util)),
                ]),
            )
        });
    }

    // ---- telemetry -------------------------------------------------------------
    {
        // Prometheus text exposition. Public like /api/health: the body is
        // aggregates only, no per-user data.
        let app = Arc::clone(&app);
        router.get("/api/metrics", move |_req| {
            // Republish live gauges under a brief guard, then render the
            // full exposition from the shared registry with no portal
            // lock held — the render walks every family and is exactly
            // the kind of work a scrape must not serialize behind.
            let text = match app.mode() {
                LockMode::Fine => {
                    app.read(|p| p.publish_gauges());
                    app.obs().metrics.render()
                }
                LockMode::Global => app.write(|p| p.metrics_text()),
            };
            Response::new(Status::OK)
                .with_header("Content-Type", "text/plain; version=0.0.4")
                .with_body(text.into_bytes())
        });
    }
    {
        // Continuous-observability dashboard: windowed rates, sliding
        // quantiles, and alert state from the time-series store. Public
        // like /api/metrics — aggregates only.
        let app = Arc::clone(&app);
        router.get("/api/dashboard", move |_req| {
            // The view (a small struct of panels) is built under a read
            // guard; all JSON serialization happens after release.
            let d = app.read(|p| p.dashboard_view());
            let rate = |p: &ccp_core::RatePanel| {
                Json::obj(vec![
                    ("total", Json::num(p.total as f64)),
                    (
                        "rate_milli",
                        p.rate_milli
                            .map(|r| Json::num(r as f64))
                            .unwrap_or(Json::Null),
                    ),
                ])
            };
            let quantiles = |p: &ccp_core::QuantilePanel| {
                Json::obj(vec![
                    ("p50", quantile_json(p.p50)),
                    ("p99", quantile_json(p.p99)),
                ])
            };
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("at", Json::num(d.at as f64)),
                    ("window", Json::num(d.window as f64)),
                    ("captures", Json::num(d.captures as f64)),
                    ("evicted", Json::num(d.evicted as f64)),
                    ("queue_depth", Json::num(d.queue_depth as f64)),
                    (
                        "queue_depth_avg_milli",
                        d.queue_depth_avg_milli
                            .map(|v| Json::num(v as f64))
                            .unwrap_or(Json::Null),
                    ),
                    ("jobs_running", Json::num(d.jobs_running as f64)),
                    ("submitted", rate(&d.submitted)),
                    ("completed", rate(&d.completed)),
                    ("dispatched", rate(&d.dispatched)),
                    ("node_lost", rate(&d.node_lost)),
                    ("wait_ticks", quantiles(&d.wait_ticks)),
                    ("run_ticks", quantiles(&d.run_ticks)),
                    (
                        "alerts",
                        Json::Arr(d.alerts.iter().map(alert_json).collect()),
                    ),
                ]),
            )
        });
    }
    {
        // Admin: the contention profiler's slowest-operations log.
        let app = Arc::clone(&app);
        router.get("/api/admin/slow", move |req| {
            let token = need_token!(req);
            let ops = try_portal!(app.read(|p| p.slow_ops(&token, now())));
            let rows = ops
                .into_iter()
                .map(|op| {
                    Json::obj(vec![
                        ("site", Json::str(op.site)),
                        ("us", Json::num(op.us as f64)),
                        ("detail", Json::str(op.detail)),
                    ])
                })
                .collect();
            Response::json(Status::OK, &Json::obj(vec![("slow", Json::Arr(rows))]))
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/trace/:id", move |req| {
            let token = need_token!(req);
            let Some(id) = req.param("id").and_then(|s| s.parse::<u64>().ok()) else {
                return Response::error(Status::BAD_REQUEST, "bad job id");
            };
            // One acquisition for both views, so the timeline and the
            // span tree cannot disagree about the job's state.
            let (timeline, tree) = try_portal!(app.read(|p| {
                let timeline = p.job_timeline(&token, JobId(id), now())?;
                let tree = p.job_trace_tree(&token, JobId(id), now())?;
                Ok::<_, PortalError>((timeline, tree))
            }));
            let rows = timeline
                .into_iter()
                .map(|e| {
                    Json::obj(vec![
                        ("at", Json::num(e.at as f64)),
                        ("event", Json::str(e.event)),
                        (
                            "attrs",
                            Json::Obj(
                                e.attrs
                                    .into_iter()
                                    .map(|(k, v)| (k, Json::Str(v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            let spans = tree
                .spans
                .into_iter()
                .map(|s| {
                    Json::obj(vec![
                        ("id", Json::num(s.id as f64)),
                        (
                            "parent",
                            s.parent.map(|p| Json::num(p as f64)).unwrap_or(Json::Null),
                        ),
                        ("name", Json::str(s.name)),
                        ("start", Json::num(s.start as f64)),
                        (
                            "end",
                            s.end.map(|e| Json::num(e as f64)).unwrap_or(Json::Null),
                        ),
                        (
                            "attrs",
                            Json::Obj(
                                s.attrs
                                    .into_iter()
                                    .map(|(k, v)| (k, Json::Str(v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("job", Json::num(id as f64)),
                    ("timeline", Json::Arr(rows)),
                    (
                        "root",
                        tree.root.map(|r| Json::num(r as f64)).unwrap_or(Json::Null),
                    ),
                    ("spans", Json::Arr(spans)),
                    ("truncated", Json::num(tree.truncated as f64)),
                ]),
            )
        });
    }
    {
        let app = Arc::clone(&app);
        router.get("/api/admin/events", move |req| {
            let token = need_token!(req);
            let limit = qparam(req, "limit")
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(100);
            let events = try_portal!(app.read(|p| p.recent_events(&token, limit, now())));
            let truncated = app.obs().events.dropped();
            let rows = events
                .into_iter()
                .map(|e| {
                    Json::obj(vec![
                        ("at", Json::num(e.at as f64)),
                        ("kind", Json::str(e.kind)),
                        (
                            "fields",
                            Json::Obj(
                                e.fields
                                    .into_iter()
                                    .map(|(k, v)| (k, Json::Str(v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            Response::json(
                Status::OK,
                &Json::obj(vec![
                    ("events", Json::Arr(rows)),
                    ("truncated", Json::num(truncated as f64)),
                ]),
            )
        });
    }

    // Route the request-level telemetry (per-route counters, latency
    // histograms, access log) into the portal's own domain, so one
    // /api/metrics scrape covers the whole stack.
    router.set_obs(Arc::clone(app.obs()));

    router
}

fn alert_json(a: &ccp_core::AlertView) -> Json {
    Json::obj(vec![
        ("slo", Json::str(a.slo.clone())),
        ("firing", Json::Bool(a.firing)),
        (
            "since",
            a.since.map(|t| Json::num(t as f64)).unwrap_or(Json::Null),
        ),
        ("transitions", Json::num(a.transitions as f64)),
    ])
}

fn job_json(j: &ccp_core::JobView) -> Json {
    Json::obj(vec![
        ("id", Json::num(j.id.0 as f64)),
        ("user", Json::str(j.user.clone())),
        ("executable", Json::str(j.executable.clone())),
        ("state", Json::str(j.state_label.clone())),
        ("cores", Json::num(j.cores as f64)),
        ("attempt", Json::num(j.attempt as f64)),
        (
            "last_failure",
            j.last_failure
                .as_ref()
                .map(|f| Json::str(f.clone()))
                .unwrap_or(Json::Null),
        ),
        ("stdout", Json::str(j.stdout.clone())),
        ("stderr", Json::str(j.stderr.clone())),
    ])
}

/// Serve the portal on a real socket, access log on. The caller keeps the
/// [`ServerHandle`] alive for the server's lifetime.
pub fn serve(app: Arc<App>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with_config(
        app,
        addr,
        ServerConfig {
            access_log: true,
            ..ServerConfig::default()
        },
    )
}

/// Serve with explicit server limits — the load harness raises
/// `max_inflight` far past the classroom default to exercise the
/// reactor's connection capacity.
pub fn serve_with_config(
    app: Arc<App>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    // The server shares the portal's registry, so request metrics land in
    // the same /api/metrics exposition the portal already serves — and the
    // reactor's eagerly-registered families show up on a fresh scrape.
    let obs = Arc::clone(app.obs());
    Server::with_config(build_router(app), config)
        .with_obs(obs)
        .spawn(addr)
}

/// Convenience used by pages and tests: dispatch a synthetic request.
pub fn dispatch(
    router: &Router,
    method: Method,
    path: &str,
    body: &[u8],
    token: Option<&str>,
) -> Response {
    let mut req = Request::synthetic(method, path, body);
    if let Some(t) = token {
        req = req.with_header("cookie", &format!("sid={t}"));
    }
    router.dispatch(&mut req)
}
