//! # webportal — the cluster computing portal's web face
//!
//! "The portal on the server allows remote access to the computing
//! resources ... accessible from the webpage" (§II). This crate maps the
//! [`ccp_core::Portal`] API onto HTTP:
//!
//! * [`app`] — the JSON API under `/api/*` (login, file manager, compile,
//!   run, job distributor, admin) plus the HTML pages;
//! * [`pages`] — server-rendered HTML for browsing without a client app.
//!
//! Authentication is a session cookie (`sid`) or `Authorization: Bearer`.
//! Every endpoint is testable in-process via [`httpd::Router::dispatch`];
//! [`app::serve`] binds a real TCP socket for browser access.

pub mod app;
pub mod pages;

pub use app::{build_router, serve, serve_with_config, App, LockMode};

#[cfg(test)]
mod tests;
