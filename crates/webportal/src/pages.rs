//! Server-rendered HTML pages: home/dashboard, file browser, job monitor.
//!
//! Deliberately plain HTML (2013-appropriate, and testable by substring):
//! the JSON API under `/api` is the primary machine interface.

use crate::app::App;
use httpd::forms::{parse_cookies, parse_query};
use httpd::html::{escape, page, table};
use httpd::{Request, Response};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

fn now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn session_user(app: &App, req: &Request) -> Option<String> {
    let cookie = req.header("cookie")?;
    let sid = parse_cookies(cookie).get("sid")?.clone();
    let token = auth::Token::from_string(sid);
    app.read(|p| p.whoami(&token, now()).ok().map(|(u, _)| u))
}

/// `GET /` — dashboard: cluster status + login state.
pub fn home(app: &Arc<App>, req: &Request) -> Response {
    let (free, total, util) = app.read(|p| p.cluster_status());
    let who = session_user(app, req);
    let body = format!(
        "<p>Welcome to the cluster computing portal.</p>\
         <p>Cluster: {free} of {total} cores free ({util:.0}% utilized).</p>\
         <p>{}</p>\
         <ul><li><a href=\"/files\">File manager</a></li>\
         <li><a href=\"/jobs\">Job monitor</a></li></ul>",
        match &who {
            Some(u) => format!("Signed in as <b>{}</b>.", escape(u)),
            None => "Not signed in; POST /api/login.".to_string(),
        },
        util = util * 100.0,
    );
    Response::html(page("Cluster Computing Portal", &body))
}

/// `GET /files?path=` — the file browser.
pub fn files(app: &Arc<App>, req: &Request) -> Response {
    let Some(cookie) = req.header("cookie") else {
        return Response::redirect("/");
    };
    let Some(sid) = parse_cookies(cookie).get("sid").cloned() else {
        return Response::redirect("/");
    };
    let token = auth::Token::from_string(sid);
    let path = parse_query(&req.query)
        .get("path")
        .cloned()
        .unwrap_or_default();
    match app.read(|p| p.list_dir(&token, &path, now())) {
        Ok(listing) => {
            let rows: Vec<Vec<String>> = listing
                .iter()
                .map(|f| {
                    vec![
                        if f.is_dir {
                            format!("{}/", f.name)
                        } else {
                            f.name.clone()
                        },
                        f.size.to_string(),
                        f.owner.clone(),
                        f.mtime.to_string(),
                    ]
                })
                .collect();
            let body = format!(
                "<p>Listing of <code>{}</code></p>{}",
                escape(if path.is_empty() { "~" } else { &path }),
                table(&["Name", "Size", "Owner", "Modified"], &rows)
            );
            Response::html(page("File Manager", &body))
        }
        Err(e) => Response::html(page(
            "File Manager",
            &format!("<p>Error: {}</p>", escape(&e.to_string())),
        )),
    }
}

/// `GET /jobs` — the job monitor.
pub fn jobs(app: &Arc<App>, req: &Request) -> Response {
    let Some(cookie) = req.header("cookie") else {
        return Response::redirect("/");
    };
    let Some(sid) = parse_cookies(cookie).get("sid").cloned() else {
        return Response::redirect("/");
    };
    let token = auth::Token::from_string(sid);
    match app.read(|p| p.jobs(&token, now())) {
        Ok(jobs) => {
            let rows: Vec<Vec<String>> = jobs
                .iter()
                .map(|j| {
                    vec![
                        j.id.to_string(),
                        j.user.clone(),
                        j.executable.clone(),
                        j.state_label.clone(),
                        j.cores.to_string(),
                    ]
                })
                .collect();
            let body = table(&["Job", "User", "Executable", "State", "Cores"], &rows);
            Response::html(page("Job Monitor", &body))
        }
        Err(e) => Response::html(page(
            "Job Monitor",
            &format!("<p>Error: {}</p>", escape(&e.to_string())),
        )),
    }
}
