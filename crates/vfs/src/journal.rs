//! Durability records for the filesystem: every mutating public operation
//! maps to one [`VfsRecord`], logged after the mutation commits in memory.
//!
//! Replay is *logical*: recovery re-executes the same public operations
//! against a fresh (or snapshot-seeded) [`crate::Vfs`]. Since every op
//! advances the logical clock deterministically, a replayed filesystem is
//! byte-identical to the one that logged — the invariant the kill-at-random-
//! point property test checks via [`crate::Vfs::snapshot_bytes`].

use crate::fs::Mode;
use wal::{CodecError, Dec, Enc};

/// One logged filesystem mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsRecord {
    /// `add_user(user, quota_bytes)`.
    AddUser {
        /// New user.
        user: String,
        /// Byte quota.
        quota: u64,
    },
    /// `mkdir(user, path)`.
    Mkdir {
        /// Acting user.
        user: String,
        /// Directory created.
        path: String,
    },
    /// `mkdir_p(user, path)`.
    MkdirP {
        /// Acting user.
        user: String,
        /// Chain created.
        path: String,
    },
    /// `write(user, path, data)`.
    Write {
        /// Acting user.
        user: String,
        /// File written.
        path: String,
        /// Full new contents.
        data: Vec<u8>,
    },
    /// `append(user, path, extra)`.
    Append {
        /// Acting user.
        user: String,
        /// File appended to.
        path: String,
        /// Bytes appended.
        data: Vec<u8>,
    },
    /// `chmod(user, path, mode)`.
    Chmod {
        /// Acting user.
        user: String,
        /// Target path.
        path: String,
        /// New bits.
        mode: Mode,
    },
    /// `remove(user, path)`.
    Remove {
        /// Acting user.
        user: String,
        /// Target path.
        path: String,
    },
    /// `remove_recursive(user, path)`.
    RemoveRecursive {
        /// Acting user.
        user: String,
        /// Subtree root removed.
        path: String,
    },
    /// `copy(user, from, to)`.
    Copy {
        /// Acting user.
        user: String,
        /// Source.
        from: String,
        /// Destination.
        to: String,
    },
    /// `rename(user, from, to)`.
    Rename {
        /// Acting user.
        user: String,
        /// Source.
        from: String,
        /// Destination.
        to: String,
    },
}

const TAG_ADD_USER: u8 = 0;
const TAG_MKDIR: u8 = 1;
const TAG_MKDIR_P: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_APPEND: u8 = 4;
const TAG_CHMOD: u8 = 5;
const TAG_REMOVE: u8 = 6;
const TAG_REMOVE_RECURSIVE: u8 = 7;
const TAG_COPY: u8 = 8;
const TAG_RENAME: u8 = 9;

pub(crate) fn encode_mode(m: Mode) -> u8 {
    (m.owner_read as u8)
        | (m.owner_write as u8) << 1
        | (m.world_read as u8) << 2
        | (m.world_write as u8) << 3
}

pub(crate) fn decode_mode(b: u8) -> Mode {
    Mode {
        owner_read: b & 1 != 0,
        owner_write: b & 2 != 0,
        world_read: b & 4 != 0,
        world_write: b & 8 != 0,
    }
}

impl VfsRecord {
    /// Serialize to a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            VfsRecord::AddUser { user, quota } => {
                e.u8(TAG_ADD_USER).str(user).u64(*quota);
            }
            VfsRecord::Mkdir { user, path } => {
                e.u8(TAG_MKDIR).str(user).str(path);
            }
            VfsRecord::MkdirP { user, path } => {
                e.u8(TAG_MKDIR_P).str(user).str(path);
            }
            VfsRecord::Write { user, path, data } => {
                e.u8(TAG_WRITE).str(user).str(path).bytes(data);
            }
            VfsRecord::Append { user, path, data } => {
                e.u8(TAG_APPEND).str(user).str(path).bytes(data);
            }
            VfsRecord::Chmod { user, path, mode } => {
                e.u8(TAG_CHMOD).str(user).str(path).u8(encode_mode(*mode));
            }
            VfsRecord::Remove { user, path } => {
                e.u8(TAG_REMOVE).str(user).str(path);
            }
            VfsRecord::RemoveRecursive { user, path } => {
                e.u8(TAG_REMOVE_RECURSIVE).str(user).str(path);
            }
            VfsRecord::Copy { user, from, to } => {
                e.u8(TAG_COPY).str(user).str(from).str(to);
            }
            VfsRecord::Rename { user, from, to } => {
                e.u8(TAG_RENAME).str(user).str(from).str(to);
            }
        }
        e.into_bytes()
    }

    /// Parse a WAL payload back into a record.
    pub fn decode(payload: &[u8]) -> Result<VfsRecord, CodecError> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            TAG_ADD_USER => VfsRecord::AddUser {
                user: d.str()?,
                quota: d.u64()?,
            },
            TAG_MKDIR => VfsRecord::Mkdir {
                user: d.str()?,
                path: d.str()?,
            },
            TAG_MKDIR_P => VfsRecord::MkdirP {
                user: d.str()?,
                path: d.str()?,
            },
            TAG_WRITE => VfsRecord::Write {
                user: d.str()?,
                path: d.str()?,
                data: d.bytes()?.to_vec(),
            },
            TAG_APPEND => VfsRecord::Append {
                user: d.str()?,
                path: d.str()?,
                data: d.bytes()?.to_vec(),
            },
            TAG_CHMOD => VfsRecord::Chmod {
                user: d.str()?,
                path: d.str()?,
                mode: decode_mode(d.u8()?),
            },
            TAG_REMOVE => VfsRecord::Remove {
                user: d.str()?,
                path: d.str()?,
            },
            TAG_REMOVE_RECURSIVE => VfsRecord::RemoveRecursive {
                user: d.str()?,
                path: d.str()?,
            },
            TAG_COPY => VfsRecord::Copy {
                user: d.str()?,
                from: d.str()?,
                to: d.str()?,
            },
            TAG_RENAME => VfsRecord::Rename {
                user: d.str()?,
                from: d.str()?,
                to: d.str()?,
            },
            _ => return Err(CodecError("unknown vfs record tag")),
        };
        d.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let records = vec![
            VfsRecord::AddUser {
                user: "alice".into(),
                quota: 1 << 20,
            },
            VfsRecord::Mkdir {
                user: "alice".into(),
                path: "/home/alice/src".into(),
            },
            VfsRecord::Write {
                user: "alice".into(),
                path: "/home/alice/a.c".into(),
                data: b"int main(){}".to_vec(),
            },
            VfsRecord::Chmod {
                user: "alice".into(),
                path: "/home/alice".into(),
                mode: Mode::shared(),
            },
            VfsRecord::Rename {
                user: "alice".into(),
                from: "/home/alice/a".into(),
                to: "/home/alice/b".into(),
            },
        ];
        for r in records {
            assert_eq!(VfsRecord::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn garbage_payload_rejected() {
        assert!(VfsRecord::decode(&[0xff, 1, 2]).is_err());
        assert!(VfsRecord::decode(&[]).is_err());
    }

    #[test]
    fn mode_bitfield_roundtrip() {
        for bits in 0..16u8 {
            assert_eq!(encode_mode(decode_mode(bits)), bits);
        }
    }
}
