//! Normalized virtual paths.
//!
//! A [`VPath`] is always absolute, `/`-separated, with no `.`/`..`/empty
//! components after parsing — `..` is resolved at parse time (clamped at the
//! root), which makes directory-traversal attacks against the portal's file
//! manager structurally impossible.

use crate::error::VfsError;
use std::fmt;

/// A normalized absolute path inside the virtual filesystem.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VPath {
    components: Vec<String>,
}

impl VPath {
    /// The root directory `/`.
    pub fn root() -> VPath {
        VPath {
            components: Vec::new(),
        }
    }

    /// Parse and normalize. Accepts relative input by anchoring at `/`.
    ///
    /// Rejects components containing NUL and components longer than 255
    /// bytes. `.` is dropped, `..` pops (clamped at root).
    pub fn parse(raw: &str) -> Result<VPath, VfsError> {
        let mut components: Vec<String> = Vec::new();
        for comp in raw.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    components.pop();
                }
                c => {
                    if c.contains('\0') {
                        return Err(VfsError::InvalidPath {
                            path: raw.to_string(),
                            reason: "NUL in component",
                        });
                    }
                    if c.len() > 255 {
                        return Err(VfsError::InvalidPath {
                            path: raw.to_string(),
                            reason: "component too long",
                        });
                    }
                    components.push(c.to_string());
                }
            }
        }
        Ok(VPath { components })
    }

    /// The normalized components, root first.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// True for the root directory.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Final component (`None` at the root).
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// Parent directory (`None` at the root).
    pub fn parent(&self) -> Option<VPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(VPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// This path extended by a relative path; `.` and `..` in `component`
    /// resolve against `self` (clamped at the root).
    pub fn join(&self, component: &str) -> Result<VPath, VfsError> {
        VPath::parse(&format!("{}/{}", self, component))
    }

    /// True when `self` equals or lies beneath `ancestor`.
    pub fn starts_with(&self, ancestor: &VPath) -> bool {
        self.components.len() >= ancestor.components.len()
            && self.components[..ancestor.components.len()] == ancestor.components[..]
    }

    /// Number of components (0 at root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes() {
        assert_eq!(VPath::parse("/a/b/c").unwrap().to_string(), "/a/b/c");
        assert_eq!(VPath::parse("a//b/./c/").unwrap().to_string(), "/a/b/c");
        assert_eq!(VPath::parse("/").unwrap().to_string(), "/");
        assert_eq!(VPath::parse("").unwrap().to_string(), "/");
    }

    #[test]
    fn dotdot_clamps_at_root() {
        assert_eq!(VPath::parse("/a/../b").unwrap().to_string(), "/b");
        assert_eq!(
            VPath::parse("/../../etc/passwd").unwrap().to_string(),
            "/etc/passwd"
        );
        assert_eq!(VPath::parse("/a/b/../..").unwrap().to_string(), "/");
    }

    #[test]
    fn traversal_cannot_escape_home() {
        // What the portal does: join user input onto the home dir and check
        // the result is still under the home dir.
        let home = VPath::parse("/home/alice").unwrap();
        let input = home.join("../bob/secret.txt").unwrap();
        assert!(!input.starts_with(&home));
        assert!(input.starts_with(&VPath::parse("/home").unwrap()));
    }

    #[test]
    fn invalid_components_rejected() {
        assert!(VPath::parse("/a\0b").is_err());
        let long = "x".repeat(256);
        assert!(VPath::parse(&long).is_err());
    }

    #[test]
    fn parent_and_file_name() {
        let p = VPath::parse("/a/b/c").unwrap();
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().unwrap().to_string(), "/a/b");
        assert_eq!(VPath::root().parent(), None);
        assert_eq!(VPath::root().file_name(), None);
    }

    #[test]
    fn join_multi_component() {
        let p = VPath::parse("/home").unwrap().join("alice/src").unwrap();
        assert_eq!(p.to_string(), "/home/alice/src");
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn starts_with_exact_match() {
        let a = VPath::parse("/x/y").unwrap();
        assert!(a.starts_with(&a));
        assert!(a.starts_with(&VPath::root()));
        assert!(!VPath::parse("/x/yz").unwrap().starts_with(&a));
    }
}
