//! Virtual-filesystem errors.

use std::fmt;

/// Everything that can go wrong in the [`crate::Vfs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// Malformed path input.
    InvalidPath {
        /// The raw input.
        path: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Path does not exist.
    NotFound(String),
    /// Target exists where it must not (create, move destination).
    AlreadyExists(String),
    /// Expected a file, found a directory.
    IsADirectory(String),
    /// Expected a directory, found a file.
    NotADirectory(String),
    /// Directory must be empty for this operation.
    DirectoryNotEmpty(String),
    /// Caller lacks permission.
    PermissionDenied {
        /// Acting user.
        user: String,
        /// Target path.
        path: String,
        /// Operation attempted.
        op: &'static str,
    },
    /// Write would exceed the user's quota.
    QuotaExceeded {
        /// Acting user.
        user: String,
        /// Bytes in use after accounting for the freed old content.
        used: u64,
        /// The user's limit.
        limit: u64,
        /// Bytes the operation needed.
        requested: u64,
    },
    /// Unknown user.
    NoSuchUser(String),
    /// User already registered.
    UserExists(String),
    /// Moving a directory into its own subtree.
    MoveIntoSelf {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// The durability log failed (the in-memory mutation already committed;
    /// callers decide whether to surface or degrade to non-durable mode).
    Wal(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::InvalidPath { path, reason } => write!(f, "invalid path {path:?}: {reason}"),
            VfsError::NotFound(p) => write!(f, "{p}: no such file or directory"),
            VfsError::AlreadyExists(p) => write!(f, "{p}: already exists"),
            VfsError::IsADirectory(p) => write!(f, "{p}: is a directory"),
            VfsError::NotADirectory(p) => write!(f, "{p}: not a directory"),
            VfsError::DirectoryNotEmpty(p) => write!(f, "{p}: directory not empty"),
            VfsError::PermissionDenied { user, path, op } => {
                write!(f, "{user}: permission denied for {op} on {path}")
            }
            VfsError::QuotaExceeded {
                user,
                used,
                limit,
                requested,
            } => {
                write!(
                    f,
                    "{user}: quota exceeded ({used}+{requested} > {limit} bytes)"
                )
            }
            VfsError::NoSuchUser(u) => write!(f, "no such user {u}"),
            VfsError::UserExists(u) => write!(f, "user {u} already exists"),
            VfsError::MoveIntoSelf { from, to } => {
                write!(f, "cannot move {from} into its own subtree {to}")
            }
            VfsError::Wal(msg) => write!(f, "durability log: {msg}"),
        }
    }
}

impl std::error::Error for VfsError {}
