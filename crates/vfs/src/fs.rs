//! The filesystem proper: a tree of named entries with owners, permission
//! bits, per-user quotas and a logical modification clock.
//!
//! Layout convention (mirroring the portal): every registered user gets a
//! home directory `/home/<user>` that only they (and `root`) can touch.

use crate::error::VfsError;
use crate::journal::{decode_mode, encode_mode, VfsRecord};
use crate::path::VPath;
use std::collections::{BTreeMap, HashMap};
use wal::{Dec, Enc, Journal, Recovered};

/// Simplified POSIX-style permission bits: owner and world, read and write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// Owner may read.
    pub owner_read: bool,
    /// Owner may write.
    pub owner_write: bool,
    /// Everyone may read.
    pub world_read: bool,
    /// Everyone may write.
    pub world_write: bool,
}

impl Default for Mode {
    /// `rw-r--`: owner read/write, world read.
    fn default() -> Self {
        Mode {
            owner_read: true,
            owner_write: true,
            world_read: true,
            world_write: false,
        }
    }
}

impl Mode {
    /// `rw----`: private to the owner (home directories).
    pub fn private() -> Mode {
        Mode {
            owner_read: true,
            owner_write: true,
            world_read: false,
            world_write: false,
        }
    }

    /// `rw-rw-`: shared scratch space.
    pub fn shared() -> Mode {
        Mode {
            owner_read: true,
            owner_write: true,
            world_read: true,
            world_write: true,
        }
    }
}

/// Whether an entry is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// Metadata returned by [`Vfs::stat`] and [`Vfs::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    /// File or directory.
    pub kind: EntryKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Owning user.
    pub owner: String,
    /// Permission bits.
    pub mode: Mode,
    /// Logical modification stamp (monotonic per filesystem).
    pub mtime: u64,
}

/// One row of a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within the directory.
    pub name: String,
    /// Its metadata.
    pub stat: Stat,
}

#[derive(Debug, Clone)]
struct Meta {
    owner: String,
    mode: Mode,
    mtime: u64,
}

#[derive(Debug, Clone)]
enum Node {
    File {
        meta: Meta,
        data: Vec<u8>,
    },
    Dir {
        meta: Meta,
        children: BTreeMap<String, Node>,
    },
}

impl Node {
    fn meta(&self) -> &Meta {
        match self {
            Node::File { meta, .. } | Node::Dir { meta, .. } => meta,
        }
    }

    fn meta_mut(&mut self) -> &mut Meta {
        match self {
            Node::File { meta, .. } | Node::Dir { meta, .. } => meta,
        }
    }

    fn kind(&self) -> EntryKind {
        match self {
            Node::File { .. } => EntryKind::File,
            Node::Dir { .. } => EntryKind::Dir,
        }
    }

    fn size(&self) -> u64 {
        match self {
            Node::File { data, .. } => data.len() as u64,
            Node::Dir { .. } => 0,
        }
    }

    fn stat(&self) -> Stat {
        let m = self.meta();
        Stat {
            kind: self.kind(),
            size: self.size(),
            owner: m.owner.clone(),
            mode: m.mode,
            mtime: m.mtime,
        }
    }

    /// Total bytes of all files in this subtree, grouped by owner.
    fn usage_by_owner(&self, acc: &mut HashMap<String, u64>) {
        match self {
            Node::File { meta, data } => {
                *acc.entry(meta.owner.clone()).or_insert(0) += data.len() as u64;
            }
            Node::Dir { children, .. } => {
                for c in children.values() {
                    c.usage_by_owner(acc);
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct UserAccount {
    quota_limit: u64,
    quota_used: u64,
}

/// The superuser name; bypasses permission checks (but not quotas — root has
/// an unlimited quota instead).
pub const ROOT_USER: &str = "root";

/// The in-memory virtual filesystem.
#[derive(Debug)]
pub struct Vfs {
    root: Node,
    users: HashMap<String, UserAccount>,
    clock: u64,
    /// Durability log; `None` runs fully in memory (the default).
    journal: Option<Journal>,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// An empty filesystem containing `/` and `/home`, owned by root.
    pub fn new() -> Vfs {
        let meta = Meta {
            owner: ROOT_USER.to_string(),
            mode: Mode::default(),
            mtime: 0,
        };
        let mut root_children = BTreeMap::new();
        root_children.insert(
            "home".to_string(),
            Node::Dir {
                meta: meta.clone(),
                children: BTreeMap::new(),
            },
        );
        let mut users = HashMap::new();
        users.insert(
            ROOT_USER.to_string(),
            UserAccount {
                quota_limit: u64::MAX,
                quota_used: 0,
            },
        );
        Vfs {
            root: Node::Dir {
                meta,
                children: root_children,
            },
            users,
            clock: 1,
            journal: None,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Register a user with a byte quota and create `/home/<user>` (private).
    pub fn add_user(&mut self, user: &str, quota_bytes: u64) -> Result<(), VfsError> {
        self.add_user_inner(user, quota_bytes)?;
        self.log(|| VfsRecord::AddUser {
            user: user.to_string(),
            quota: quota_bytes,
        })
    }

    fn add_user_inner(&mut self, user: &str, quota_bytes: u64) -> Result<(), VfsError> {
        if self.users.contains_key(user) {
            return Err(VfsError::UserExists(user.to_string()));
        }
        if user.is_empty() || user.contains('/') || user.contains('\0') {
            return Err(VfsError::InvalidPath {
                path: user.to_string(),
                reason: "bad user name",
            });
        }
        self.users.insert(
            user.to_string(),
            UserAccount {
                quota_limit: quota_bytes,
                quota_used: 0,
            },
        );
        let home = VPath::parse("/home")?.join(user)?;
        self.mkdir_as(ROOT_USER, &home)?;
        // Hand the home dir to the user, private.
        let t = self.tick();
        let node = self.node_mut(&home)?;
        let m = node.meta_mut();
        m.owner = user.to_string();
        m.mode = Mode::private();
        m.mtime = t;
        Ok(())
    }

    /// The user's home directory path.
    pub fn home_of(&self, user: &str) -> Result<VPath, VfsError> {
        if !self.users.contains_key(user) {
            return Err(VfsError::NoSuchUser(user.to_string()));
        }
        VPath::parse("/home")?.join(user)
    }

    /// `(used, limit)` quota bytes for `user`.
    pub fn quota(&self, user: &str) -> Result<(u64, u64), VfsError> {
        self.users
            .get(user)
            .map(|a| (a.quota_used, a.quota_limit))
            .ok_or_else(|| VfsError::NoSuchUser(user.to_string()))
    }

    // ---- node navigation -------------------------------------------------

    fn node(&self, path: &VPath) -> Result<&Node, VfsError> {
        let mut cur = &self.root;
        for comp in path.components() {
            match cur {
                Node::Dir { children, .. } => {
                    cur = children
                        .get(comp)
                        .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
                }
                Node::File { .. } => return Err(VfsError::NotADirectory(path.to_string())),
            }
        }
        Ok(cur)
    }

    fn node_mut(&mut self, path: &VPath) -> Result<&mut Node, VfsError> {
        let mut cur = &mut self.root;
        for comp in path.components() {
            match cur {
                Node::Dir { children, .. } => {
                    cur = children
                        .get_mut(comp)
                        .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
                }
                Node::File { .. } => return Err(VfsError::NotADirectory(path.to_string())),
            }
        }
        Ok(cur)
    }

    fn exists_node(&self, path: &VPath) -> bool {
        self.node(path).is_ok()
    }

    // ---- permissions -----------------------------------------------------

    fn can_read(&self, user: &str, node: &Node) -> bool {
        if user == ROOT_USER {
            return true;
        }
        let m = node.meta();
        if m.owner == user {
            m.mode.owner_read
        } else {
            m.mode.world_read
        }
    }

    fn can_write(&self, user: &str, node: &Node) -> bool {
        if user == ROOT_USER {
            return true;
        }
        let m = node.meta();
        if m.owner == user {
            m.mode.owner_write
        } else {
            m.mode.world_write
        }
    }

    /// Require read ("traverse") permission on every proper ancestor
    /// directory of `path` — the POSIX execute-bit analogue that keeps a
    /// private home private even when files inside default to world-read.
    fn check_traverse(&self, user: &str, path: &VPath) -> Result<(), VfsError> {
        let mut cur = VPath::root();
        let comps = path.components();
        for comp in comps.iter().take(comps.len().saturating_sub(1)) {
            let node = self.node(&cur)?;
            if !self.can_read(user, node) {
                return Err(VfsError::PermissionDenied {
                    user: user.to_string(),
                    path: cur.to_string(),
                    op: "traverse",
                });
            }
            cur = cur.join(comp)?;
        }
        if !path.is_root() {
            let node = self.node(&cur)?;
            if !self.can_read(user, node) {
                return Err(VfsError::PermissionDenied {
                    user: user.to_string(),
                    path: cur.to_string(),
                    op: "traverse",
                });
            }
        }
        Ok(())
    }

    fn require_user(&self, user: &str) -> Result<(), VfsError> {
        if self.users.contains_key(user) {
            Ok(())
        } else {
            Err(VfsError::NoSuchUser(user.to_string()))
        }
    }

    /// Check the acting user can traverse into and modify `dir` (used for
    /// create/delete/move within a directory).
    fn check_dir_writable(&self, user: &str, dir: &VPath) -> Result<(), VfsError> {
        let node = self.node(dir)?;
        if node.kind() != EntryKind::Dir {
            return Err(VfsError::NotADirectory(dir.to_string()));
        }
        if !self.can_write(user, node) {
            return Err(VfsError::PermissionDenied {
                user: user.to_string(),
                path: dir.to_string(),
                op: "write",
            });
        }
        Ok(())
    }

    // ---- quota -----------------------------------------------------------

    fn charge(&mut self, user: &str, delta_new: u64, delta_freed: u64) -> Result<(), VfsError> {
        let acct = self
            .users
            .get_mut(user)
            .ok_or_else(|| VfsError::NoSuchUser(user.to_string()))?;
        let after_free = acct.quota_used.saturating_sub(delta_freed);
        if delta_new > 0 && after_free.saturating_add(delta_new) > acct.quota_limit {
            return Err(VfsError::QuotaExceeded {
                user: user.to_string(),
                used: after_free,
                limit: acct.quota_limit,
                requested: delta_new,
            });
        }
        acct.quota_used = after_free.saturating_add(delta_new);
        Ok(())
    }

    fn refund_subtree(&mut self, node: &Node) {
        let mut usage = HashMap::new();
        node.usage_by_owner(&mut usage);
        for (owner, bytes) in usage {
            if let Some(acct) = self.users.get_mut(&owner) {
                acct.quota_used = acct.quota_used.saturating_sub(bytes);
            }
        }
    }

    // ---- operations ------------------------------------------------------

    /// Create a directory (parent must exist and be writable by `user`).
    pub fn mkdir(&mut self, user: &str, path: &str) -> Result<(), VfsError> {
        let p = VPath::parse(path)?;
        self.mkdir_as(user, &p)?;
        self.log(|| VfsRecord::Mkdir {
            user: user.to_string(),
            path: path.to_string(),
        })
    }

    fn mkdir_as(&mut self, user: &str, p: &VPath) -> Result<(), VfsError> {
        self.require_user(user)?;
        self.check_traverse(user, p)?;
        let parent = p.parent().ok_or(VfsError::AlreadyExists("/".to_string()))?;
        self.check_dir_writable(user, &parent)?;
        if self.exists_node(p) {
            return Err(VfsError::AlreadyExists(p.to_string()));
        }
        let name = leaf_name(p)?;
        let t = self.tick();
        let meta = Meta {
            owner: user.to_string(),
            mode: Mode::default(),
            mtime: t,
        };
        match self.node_mut(&parent)? {
            Node::Dir { children, .. } => {
                children.insert(
                    name,
                    Node::Dir {
                        meta,
                        children: BTreeMap::new(),
                    },
                );
                Ok(())
            }
            Node::File { .. } => Err(VfsError::NotADirectory(parent.to_string())),
        }
    }

    /// Create all missing directories along `path`.
    pub fn mkdir_p(&mut self, user: &str, path: &str) -> Result<(), VfsError> {
        self.mkdir_p_inner(user, path)?;
        self.log(|| VfsRecord::MkdirP {
            user: user.to_string(),
            path: path.to_string(),
        })
    }

    fn mkdir_p_inner(&mut self, user: &str, path: &str) -> Result<(), VfsError> {
        let p = VPath::parse(path)?;
        let mut cur = VPath::root();
        for comp in p.components() {
            cur = cur.join(comp)?;
            if !self.exists_node(&cur) {
                self.mkdir_as(user, &cur)?;
            }
        }
        Ok(())
    }

    /// Write (create or overwrite) a file with `data`. Quota is charged to
    /// the *file owner* (the acting user for new files; unchanged for
    /// overwrites of files they can write).
    pub fn write(&mut self, user: &str, path: &str, data: Vec<u8>) -> Result<(), VfsError> {
        let payload = self.journal.is_some().then(|| {
            VfsRecord::Write {
                user: user.to_string(),
                path: path.to_string(),
                data: data.clone(),
            }
            .encode()
        });
        self.write_inner(user, path, data)?;
        match payload {
            Some(p) => self.log_payload(&p),
            None => Ok(()),
        }
    }

    fn write_inner(&mut self, user: &str, path: &str, data: Vec<u8>) -> Result<(), VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        let parent = p.parent().ok_or(VfsError::IsADirectory("/".to_string()))?;
        match self.node(&p) {
            Ok(Node::Dir { .. }) => Err(VfsError::IsADirectory(p.to_string())),
            Ok(node @ Node::File { .. }) => {
                if !self.can_write(user, node) {
                    return Err(VfsError::PermissionDenied {
                        user: user.to_string(),
                        path: p.to_string(),
                        op: "write",
                    });
                }
                let (owner, old_len) = (node.meta().owner.clone(), node.size());
                self.charge(&owner, data.len() as u64, old_len)?;
                let t = self.tick();
                if let Node::File { meta, data: d } = self.node_mut(&p)? {
                    *d = data;
                    meta.mtime = t;
                }
                Ok(())
            }
            Err(VfsError::NotFound(_)) => {
                self.check_dir_writable(user, &parent)?;
                let name = leaf_name(&p)?;
                self.charge(user, data.len() as u64, 0)?;
                let t = self.tick();
                let meta = Meta {
                    owner: user.to_string(),
                    mode: Mode::default(),
                    mtime: t,
                };
                match self.node_mut(&parent)? {
                    Node::Dir { children, .. } => {
                        children.insert(name, Node::File { meta, data });
                        Ok(())
                    }
                    Node::File { .. } => Err(VfsError::NotADirectory(parent.to_string())),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Append to an existing file (creating it if absent).
    pub fn append(&mut self, user: &str, path: &str, extra: &[u8]) -> Result<(), VfsError> {
        self.append_inner(user, path, extra)?;
        self.log(|| VfsRecord::Append {
            user: user.to_string(),
            path: path.to_string(),
            data: extra.to_vec(),
        })
    }

    fn append_inner(&mut self, user: &str, path: &str, extra: &[u8]) -> Result<(), VfsError> {
        let p = VPath::parse(path)?;
        match self.node(&p) {
            Ok(Node::File { data, .. }) => {
                let mut combined = data.clone();
                combined.extend_from_slice(extra);
                self.write_inner(user, path, combined)
            }
            Ok(Node::Dir { .. }) => Err(VfsError::IsADirectory(p.to_string())),
            Err(VfsError::NotFound(_)) => self.write_inner(user, path, extra.to_vec()),
            Err(e) => Err(e),
        }
    }

    /// Read a file's contents.
    pub fn read(&self, user: &str, path: &str) -> Result<Vec<u8>, VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        let node = self.node(&p)?;
        if !self.can_read(user, node) {
            return Err(VfsError::PermissionDenied {
                user: user.to_string(),
                path: p.to_string(),
                op: "read",
            });
        }
        match node {
            Node::File { data, .. } => Ok(data.clone()),
            Node::Dir { .. } => Err(VfsError::IsADirectory(p.to_string())),
        }
    }

    /// List a directory's entries (sorted by name).
    pub fn list(&self, user: &str, path: &str) -> Result<Vec<DirEntry>, VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        let node = self.node(&p)?;
        if !self.can_read(user, node) {
            return Err(VfsError::PermissionDenied {
                user: user.to_string(),
                path: p.to_string(),
                op: "read",
            });
        }
        match node {
            Node::Dir { children, .. } => Ok(children
                .iter()
                .map(|(name, n)| DirEntry {
                    name: name.clone(),
                    stat: n.stat(),
                })
                .collect()),
            Node::File { .. } => Err(VfsError::NotADirectory(p.to_string())),
        }
    }

    /// Metadata for a path.
    pub fn stat(&self, user: &str, path: &str) -> Result<Stat, VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        // stat requires read on the *parent* directory (or the node itself at root).
        if let Some(parent) = p.parent() {
            let pn = self.node(&parent)?;
            if !self.can_read(user, pn) {
                return Err(VfsError::PermissionDenied {
                    user: user.to_string(),
                    path: parent.to_string(),
                    op: "read",
                });
            }
        }
        Ok(self.node(&p)?.stat())
    }

    /// True when the path exists (no permission check; used internally by
    /// the portal for existence probes within the caller's own home).
    pub fn exists(&self, path: &str) -> bool {
        VPath::parse(path)
            .map(|p| self.exists_node(&p))
            .unwrap_or(false)
    }

    /// Change an entry's permission bits (owner or root only).
    pub fn chmod(&mut self, user: &str, path: &str, mode: Mode) -> Result<(), VfsError> {
        self.chmod_inner(user, path, mode)?;
        self.log(|| VfsRecord::Chmod {
            user: user.to_string(),
            path: path.to_string(),
            mode,
        })
    }

    fn chmod_inner(&mut self, user: &str, path: &str, mode: Mode) -> Result<(), VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        let node = self.node(&p)?;
        if user != ROOT_USER && node.meta().owner != user {
            return Err(VfsError::PermissionDenied {
                user: user.to_string(),
                path: p.to_string(),
                op: "chmod",
            });
        }
        let t = self.tick();
        let m = self.node_mut(&p)?.meta_mut();
        m.mode = mode;
        m.mtime = t;
        Ok(())
    }

    /// Remove a file or *empty* directory.
    pub fn remove(&mut self, user: &str, path: &str) -> Result<(), VfsError> {
        self.remove_inner(user, path, false)?;
        self.log(|| VfsRecord::Remove {
            user: user.to_string(),
            path: path.to_string(),
        })
    }

    /// Remove a file or directory subtree.
    pub fn remove_recursive(&mut self, user: &str, path: &str) -> Result<(), VfsError> {
        self.remove_inner(user, path, true)?;
        self.log(|| VfsRecord::RemoveRecursive {
            user: user.to_string(),
            path: path.to_string(),
        })
    }

    fn remove_inner(&mut self, user: &str, path: &str, recursive: bool) -> Result<(), VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        let parent = p.parent().ok_or(VfsError::PermissionDenied {
            user: user.to_string(),
            path: "/".to_string(),
            op: "remove",
        })?;
        self.check_dir_writable(user, &parent)?;
        let node = self.node(&p)?;
        if let Node::Dir { children, .. } = node {
            if !children.is_empty() && !recursive {
                return Err(VfsError::DirectoryNotEmpty(p.to_string()));
            }
        }
        let name = leaf_name(&p)?;
        let removed = match self.node_mut(&parent)? {
            Node::Dir { children, .. } => children
                .remove(&name)
                .ok_or_else(|| VfsError::NotFound(p.to_string()))?,
            Node::File { .. } => return Err(VfsError::NotADirectory(parent.to_string())),
        };
        self.refund_subtree(&removed);
        let t = self.tick();
        self.node_mut(&parent)?.meta_mut().mtime = t;
        Ok(())
    }

    /// Copy a file or directory subtree. The copy is owned by `user` and
    /// charged to their quota.
    pub fn copy(&mut self, user: &str, from: &str, to: &str) -> Result<(), VfsError> {
        self.copy_inner(user, from, to)?;
        self.log(|| VfsRecord::Copy {
            user: user.to_string(),
            from: from.to_string(),
            to: to.to_string(),
        })
    }

    fn copy_inner(&mut self, user: &str, from: &str, to: &str) -> Result<(), VfsError> {
        let pf = VPath::parse(from)?;
        let pt = VPath::parse(to)?;
        self.require_user(user)?;
        self.check_traverse(user, &pf)?;
        self.check_traverse(user, &pt)?;
        let src = self.node(&pf)?;
        if !self.can_read(user, src) {
            return Err(VfsError::PermissionDenied {
                user: user.to_string(),
                path: pf.to_string(),
                op: "read",
            });
        }
        if pt.starts_with(&pf) && src.kind() == EntryKind::Dir {
            return Err(VfsError::MoveIntoSelf {
                from: pf.to_string(),
                to: pt.to_string(),
            });
        }
        if self.exists_node(&pt) {
            return Err(VfsError::AlreadyExists(pt.to_string()));
        }
        let dest_parent = pt
            .parent()
            .ok_or(VfsError::AlreadyExists("/".to_string()))?;
        self.check_dir_writable(user, &dest_parent)?;
        // Charge the full subtree size to the copier before mutating.
        let mut usage = HashMap::new();
        src.usage_by_owner(&mut usage);
        let total: u64 = usage.values().sum();
        self.charge(user, total, 0)?;
        let name = leaf_name(&pt)?;
        let t = self.tick();
        let mut clone = self.node(&pf)?.clone();
        rebrand(&mut clone, user, t);
        match self.node_mut(&dest_parent)? {
            Node::Dir { children, .. } => {
                children.insert(name, clone);
                Ok(())
            }
            Node::File { .. } => Err(VfsError::NotADirectory(dest_parent.to_string())),
        }
    }

    /// Move/rename a file or directory. Ownership and quota charges follow
    /// the entry unchanged.
    pub fn rename(&mut self, user: &str, from: &str, to: &str) -> Result<(), VfsError> {
        self.rename_inner(user, from, to)?;
        self.log(|| VfsRecord::Rename {
            user: user.to_string(),
            from: from.to_string(),
            to: to.to_string(),
        })
    }

    fn rename_inner(&mut self, user: &str, from: &str, to: &str) -> Result<(), VfsError> {
        let pf = VPath::parse(from)?;
        let pt = VPath::parse(to)?;
        self.require_user(user)?;
        self.check_traverse(user, &pf)?;
        self.check_traverse(user, &pt)?;
        if pt.starts_with(&pf) && pf != pt {
            return Err(VfsError::MoveIntoSelf {
                from: pf.to_string(),
                to: pt.to_string(),
            });
        }
        if self.exists_node(&pt) {
            return Err(VfsError::AlreadyExists(pt.to_string()));
        }
        let src_parent = pf.parent().ok_or(VfsError::PermissionDenied {
            user: user.to_string(),
            path: "/".to_string(),
            op: "move",
        })?;
        let dst_parent = pt
            .parent()
            .ok_or(VfsError::AlreadyExists("/".to_string()))?;
        self.node(&pf)?; // existence check before any mutation
        self.check_dir_writable(user, &src_parent)?;
        self.check_dir_writable(user, &dst_parent)?;
        let name_from = leaf_name(&pf)?;
        let name_to = leaf_name(&pt)?;
        let taken = match self.node_mut(&src_parent)? {
            Node::Dir { children, .. } => children
                .remove(&name_from)
                .ok_or_else(|| VfsError::NotFound(pf.to_string()))?,
            Node::File { .. } => return Err(VfsError::NotADirectory(src_parent.to_string())),
        };
        let t = self.tick();
        match self.node_mut(&dst_parent)? {
            Node::Dir { children, .. } => {
                children.insert(name_to, taken);
            }
            Node::File { .. } => return Err(VfsError::NotADirectory(dst_parent.to_string())),
        }
        self.node_mut(&src_parent)?.meta_mut().mtime = t;
        self.node_mut(&dst_parent)?.meta_mut().mtime = t;
        Ok(())
    }

    /// Recursively walk a subtree, yielding `(path, stat)` pairs depth-first.
    pub fn walk(&self, user: &str, path: &str) -> Result<Vec<(String, Stat)>, VfsError> {
        let p = VPath::parse(path)?;
        self.require_user(user)?;
        self.check_traverse(user, &p)?;
        let node = self.node(&p)?;
        if !self.can_read(user, node) {
            return Err(VfsError::PermissionDenied {
                user: user.to_string(),
                path: p.to_string(),
                op: "read",
            });
        }
        let mut out = Vec::new();
        walk_inner(node, &p.to_string(), &mut out);
        Ok(out)
    }

    // ---- durability ------------------------------------------------------

    /// Attach a durability journal. Subsequent mutations are logged to it;
    /// open the journal (and apply its [`Recovered`] state via
    /// [`Vfs::recover`]) *before* attaching.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Force buffered log records to stable storage (no-op without journal).
    pub fn flush_wal(&mut self) -> Result<(), VfsError> {
        match self.journal.as_mut() {
            Some(j) => j.flush().map_err(|e| VfsError::Wal(e.to_string())),
            None => Ok(()),
        }
    }

    /// Highest LSN known durable, `None` when no journal is attached.
    pub fn wal_durable_lsn(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.durable_lsn())
    }

    /// Highest LSN appended (durable or not), `None` without a journal.
    pub fn wal_last_lsn(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.last_lsn())
    }

    fn log(&mut self, make: impl FnOnce() -> VfsRecord) -> Result<(), VfsError> {
        if self.journal.is_none() {
            return Ok(());
        }
        let payload = make().encode();
        self.log_payload(&payload)
    }

    fn log_payload(&mut self, payload: &[u8]) -> Result<(), VfsError> {
        // Take the journal so a snapshot can borrow `self` while appending.
        let Some(mut j) = self.journal.take() else {
            return Ok(());
        };
        let res = j.append(payload).and_then(|_| {
            if j.wants_snapshot() {
                let snap = self.snapshot_bytes();
                j.install_snapshot(&snap)?;
            }
            Ok(())
        });
        self.journal = Some(j);
        res.map(|_| ()).map_err(|e| VfsError::Wal(e.to_string()))
    }

    /// Re-execute one logged record (replay path; nothing is re-logged).
    pub fn apply(&mut self, rec: &VfsRecord) -> Result<(), VfsError> {
        match rec {
            VfsRecord::AddUser { user, quota } => self.add_user_inner(user, *quota),
            VfsRecord::Mkdir { user, path } => {
                let p = VPath::parse(path)?;
                self.mkdir_as(user, &p)
            }
            VfsRecord::MkdirP { user, path } => self.mkdir_p_inner(user, path),
            VfsRecord::Write { user, path, data } => self.write_inner(user, path, data.clone()),
            VfsRecord::Append { user, path, data } => self.append_inner(user, path, data),
            VfsRecord::Chmod { user, path, mode } => self.chmod_inner(user, path, *mode),
            VfsRecord::Remove { user, path } => self.remove_inner(user, path, false),
            VfsRecord::RemoveRecursive { user, path } => self.remove_inner(user, path, true),
            VfsRecord::Copy { user, from, to } => self.copy_inner(user, from, to),
            VfsRecord::Rename { user, from, to } => self.rename_inner(user, from, to),
        }
    }

    /// Canonical byte serialization of the entire filesystem (the snapshot
    /// payload). Deterministic: equal filesystems encode identically, which
    /// is what the crash-recovery property test compares.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(SNAP_VERSION).u64(self.clock);
        let mut names: Vec<&String> = self.users.keys().collect();
        names.sort();
        e.u32(names.len() as u32);
        for name in names {
            let a = &self.users[name];
            e.str(name).u64(a.quota_limit).u64(a.quota_used);
        }
        encode_node(&mut e, &self.root);
        e.into_bytes()
    }

    /// Rebuild a filesystem from a [`Vfs::snapshot_bytes`] payload.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Vfs, VfsError> {
        let mut d = Dec::new(bytes);
        if d.u32().map_err(bad_snap)? != SNAP_VERSION {
            return Err(VfsError::Wal(
                "unsupported vfs snapshot version".to_string(),
            ));
        }
        let clock = d.u64().map_err(bad_snap)?;
        let n_users = d.u32().map_err(bad_snap)?;
        let mut users = HashMap::new();
        for _ in 0..n_users {
            let name = d.str().map_err(bad_snap)?;
            let quota_limit = d.u64().map_err(bad_snap)?;
            let quota_used = d.u64().map_err(bad_snap)?;
            users.insert(
                name,
                UserAccount {
                    quota_limit,
                    quota_used,
                },
            );
        }
        let root = decode_node(&mut d, 0).map_err(bad_snap)?;
        d.finish().map_err(bad_snap)?;
        Ok(Vfs {
            root,
            users,
            clock,
            journal: None,
        })
    }

    /// Rebuild filesystem state from what [`wal::Journal::open`] recovered:
    /// seed from the snapshot (or a fresh filesystem), then replay the log
    /// tail. Returns the filesystem and how many records failed to replay —
    /// individual bad records are skipped, not fatal, so one corrupt entry
    /// cannot take the whole portal down.
    pub fn recover(recovered: &Recovered) -> Result<(Vfs, u64), VfsError> {
        let mut fs = match &recovered.snapshot {
            Some(bytes) => Vfs::from_snapshot(bytes)?,
            None => Vfs::new(),
        };
        let mut errors = 0u64;
        for (_lsn, payload) in &recovered.records {
            match VfsRecord::decode(payload) {
                Ok(rec) => {
                    if fs.apply(&rec).is_err() {
                        errors += 1;
                    }
                }
                Err(_) => errors += 1,
            }
        }
        Ok((fs, errors))
    }
}

const SNAP_VERSION: u32 = 1;

/// Guard against stack exhaustion on adversarial snapshot bytes.
const MAX_SNAP_DEPTH: u32 = 512;

fn bad_snap(_: wal::CodecError) -> VfsError {
    VfsError::Wal("truncated or malformed vfs snapshot".to_string())
}

/// The final path component; a typed error for `/`, which has no name and
/// can never be created, removed, copied onto, or renamed.
fn leaf_name(p: &VPath) -> Result<String, VfsError> {
    p.file_name()
        .map(str::to_string)
        .ok_or(VfsError::InvalidPath {
            path: "/".to_string(),
            reason: "the root directory has no name",
        })
}

fn encode_node(e: &mut Enc, node: &Node) {
    let m = node.meta();
    match node {
        Node::File { data, .. } => {
            e.u8(0)
                .str(&m.owner)
                .u8(encode_mode(m.mode))
                .u64(m.mtime)
                .bytes(data);
        }
        Node::Dir { children, .. } => {
            e.u8(1)
                .str(&m.owner)
                .u8(encode_mode(m.mode))
                .u64(m.mtime)
                .u32(children.len() as u32);
            for (name, child) in children {
                e.str(name);
                encode_node(e, child);
            }
        }
    }
}

fn decode_node(d: &mut Dec, depth: u32) -> Result<Node, wal::CodecError> {
    if depth > MAX_SNAP_DEPTH {
        return Err(wal::CodecError("vfs snapshot nests too deep"));
    }
    let tag = d.u8()?;
    let meta = Meta {
        owner: d.str()?,
        mode: decode_mode(d.u8()?),
        mtime: d.u64()?,
    };
    match tag {
        0 => Ok(Node::File {
            meta,
            data: d.bytes()?.to_vec(),
        }),
        1 => {
            let n = d.u32()?;
            let mut children = BTreeMap::new();
            for _ in 0..n {
                let name = d.str()?;
                children.insert(name, decode_node(d, depth + 1)?);
            }
            Ok(Node::Dir { meta, children })
        }
        _ => Err(wal::CodecError("bad node tag in vfs snapshot")),
    }
}

fn walk_inner(node: &Node, path: &str, out: &mut Vec<(String, Stat)>) {
    out.push((path.to_string(), node.stat()));
    if let Node::Dir { children, .. } = node {
        for (name, child) in children {
            let child_path = if path == "/" {
                format!("/{name}")
            } else {
                format!("{path}/{name}")
            };
            walk_inner(child, &child_path, out);
        }
    }
}

fn rebrand(node: &mut Node, owner: &str, mtime: u64) {
    let m = node.meta_mut();
    m.owner = owner.to_string();
    m.mtime = mtime;
    if let Node::Dir { children, .. } = node {
        for c in children.values_mut() {
            rebrand(c, owner, mtime);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with_alice() -> Vfs {
        let mut fs = Vfs::new();
        fs.add_user("alice", 10_000).unwrap();
        fs
    }

    #[test]
    fn new_fs_has_home() {
        let fs = Vfs::new();
        assert!(fs.exists("/home"));
        assert!(!fs.exists("/tmp"));
    }

    #[test]
    fn add_user_creates_private_home() {
        let fs = fs_with_alice();
        let st = fs.stat("root", "/home/alice").unwrap();
        assert_eq!(st.kind, EntryKind::Dir);
        assert_eq!(st.owner, "alice");
        assert!(!st.mode.world_read);
    }

    #[test]
    fn duplicate_user_rejected() {
        let mut fs = fs_with_alice();
        assert_eq!(
            fs.add_user("alice", 1),
            Err(VfsError::UserExists("alice".into()))
        );
        assert!(fs.add_user("bad/name", 1).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = fs_with_alice();
        fs.write("alice", "/home/alice/a.txt", b"hello".to_vec())
            .unwrap();
        assert_eq!(fs.read("alice", "/home/alice/a.txt").unwrap(), b"hello");
        let (used, _) = fs.quota("alice").unwrap();
        assert_eq!(used, 5);
    }

    #[test]
    fn overwrite_adjusts_quota_by_delta() {
        let mut fs = fs_with_alice();
        fs.write("alice", "/home/alice/a", vec![0; 100]).unwrap();
        fs.write("alice", "/home/alice/a", vec![0; 40]).unwrap();
        assert_eq!(fs.quota("alice").unwrap().0, 40);
    }

    #[test]
    fn quota_enforced() {
        let mut fs = Vfs::new();
        fs.add_user("bob", 10).unwrap();
        assert!(fs.write("bob", "/home/bob/a", vec![0; 10]).is_ok());
        let err = fs.write("bob", "/home/bob/b", vec![0; 1]).unwrap_err();
        assert!(matches!(err, VfsError::QuotaExceeded { .. }));
        // Overwriting within budget still works (delta accounting).
        assert!(fs.write("bob", "/home/bob/a", vec![0; 5]).is_ok());
    }

    #[test]
    fn remove_refunds_quota() {
        let mut fs = fs_with_alice();
        fs.write("alice", "/home/alice/a", vec![0; 100]).unwrap();
        fs.remove("alice", "/home/alice/a").unwrap();
        assert_eq!(fs.quota("alice").unwrap().0, 0);
    }

    #[test]
    fn other_users_cannot_enter_private_home() {
        let mut fs = fs_with_alice();
        fs.add_user("bob", 1_000).unwrap();
        fs.write("alice", "/home/alice/secret", b"x".to_vec())
            .unwrap();
        assert!(matches!(
            fs.read("bob", "/home/alice/secret"),
            Err(VfsError::PermissionDenied { .. })
        ));
        assert!(matches!(
            fs.write("bob", "/home/alice/drop.txt", vec![]),
            Err(VfsError::PermissionDenied { .. })
        ));
        assert!(matches!(
            fs.list("bob", "/home/alice"),
            Err(VfsError::PermissionDenied { .. })
        ));
        // Root can.
        assert_eq!(fs.read("root", "/home/alice/secret").unwrap(), b"x");
    }

    #[test]
    fn chmod_shares_a_file() {
        let mut fs = fs_with_alice();
        fs.add_user("bob", 1_000).unwrap();
        fs.write("alice", "/home/alice/paper.txt", b"draft".to_vec())
            .unwrap();
        fs.chmod("alice", "/home/alice", Mode::default()).unwrap(); // world can traverse listing
        assert_eq!(fs.read("bob", "/home/alice/paper.txt").unwrap(), b"draft");
        assert!(matches!(
            fs.chmod("bob", "/home/alice/paper.txt", Mode::shared()),
            Err(VfsError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn mkdir_and_listing() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/src").unwrap();
        fs.write("alice", "/home/alice/src/main.c", b"x".to_vec())
            .unwrap();
        fs.write("alice", "/home/alice/readme", b"y".to_vec())
            .unwrap();
        let names: Vec<_> = fs
            .list("alice", "/home/alice")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["readme", "src"]);
    }

    #[test]
    fn mkdir_p_creates_chain() {
        let mut fs = fs_with_alice();
        fs.mkdir_p("alice", "/home/alice/a/b/c").unwrap();
        assert!(fs.exists("/home/alice/a/b/c"));
        // Idempotent.
        fs.mkdir_p("alice", "/home/alice/a/b/c").unwrap();
    }

    #[test]
    fn remove_nonempty_dir_needs_recursive() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/d").unwrap();
        fs.write("alice", "/home/alice/d/f", vec![0; 7]).unwrap();
        assert!(matches!(
            fs.remove("alice", "/home/alice/d"),
            Err(VfsError::DirectoryNotEmpty(_))
        ));
        fs.remove_recursive("alice", "/home/alice/d").unwrap();
        assert!(!fs.exists("/home/alice/d"));
        assert_eq!(fs.quota("alice").unwrap().0, 0);
    }

    #[test]
    fn rename_moves_subtree() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/old").unwrap();
        fs.write("alice", "/home/alice/old/f", b"data".to_vec())
            .unwrap();
        fs.rename("alice", "/home/alice/old", "/home/alice/new")
            .unwrap();
        assert!(!fs.exists("/home/alice/old"));
        assert_eq!(fs.read("alice", "/home/alice/new/f").unwrap(), b"data");
        assert_eq!(fs.quota("alice").unwrap().0, 4);
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/d").unwrap();
        assert!(matches!(
            fs.rename("alice", "/home/alice/d", "/home/alice/d/inner"),
            Err(VfsError::MoveIntoSelf { .. })
        ));
    }

    #[test]
    fn rename_onto_existing_rejected() {
        let mut fs = fs_with_alice();
        fs.write("alice", "/home/alice/a", vec![]).unwrap();
        fs.write("alice", "/home/alice/b", vec![]).unwrap();
        assert!(matches!(
            fs.rename("alice", "/home/alice/a", "/home/alice/b"),
            Err(VfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn copy_file_charges_copier() {
        let mut fs = fs_with_alice();
        fs.add_user("bob", 1_000).unwrap();
        fs.write("alice", "/home/alice/pub.txt", vec![0; 50])
            .unwrap();
        fs.chmod("alice", "/home/alice", Mode::default()).unwrap();
        fs.copy("bob", "/home/alice/pub.txt", "/home/bob/mine.txt")
            .unwrap();
        assert_eq!(fs.quota("bob").unwrap().0, 50);
        assert_eq!(fs.quota("alice").unwrap().0, 50);
        assert_eq!(fs.stat("bob", "/home/bob/mine.txt").unwrap().owner, "bob");
    }

    #[test]
    fn copy_directory_recursive() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/proj").unwrap();
        fs.write("alice", "/home/alice/proj/a", vec![1; 3]).unwrap();
        fs.mkdir("alice", "/home/alice/proj/sub").unwrap();
        fs.write("alice", "/home/alice/proj/sub/b", vec![2; 4])
            .unwrap();
        fs.copy("alice", "/home/alice/proj", "/home/alice/proj2")
            .unwrap();
        assert_eq!(
            fs.read("alice", "/home/alice/proj2/sub/b").unwrap(),
            vec![2; 4]
        );
        assert_eq!(fs.quota("alice").unwrap().0, 14);
    }

    #[test]
    fn copy_dir_into_itself_rejected() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/d").unwrap();
        assert!(matches!(
            fs.copy("alice", "/home/alice/d", "/home/alice/d/copy"),
            Err(VfsError::MoveIntoSelf { .. })
        ));
    }

    #[test]
    fn append_extends_and_creates() {
        let mut fs = fs_with_alice();
        fs.append("alice", "/home/alice/log", b"one\n").unwrap();
        fs.append("alice", "/home/alice/log", b"two\n").unwrap();
        assert_eq!(fs.read("alice", "/home/alice/log").unwrap(), b"one\ntwo\n");
        assert_eq!(fs.quota("alice").unwrap().0, 8);
    }

    #[test]
    fn walk_lists_subtree() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/x").unwrap();
        fs.write("alice", "/home/alice/x/f", vec![]).unwrap();
        let paths: Vec<_> = fs
            .walk("alice", "/home/alice")
            .unwrap()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(
            paths,
            vec!["/home/alice", "/home/alice/x", "/home/alice/x/f"]
        );
    }

    #[test]
    fn read_dir_as_file_errors() {
        let fs = fs_with_alice();
        assert!(matches!(
            fs.read("alice", "/home/alice"),
            Err(VfsError::IsADirectory(_))
        ));
        assert!(fs.list("root", "/home/alice/../..").is_ok());
    }

    #[test]
    fn path_through_file_is_not_a_directory() {
        let mut fs = fs_with_alice();
        fs.write("alice", "/home/alice/f", vec![]).unwrap();
        assert!(matches!(
            fs.read("alice", "/home/alice/f/deeper"),
            Err(VfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn unknown_user_rejected_everywhere() {
        let mut fs = Vfs::new();
        assert!(matches!(
            fs.write("ghost", "/x", vec![]),
            Err(VfsError::NoSuchUser(_))
        ));
        assert!(matches!(
            fs.read("ghost", "/home"),
            Err(VfsError::NoSuchUser(_))
        ));
        assert!(matches!(fs.home_of("ghost"), Err(VfsError::NoSuchUser(_))));
    }

    #[test]
    fn mtime_advances_on_modification() {
        let mut fs = fs_with_alice();
        fs.write("alice", "/home/alice/f", b"1".to_vec()).unwrap();
        let t1 = fs.stat("alice", "/home/alice/f").unwrap().mtime;
        fs.write("alice", "/home/alice/f", b"2".to_vec()).unwrap();
        let t2 = fs.stat("alice", "/home/alice/f").unwrap().mtime;
        assert!(t2 > t1);
    }

    #[test]
    fn root_path_mutations_return_typed_errors() {
        let mut fs = fs_with_alice();
        assert!(fs.remove("root", "/").is_err());
        assert!(fs.copy("root", "/home/alice", "/").is_err());
        assert!(fs.rename("root", "/home", "/").is_err());
        assert!(fs.mkdir("root", "/").is_err());
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let mut fs = fs_with_alice();
        fs.mkdir("alice", "/home/alice/src").unwrap();
        fs.write("alice", "/home/alice/src/a.c", b"int main(){}".to_vec())
            .unwrap();
        fs.chmod("alice", "/home/alice/src", Mode::shared())
            .unwrap();
        let snap = fs.snapshot_bytes();
        let restored = Vfs::from_snapshot(&snap).unwrap();
        assert_eq!(restored.snapshot_bytes(), snap);
        assert_eq!(restored.quota("alice").unwrap(), fs.quota("alice").unwrap());
    }

    #[test]
    fn corrupt_snapshot_bytes_rejected_not_panic() {
        assert!(matches!(Vfs::from_snapshot(&[]), Err(VfsError::Wal(_))));
        let mut snap = fs_with_alice().snapshot_bytes();
        snap.truncate(snap.len() / 2);
        assert!(matches!(Vfs::from_snapshot(&snap), Err(VfsError::Wal(_))));
    }

    #[test]
    fn journaled_history_replays_to_identical_state() {
        use wal::{FsyncPolicy, Journal, MemStorage};
        let storage = MemStorage::new();
        let (j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 0).unwrap();
        let mut fs = Vfs::new();
        fs.attach_journal(j);
        fs.add_user("alice", 10_000).unwrap();
        fs.add_user("bob", 1_000).unwrap();
        fs.mkdir("alice", "/home/alice/src").unwrap();
        fs.write("alice", "/home/alice/src/main.c", b"int main(){}".to_vec())
            .unwrap();
        fs.append("alice", "/home/alice/src/main.c", b"\n").unwrap();
        fs.chmod("alice", "/home/alice", Mode::default()).unwrap();
        fs.copy("bob", "/home/alice/src/main.c", "/home/bob/copy.c")
            .unwrap();
        fs.rename("alice", "/home/alice/src/main.c", "/home/alice/src/app.c")
            .unwrap();
        fs.mkdir_p("alice", "/home/alice/a/b/c").unwrap();
        fs.remove_recursive("alice", "/home/alice/a").unwrap();
        let want = fs.snapshot_bytes();
        drop(fs); // "crash"

        let (_, rec) = Journal::open(Box::new(storage), FsyncPolicy::Always, 0).unwrap();
        let (recovered, replay_errors) = Vfs::recover(&rec).unwrap();
        assert_eq!(replay_errors, 0);
        assert_eq!(recovered.snapshot_bytes(), want);
    }

    #[test]
    fn snapshot_compaction_midstream_preserves_state() {
        use wal::{FsyncPolicy, Journal, MemStorage};
        let storage = MemStorage::new();
        // Snapshot every 3 records so compaction fires mid-history.
        let (j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 3).unwrap();
        let mut fs = Vfs::new();
        fs.attach_journal(j);
        fs.add_user("alice", 100_000).unwrap();
        for i in 0..10 {
            fs.write("alice", &format!("/home/alice/f{i}"), vec![i as u8; 10])
                .unwrap();
        }
        let want = fs.snapshot_bytes();
        drop(fs);

        let (_, rec) = Journal::open(Box::new(storage), FsyncPolicy::Always, 3).unwrap();
        assert!(rec.report.snapshot_lsn.is_some(), "compaction never fired");
        let (recovered, replay_errors) = Vfs::recover(&rec).unwrap();
        assert_eq!(replay_errors, 0);
        assert_eq!(recovered.snapshot_bytes(), want);
    }

    #[test]
    fn failed_operations_are_not_logged() {
        use wal::{FsyncPolicy, Journal, MemStorage};
        let storage = MemStorage::new();
        let (j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 0).unwrap();
        let mut fs = Vfs::new();
        fs.attach_journal(j);
        fs.add_user("bob", 10).unwrap();
        fs.write("bob", "/home/bob/a", vec![0; 10]).unwrap();
        // Over quota: fails in memory, must leave no record behind.
        assert!(fs.write("bob", "/home/bob/b", vec![0; 1]).is_err());
        assert!(fs.read("bob", "/home/bob/missing").is_err());
        let want = fs.snapshot_bytes();
        drop(fs);

        let (_, rec) = Journal::open(Box::new(storage), FsyncPolicy::Always, 0).unwrap();
        assert_eq!(rec.records.len(), 2); // add_user + one successful write
        let (recovered, replay_errors) = Vfs::recover(&rec).unwrap();
        assert_eq!(replay_errors, 0);
        assert_eq!(recovered.snapshot_bytes(), want);
    }
}
