//! # vfs — the portal's virtual filesystem
//!
//! The portal must "provide facilities for file manipulation, like directory
//! browsing, file uploading and downloading" (§II) and "incorporated a file
//! browser allowing the download, and upload of multiple files, their
//! editing and basic file manipulations like copy, move, rename" (§IV).
//!
//! This crate is that substrate: an in-memory hierarchical filesystem with
//! per-user home directories, owner/world permission bits, per-user byte
//! quotas, and the full operation set the portal exposes (mkdir, list,
//! read, write, append, copy, move/rename, delete, stat).
//!
//! ```
//! use vfs::{Vfs, Mode};
//!
//! let mut fs = Vfs::new();
//! fs.add_user("alice", 1 << 20).unwrap();
//! fs.write("alice", "/home/alice/hello.c", b"int main(){}".to_vec()).unwrap();
//! let data = fs.read("alice", "/home/alice/hello.c").unwrap();
//! assert_eq!(data, b"int main(){}");
//! assert_eq!(fs.list("alice", "/home/alice").unwrap().len(), 1);
//! # let _ = Mode::default();
//! ```

pub mod error;
pub mod fs;
pub mod journal;
pub mod path;

pub use error::VfsError;
pub use fs::{DirEntry, EntryKind, Mode, Stat, Vfs};
pub use journal::VfsRecord;
pub use path::VPath;
