//! Render the paper's three tables, paper value beside measured value.
//!
//! These are the functions the `table1_labs` / `table2_exams` /
//! `table3_survey` bench targets and the `course_session` example call.

use crate::cohort::Cohort;
use crate::exams::ExamModel;
use crate::survey::{questions, SurveyModel};
use labs::LabId;

/// A simple two-or-three column table for terminal output.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Table 1 — passing rates of the programming assignments: run the cohort
/// through the real autograder and compare with the paper.
pub fn table1(seed: u64) -> Table {
    let cohort = Cohort::new(seed);
    let outcomes = cohort.run_labs();
    let rates = Cohort::lab_passing_rates(&outcomes);
    let rows = LabId::ALL
        .iter()
        .zip(&rates)
        .map(|(lab, r)| {
            vec![
                lab.title().to_string(),
                format!("{:.0}%", lab.paper_passing_rate() * 100.0),
                format!("{:.0}%", r * 100.0),
            ]
        })
        .collect();
    Table {
        title: "Table 1: Multicore hands-on experience passing rates (19 students)".into(),
        headers: vec!["Assignment".into(), "Paper".into(), "Reproduced".into()],
        rows,
    }
}

/// Table 2 — exam passing rates (all students / course passers).
pub fn table2(seed: u64) -> Table {
    let cohort = Cohort::new(seed);
    let outcomes = cohort.run_labs();
    let exams = ExamModel::default().run(&cohort, &outcomes, seed);
    let rows = vec![
        vec![
            "Midterm".into(),
            "17%".into(),
            format!("{:.0}%", exams.midterm_rate_all() * 100.0),
            "33%".into(),
            format!("{:.0}%", exams.midterm_rate_passers() * 100.0),
        ],
        vec![
            "Final".into(),
            "22%".into(),
            format!("{:.0}%", exams.final_rate_all() * 100.0),
            "80%".into(),
            format!("{:.0}%", exams.final_rate_passers() * 100.0),
        ],
    ];
    Table {
        title: "Table 2: Multicore exam-question passing rates".into(),
        headers: vec![
            "Exam".into(),
            "Paper all".into(),
            "Repro all".into(),
            "Paper passers".into(),
            "Repro passers".into(),
        ],
        rows,
    }
}

/// Table 3 — entrance vs exit survey means.
pub fn table3(seed: u64) -> Table {
    let (entrance, exit) = SurveyModel::default().run(seed);
    let (em, xm) = (entrance.means(), exit.means());
    let rows = questions()
        .iter()
        .enumerate()
        .map(|(i, q)| {
            vec![
                format!("Q{}", q.number),
                format!("{:.2}", q.paper_entrance),
                format!("{:.2}", em[i]),
                format!("{:.2}", q.paper_exit),
                format!("{:.2}", xm[i]),
            ]
        })
        .collect();
    Table {
        title: "Table 3: Entrance vs exit survey means".into(),
        headers: vec![
            "Question".into(),
            "Paper entr.".into(),
            "Repro entr.".into(),
            "Paper exit".into(),
            "Repro exit".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows() {
        let t = table1(0);
        assert_eq!(t.rows.len(), 7);
        assert!(t.rows[0][0].contains("Synchronization"));
        let text = t.render();
        assert!(text.contains("Paper"));
        assert!(text.contains('%'));
    }

    #[test]
    fn table2_shape() {
        let t = table2(0);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.headers.len(), 5);
        assert_eq!(t.rows[0][1], "17%");
        assert_eq!(t.rows[1][3], "80%");
    }

    #[test]
    fn table3_shape() {
        let t = table3(0);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][1], "3.00");
        assert_eq!(t.rows[5][3], "3.00");
    }

    #[test]
    fn render_aligns_columns() {
        let t = Table {
            title: "x".into(),
            headers: vec!["a".into(), "bb".into()],
            rows: vec![vec!["lonng".into(), "1".into()]],
        };
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("a    "), "{:?}", lines[1]);
    }

    #[test]
    fn tables_deterministic() {
        assert_eq!(table1(4), table1(4));
        assert_eq!(table3(4), table3(4));
    }
}
