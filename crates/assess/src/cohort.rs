//! The simulated class: 19 students, IRT pass model, real autograded
//! submissions.

use crate::stats::{calibrate_difficulty, normal, sigmoid};
use labs::{grade, LabId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The autograder is deterministic and the cohort hands in one of a fixed
/// set of canonical submissions per (lab, reached-solution) pair, so grade
/// each distinct program once per process and reuse the verdict.
fn graded(lab: LabId, solved: bool) -> (bool, u32) {
    type VerdictCache = Mutex<HashMap<(LabId, bool), (bool, u32)>>;
    static CACHE: OnceLock<VerdictCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("cache lock").get(&(lab, solved)) {
        return *hit;
    }
    let submission = submission_for(lab, solved);
    let report = grade(lab, &submission);
    let verdict = (report.passed, report.score);
    cache
        .lock()
        .expect("cache lock")
        .insert((lab, solved), verdict);
    verdict
}

/// Class size from the paper: "The size of the class was 19" (§III.C).
pub const CLASS_SIZE: usize = 19;

/// One student's lab outcomes.
#[derive(Debug, Clone)]
pub struct StudentOutcome {
    /// Student index (0-based).
    pub student: usize,
    /// Latent ability.
    pub ability: f64,
    /// Lab-by-lab: did the autograder pass their submission?
    pub lab_passed: Vec<bool>,
    /// Autograder scores per lab (0-100).
    pub lab_scores: Vec<u32>,
}

/// The cohort simulation.
#[derive(Debug)]
pub struct Cohort {
    abilities: Vec<f64>,
    seed: u64,
}

impl Cohort {
    /// Draw `CLASS_SIZE` students deterministically from `seed`.
    pub fn new(seed: u64) -> Cohort {
        Cohort::with_size(seed, CLASS_SIZE)
    }

    /// A cohort of arbitrary size (sensitivity analyses).
    pub fn with_size(seed: u64, n: usize) -> Cohort {
        let mut rng = StdRng::seed_from_u64(seed);
        let abilities = (0..n).map(|_| normal(&mut rng)).collect();
        Cohort { abilities, seed }
    }

    /// The students' latent abilities.
    pub fn abilities(&self) -> &[f64] {
        &self.abilities
    }

    /// Class size.
    pub fn len(&self) -> usize {
        self.abilities.len()
    }

    /// Never empty in practice.
    pub fn is_empty(&self) -> bool {
        self.abilities.is_empty()
    }

    /// Probability that student `i` passes an item of difficulty `d`.
    pub fn pass_probability(&self, student: usize, d: f64) -> f64 {
        sigmoid(self.abilities[student] - d)
    }

    /// Simulate the term's seven labs end to end: the IRT model decides
    /// which students *reach* a working solution for each lab; the
    /// corresponding reference or buggy source is then run through the real
    /// autograder, whose verdict is what counts.
    ///
    /// "Reaches a solution" uses systematic (low-variance) sampling per
    /// lab rather than an independent coin per student: one uniform offset
    /// walks the cumulative pass probabilities, so each student's
    /// inclusion chance is still exactly `sigmoid(ability - difficulty)`
    /// but the realized solver count is always within one student of the
    /// calibrated expectation. That keeps a single 19-student cohort's
    /// Table 1 reproduction inside binomial-noise bounds on every seed
    /// (independent Bernoulli draws could drift 4+ students), while the
    /// per-lab offsets keep genuine seed-to-seed spread for the class-size
    /// sensitivity analysis.
    pub fn run_labs(&self) -> Vec<StudentOutcome> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x1ab5));
        let difficulties: Vec<f64> = LabId::ALL
            .iter()
            .map(|lab| calibrate_difficulty(&self.abilities, lab.paper_passing_rate()))
            .collect();
        let mut reaches = vec![vec![false; LabId::ALL.len()]; self.len()];
        for li in 0..LabId::ALL.len() {
            let mut next: f64 = rng.gen_range(0.0..1.0);
            let mut cum = 0.0;
            for (i, &a) in self.abilities.iter().enumerate() {
                // p < 1, so each student crosses at most one threshold.
                cum += sigmoid(a - difficulties[li]);
                if cum > next {
                    reaches[i][li] = true;
                    next += 1.0;
                }
            }
        }
        let mut outcomes = Vec::with_capacity(self.len());
        for (i, &a) in self.abilities.iter().enumerate() {
            let mut lab_passed = Vec::with_capacity(LabId::ALL.len());
            let mut lab_scores = Vec::with_capacity(LabId::ALL.len());
            for (li, lab) in LabId::ALL.iter().enumerate() {
                let (passed, score) = graded(*lab, reaches[i][li]);
                lab_passed.push(passed);
                lab_scores.push(score);
            }
            outcomes.push(StudentOutcome {
                student: i,
                ability: a,
                lab_passed,
                lab_scores,
            });
        }
        outcomes
    }

    /// Passing rate per lab from simulated outcomes, in [`LabId::ALL`] order.
    pub fn lab_passing_rates(outcomes: &[StudentOutcome]) -> Vec<f64> {
        let n = outcomes.len().max(1) as f64;
        (0..LabId::ALL.len())
            .map(|li| outcomes.iter().filter(|o| o.lab_passed[li]).count() as f64 / n)
            .collect()
    }
}

/// What a student who did / did not reach a working solution hands in.
fn submission_for(lab: LabId, solved: bool) -> String {
    use labs::{
        lab1_sync, lab2_spinlock, lab4_procthread, lab5_bank, lab6_philosophers, lab7_boundedbuffer,
    };
    match (lab, solved) {
        (LabId::Sync, true) => lab1_sync::FIXED_SOURCE.to_string(),
        (LabId::Sync, false) => lab1_sync::BUGGY_SOURCE.to_string(),
        (LabId::SpinLock, true) => lab2_spinlock::TTAS_SOURCE.to_string(),
        // A student who never got the lock working: no mutual exclusion.
        (LabId::SpinLock, false) => lab1_sync::BUGGY_SOURCE.to_string(),
        (LabId::Numa, true) => NUMA_SOLVED.to_string(),
        (LabId::Numa, false) => NUMA_UNSOLVED.to_string(),
        (LabId::ProcThread, true) => lab4_procthread::SOURCE.to_string(),
        (LabId::ProcThread, false) => PROCTHREAD_UNSOLVED.to_string(),
        (LabId::Bank, true) => lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked),
        (LabId::Bank, false) => lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
        (LabId::Philosophers, true) => lab6_philosophers::ordered_source(5),
        (LabId::Philosophers, false) => lab6_philosophers::naive_source(10),
        (LabId::BoundedBuffer, true) => lab7_boundedbuffer::semaphore_source(),
        (LabId::BoundedBuffer, false) => lab7_boundedbuffer::buggy_source(),
    }
}

/// A working NUMA measurement submission (prints both figures).
const NUMA_SOLVED: &str = r#"
fn main() {
    // Measured with the portal's memory system; figures echoed here.
    println("UMA local read mean: 80 ns");
    println("NUMA remote read mean: 130 ns");
}
"#;

/// A typical failing NUMA submission: only measured the local case.
const NUMA_UNSOLVED: &str = r#"
fn main() {
    println("local read mean: 80 ns");
}
"#;

/// A failing process/thread submission: copies but drops the ordering
/// synchronization (writer may run ahead) — single-threaded shortcut.
const PROCTHREAD_UNSOLVED: &str = r#"
fn main() {
    // Never spawned the second thread; copies nothing.
    var text = read_file("input.txt");
    println("read ", len(text), " bytes");
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_is_deterministic() {
        let a = Cohort::new(42);
        let b = Cohort::new(42);
        assert_eq!(a.abilities(), b.abilities());
        assert_eq!(a.len(), CLASS_SIZE);
        let c = Cohort::new(43);
        assert_ne!(a.abilities(), c.abilities());
    }

    #[test]
    fn pass_probability_monotone_in_ability() {
        let c = Cohort::new(1);
        let mut sorted: Vec<f64> = c.abilities().to_vec();
        sorted.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let d = 0.0;
        assert!(sigmoid(lo - d) < sigmoid(hi - d));
    }

    #[test]
    fn simulated_rates_track_paper() {
        // Average over several cohort seeds: each lab's simulated passing
        // rate should land near the paper's value (binomial noise over 19
        // students is ~11%, so allow a generous band).
        let mut sums = vec![0.0; LabId::ALL.len()];
        let reps = 6;
        for seed in 0..reps {
            let cohort = Cohort::new(seed);
            let outcomes = cohort.run_labs();
            for (i, r) in Cohort::lab_passing_rates(&outcomes).iter().enumerate() {
                sums[i] += r;
            }
        }
        for (i, lab) in LabId::ALL.iter().enumerate() {
            let mean_rate = sums[i] / reps as f64;
            let paper = lab.paper_passing_rate();
            assert!(
                (mean_rate - paper).abs() < 0.15,
                "{}: simulated {mean_rate:.2} vs paper {paper:.2}",
                lab.title()
            );
        }
    }

    #[test]
    fn outcomes_have_full_shape() {
        let outcomes = Cohort::new(5).run_labs();
        assert_eq!(outcomes.len(), CLASS_SIZE);
        for o in &outcomes {
            assert_eq!(o.lab_passed.len(), 7);
            assert_eq!(o.lab_scores.len(), 7);
            for (p, s) in o.lab_passed.iter().zip(&o.lab_scores) {
                assert_eq!(*p, *s >= 70, "pass flag must match score threshold");
            }
        }
    }
}

/// Sensitivity analysis: how the per-lab passing-rate *spread* (std dev
/// across cohort seeds) shrinks as the class grows. With the paper's 19
/// students, one student is ~5.3 percentage points — this function
/// quantifies how grainy Table 1 inherently is.
pub fn class_size_sensitivity(sizes: &[usize], seeds: u64) -> Vec<(usize, f64)> {
    use crate::stats::{mean, stddev};
    sizes
        .iter()
        .map(|&n| {
            // Spread of the *average over labs* of per-lab rates, across seeds.
            let rates: Vec<f64> = (0..seeds)
                .map(|seed| {
                    let cohort = Cohort::with_size(seed, n);
                    let outcomes = cohort.run_labs();
                    mean(&Cohort::lab_passing_rates(&outcomes))
                })
                .collect();
            (n, stddev(&rates))
        })
        .collect()
}

#[cfg(test)]
mod sensitivity_tests {
    use super::*;

    #[test]
    fn bigger_classes_are_less_grainy() {
        let rows = class_size_sensitivity(&[8, 64], 5);
        assert_eq!(rows.len(), 2);
        let (small_n, small_sd) = rows[0];
        let (big_n, big_sd) = rows[1];
        assert_eq!((small_n, big_n), (8, 64));
        assert!(
            big_sd < small_sd,
            "spread should shrink with class size: n=8 sd={small_sd:.3}, n=64 sd={big_sd:.3}"
        );
    }
}
