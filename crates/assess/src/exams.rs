//! Table 2: passing rates on the multicore exam questions.
//!
//! The paper reports, for the multicore questions: midterm 17% passing
//! among all students and 33% among students who finished the course with
//! C or better; final exam 22% and 80% respectively — "both passing rates
//! indicated improvements from the students along the progress of the
//! course" (§III.C). The model: exam performance follows the same IRT
//! scheme, with a learning gain added before the final; the course grade
//! (C-or-up) is driven by lab performance plus exams, which induces the
//! strong final-exam/course-pass correlation the paper shows.

use crate::cohort::{Cohort, StudentOutcome};
use crate::stats::calibrate_difficulty;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibration targets from the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExamTargets {
    /// Midterm passing rate among all students.
    pub midterm_all: f64,
    /// Final passing rate among all students.
    pub final_all: f64,
}

impl Default for ExamTargets {
    fn default() -> Self {
        ExamTargets {
            midterm_all: 0.17,
            final_all: 0.22,
        }
    }
}

/// Simulated exam outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExamResults {
    /// Per-student midterm multicore-question pass.
    pub midterm: Vec<bool>,
    /// Per-student final multicore-question pass.
    pub final_exam: Vec<bool>,
    /// Per-student course pass (C or up).
    pub course_pass: Vec<bool>,
}

impl ExamResults {
    /// Passing rate 1 (all students) for the midterm.
    pub fn midterm_rate_all(&self) -> f64 {
        rate(&self.midterm)
    }

    /// Passing rate 1 (all students) for the final.
    pub fn final_rate_all(&self) -> f64 {
        rate(&self.final_exam)
    }

    /// Passing rate 2 (among course passers) for the midterm.
    pub fn midterm_rate_passers(&self) -> f64 {
        rate_among(&self.midterm, &self.course_pass)
    }

    /// Passing rate 2 (among course passers) for the final.
    pub fn final_rate_passers(&self) -> f64 {
        rate_among(&self.final_exam, &self.course_pass)
    }

    /// Fraction of students who passed the course.
    pub fn course_pass_rate(&self) -> f64 {
        rate(&self.course_pass)
    }
}

fn rate(xs: &[bool]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|x| **x).count() as f64 / xs.len() as f64
}

fn rate_among(xs: &[bool], among: &[bool]) -> f64 {
    let picked: Vec<bool> = xs
        .iter()
        .zip(among)
        .filter(|(_, a)| **a)
        .map(|(x, _)| *x)
        .collect();
    rate(&picked)
}

/// The exam simulator.
///
/// Note the arithmetic the paper's Table 2 implies: 22% of 19 students is
/// ~4 final-question passes, and if 80% of course passers passed that
/// question, the course-passing group must be ~5 students (~28% of the
/// class) — so the C-or-up cut sits near the 70th percentile, and the
/// final exam must discriminate sharply (top students pass, others do
/// not). `final_discrimination` is that IRT slope.
#[derive(Debug)]
pub struct ExamModel {
    targets: ExamTargets,
    /// Ability gained between midterm and final — the "improvement along
    /// the progress of the course". Applied more strongly to students who
    /// engage with the labs (pass count), which is what concentrates final-
    /// exam passes among course passers.
    pub learning_gain: f64,
    /// IRT discrimination (slope) of the final's multicore questions.
    pub final_discrimination: f64,
}

impl Default for ExamModel {
    fn default() -> Self {
        ExamModel {
            targets: ExamTargets::default(),
            learning_gain: 1.2,
            final_discrimination: 3.0,
        }
    }
}

impl ExamModel {
    /// A model with explicit targets.
    pub fn new(targets: ExamTargets, learning_gain: f64) -> ExamModel {
        ExamModel {
            targets,
            learning_gain,
            final_discrimination: 3.0,
        }
    }

    /// Simulate both exams and course outcomes for a cohort whose lab
    /// results are `outcomes`.
    pub fn run(&self, cohort: &Cohort, outcomes: &[StudentOutcome], seed: u64) -> ExamResults {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xe4a6));
        let abilities = cohort.abilities();
        let n = abilities.len();
        // Engagement: fraction of labs passed, in [0, 1].
        let engagement: Vec<f64> = outcomes
            .iter()
            .map(|o| {
                o.lab_passed.iter().filter(|p| **p).count() as f64
                    / o.lab_passed.len().max(1) as f64
            })
            .collect();
        // Midterm: raw abilities against a difficulty hit hitting 17%.
        let d_mid = calibrate_difficulty(abilities, self.targets.midterm_all);
        let midterm: Vec<bool> = abilities
            .iter()
            .map(|a| rng.gen_bool(crate::stats::sigmoid(a - d_mid).clamp(0.0, 1.0)))
            .collect();
        // Final: ability plus engagement-weighted learning gain, with a
        // steep discrimination slope, calibrated (on the scaled boosted
        // abilities) to 22%.
        let k = self.final_discrimination.max(0.1);
        let boosted: Vec<f64> = abilities
            .iter()
            .zip(&engagement)
            .map(|(a, e)| k * (a + self.learning_gain * e))
            .collect();
        let d_fin = calibrate_difficulty(&boosted, self.targets.final_all);
        let final_exam: Vec<bool> = boosted
            .iter()
            .map(|a| rng.gen_bool(crate::stats::sigmoid(a - d_fin).clamp(0.0, 1.0)))
            .collect();
        // Course grade: labs 50%, exams 50% (final weighted heavier). The
        // C-or-up cut sits at the ~70th percentile — see the struct docs
        // for why Table 2's numbers force a small passing group.
        let course_score: Vec<f64> = (0..n)
            .map(|i| {
                0.5 * engagement[i]
                    + 0.2 * (midterm[i] as u8 as f64)
                    + 0.3 * (final_exam[i] as u8 as f64)
            })
            .collect();
        let mut sorted = course_score.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let cut = sorted[(n * 7) / 10];
        let course_pass: Vec<bool> = course_score.iter().map(|s| *s >= cut).collect();
        ExamResults {
            midterm,
            final_exam,
            course_pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_results(reps: u64) -> (f64, f64, f64, f64) {
        let mut sums = (0.0, 0.0, 0.0, 0.0);
        for seed in 0..reps {
            let cohort = Cohort::new(seed);
            let outcomes = cohort.run_labs();
            let r = ExamModel::default().run(&cohort, &outcomes, seed);
            sums.0 += r.midterm_rate_all();
            sums.1 += r.final_rate_all();
            sums.2 += r.midterm_rate_passers();
            sums.3 += r.final_rate_passers();
        }
        (
            sums.0 / reps as f64,
            sums.1 / reps as f64,
            sums.2 / reps as f64,
            sums.3 / reps as f64,
        )
    }

    #[test]
    fn all_student_rates_match_calibration() {
        let (mid_all, fin_all, _, _) = mean_results(8);
        assert!((mid_all - 0.17).abs() < 0.10, "midterm {mid_all}");
        assert!((fin_all - 0.22).abs() < 0.10, "final {fin_all}");
    }

    #[test]
    fn passer_rates_exceed_all_rates() {
        // The paper's key qualitative shape: among course passers the rates
        // are much higher, and the final shows the larger jump (33% -> 80%).
        let (mid_all, fin_all, mid_pass, fin_pass) = mean_results(8);
        assert!(mid_pass > mid_all, "midterm {mid_pass} !> {mid_all}");
        assert!(fin_pass > fin_all, "final {fin_pass} !> {fin_all}");
        assert!(
            fin_pass - fin_all > mid_pass - mid_all,
            "final gap ({fin_pass}-{fin_all}) should exceed midterm gap ({mid_pass}-{mid_all})"
        );
        assert!(
            fin_pass > 0.5,
            "final-among-passers {fin_pass} too low (paper: 0.80)"
        );
    }

    #[test]
    fn results_deterministic_per_seed() {
        let cohort = Cohort::new(3);
        let outcomes = cohort.run_labs();
        let a = ExamModel::default().run(&cohort, &outcomes, 9);
        let b = ExamModel::default().run(&cohort, &outcomes, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn rate_helpers() {
        let r = ExamResults {
            midterm: vec![true, false, false, false],
            final_exam: vec![true, true, false, false],
            course_pass: vec![true, true, false, false],
        };
        assert_eq!(r.midterm_rate_all(), 0.25);
        assert_eq!(r.final_rate_all(), 0.5);
        assert_eq!(r.midterm_rate_passers(), 0.5);
        assert_eq!(r.final_rate_passers(), 1.0);
        assert_eq!(r.course_pass_rate(), 0.5);
    }
}
