//! Statistics utilities: sampling, logistic model, calibration, summary
//! statistics and Welch's t-test.

use rand::rngs::StdRng;
use rand::Rng;

/// The logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Draw one standard-normal sample (Box-Muller).
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Calibrate an item difficulty `d` by bisection so that the cohort's mean
/// passing probability `mean_i sigmoid(a_i - d)` equals `target`.
///
/// `target` is clamped to `[0.01, 0.99]`; abilities may be any reals.
pub fn calibrate_difficulty(abilities: &[f64], target: f64) -> f64 {
    assert!(!abilities.is_empty(), "need at least one student");
    let target = target.clamp(0.01, 0.99);
    let rate =
        |d: f64| abilities.iter().map(|a| sigmoid(a - d)).sum::<f64>() / abilities.len() as f64;
    let (mut lo, mut hi) = (-20.0, 20.0);
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if rate(mid) > target {
            // Too easy: raise difficulty.
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Sample mean (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample standard deviation (0.0 for fewer than 2 points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Welch's t statistic and degrees of freedom for two samples.
pub fn welch_t(a: &[f64], b: &[f64]) -> (f64, f64) {
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (stddev(a).powi(2), stddev(b).powi(2));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        return (0.0, (na + nb - 2.0).max(1.0));
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2.powi(2)
        / ((va / na).powi(2) / (na - 1.0).max(1.0) + (vb / nb).powi(2) / (nb - 1.0).max(1.0));
    (t, df.max(1.0))
}

/// Draw a Likert response on `[lo, hi]` whose population mean is `mu`:
/// a normal around `mu` (sd `sigma`), rounded and clamped to the scale.
pub fn likert(rng: &mut StdRng, mu: f64, sigma: f64, lo: i32, hi: i32) -> i32 {
    let x = mu + sigma * normal(rng);
    (x.round() as i32).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_shape() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.03, "mean {}", mean(&xs));
        assert!((stddev(&xs) - 1.0).abs() < 0.03, "sd {}", stddev(&xs));
    }

    #[test]
    fn calibration_hits_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let abilities: Vec<f64> = (0..19).map(|_| normal(&mut rng)).collect();
        for target in [0.39, 0.5, 0.67, 0.17, 0.8] {
            let d = calibrate_difficulty(&abilities, target);
            let achieved: f64 =
                abilities.iter().map(|a| sigmoid(a - d)).sum::<f64>() / abilities.len() as f64;
            assert!(
                (achieved - target).abs() < 1e-6,
                "target {target} achieved {achieved}"
            );
        }
    }

    #[test]
    fn calibration_extremes_clamped() {
        let abilities = vec![0.0; 5];
        let d_easy = calibrate_difficulty(&abilities, 1.5);
        let d_hard = calibrate_difficulty(&abilities, -0.5);
        assert!(d_easy < d_hard);
    }

    #[test]
    fn welch_detects_difference() {
        let a: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 2.0 + (i % 3) as f64 * 0.1).collect();
        let (t, df) = welch_t(&a, &b);
        assert!(t < -10.0, "t {t}");
        assert!(df > 10.0);
        let (t0, _) = welch_t(&a, &a.clone());
        assert_eq!(t0, 0.0);
    }

    #[test]
    fn likert_respects_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = likert(&mut rng, 2.0, 1.0, 1, 4);
            assert!((1..=4).contains(&v));
        }
        // Mean tracks mu when far from the boundaries.
        let xs: Vec<f64> = (0..5000)
            .map(|_| likert(&mut rng, 3.0, 0.8, 1, 5) as f64)
            .collect();
        assert!((mean(&xs) - 3.0).abs() < 0.1, "{}", mean(&xs));
    }

    #[test]
    fn summary_stats_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!(
            (stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - (32.0f64 / 7.0).sqrt()).abs()
                < 1e-12
        );
    }
}
