//! Table 3: entrance vs exit survey means.
//!
//! Six questions; scales differ (Q1 is 1-4, Q2-Q4 are 1-3, Q5-Q6 are 1-5;
//! Q1-Q4 are coded so *lower* is better / more confident). The paper's
//! means: 3.00→2.00, 2.56→2.38, 1.33→1.38, 1.44→1.31, 2.00→2.75,
//! 2.22→3.00.

use crate::stats::{likert, mean};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One survey question with its scale and the paper's reported means.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyQuestion {
    /// Question number (1-based, as in the paper).
    pub number: usize,
    /// Short description.
    pub text: &'static str,
    /// Scale bounds (inclusive).
    pub scale: (i32, i32),
    /// Paper's entrance-survey mean.
    pub paper_entrance: f64,
    /// Paper's exit-survey mean.
    pub paper_exit: f64,
}

/// The six questions of §III.C.
pub fn questions() -> Vec<SurveyQuestion> {
    vec![
        SurveyQuestion {
            number: 1,
            text: "How much do you know about PDC technology? (1=a lot .. 4=not at all)",
            scale: (1, 4),
            paper_entrance: 3.00,
            paper_exit: 2.00,
        },
        SurveyQuestion {
            number: 2,
            text: "Is the single-processor OS course still sufficient? (1=yes .. 3=no)",
            scale: (1, 3),
            paper_entrance: 2.56,
            paper_exit: 2.38,
        },
        SurveyQuestion {
            number: 3,
            text: "Relevance of multi-core topics in the curriculum (1=highly important .. 3=not important)",
            scale: (1, 3),
            paper_entrance: 1.33,
            paper_exit: 1.38,
        },
        SurveyQuestion {
            number: 4,
            text: "Usefulness of multi-core skills for career/graduate study (1=very useful .. 3=not useful)",
            scale: (1, 3),
            paper_entrance: 1.44,
            paper_exit: 1.31,
        },
        SurveyQuestion {
            number: 5,
            text: "Self-rated knowledge of message-passing systems (1=least .. 5=full)",
            scale: (1, 5),
            paper_entrance: 2.00,
            paper_exit: 2.75,
        },
        SurveyQuestion {
            number: 6,
            text: "Self-rated knowledge of Pthread multithreading (1=least .. 5=full)",
            scale: (1, 5),
            paper_entrance: 2.22,
            paper_exit: 3.00,
        },
    ]
}

/// Simulated survey results for one administration.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyRun {
    /// Per-question responses (one inner vec per question, one entry per
    /// respondent).
    pub responses: Vec<Vec<i32>>,
}

impl SurveyRun {
    /// Sample mean per question.
    pub fn means(&self) -> Vec<f64> {
        self.responses
            .iter()
            .map(|r| mean(&r.iter().map(|v| *v as f64).collect::<Vec<f64>>()))
            .collect()
    }
}

/// Generates entrance and exit surveys whose population means are the
/// paper's values.
#[derive(Debug)]
pub struct SurveyModel {
    /// Response noise (standard deviation on the latent scale).
    pub sigma: f64,
    /// Respondents per administration (paper class: ~16-19 responded).
    pub respondents: usize,
}

impl Default for SurveyModel {
    fn default() -> Self {
        SurveyModel {
            sigma: 0.7,
            respondents: 16,
        }
    }
}

impl SurveyModel {
    /// Run the entrance and exit surveys; deterministic per seed.
    pub fn run(&self, seed: u64) -> (SurveyRun, SurveyRun) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x50b7));
        let qs = questions();
        let sample = |rng: &mut StdRng, pick_exit: bool| SurveyRun {
            responses: qs
                .iter()
                .map(|q| {
                    let mu = if pick_exit {
                        q.paper_exit
                    } else {
                        q.paper_entrance
                    };
                    (0..self.respondents)
                        .map(|_| likert(rng, mu, self.sigma, q.scale.0, q.scale.1))
                        .collect()
                })
                .collect(),
        };
        let entrance = sample(&mut rng, false);
        let exit = sample(&mut rng, true);
        (entrance, exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_table_matches_paper() {
        let qs = questions();
        assert_eq!(qs.len(), 6);
        let means: Vec<(f64, f64)> = qs
            .iter()
            .map(|q| (q.paper_entrance, q.paper_exit))
            .collect();
        assert_eq!(
            means,
            vec![
                (3.00, 2.00),
                (2.56, 2.38),
                (1.33, 1.38),
                (1.44, 1.31),
                (2.00, 2.75),
                (2.22, 3.00)
            ]
        );
    }

    #[test]
    fn responses_respect_scales() {
        let (entrance, exit) = SurveyModel::default().run(1);
        let qs = questions();
        for run in [&entrance, &exit] {
            for (q, resp) in qs.iter().zip(&run.responses) {
                assert_eq!(resp.len(), 16);
                for v in resp {
                    assert!(
                        (q.scale.0..=q.scale.1).contains(v),
                        "Q{} value {v} outside {:?}",
                        q.number,
                        q.scale
                    );
                }
            }
        }
    }

    #[test]
    fn means_track_paper_within_noise() {
        // Average many administrations: simulated means approach targets.
        let model = SurveyModel {
            sigma: 0.7,
            respondents: 16,
        };
        let qs = questions();
        let reps = 30u64;
        let mut ent_sums = [0.0; 6];
        let mut exit_sums = [0.0; 6];
        for seed in 0..reps {
            let (e, x) = model.run(seed);
            for (i, m) in e.means().iter().enumerate() {
                ent_sums[i] += m;
            }
            for (i, m) in x.means().iter().enumerate() {
                exit_sums[i] += m;
            }
        }
        for (i, q) in qs.iter().enumerate() {
            let em = ent_sums[i] / reps as f64;
            let xm = exit_sums[i] / reps as f64;
            // Clipping at the scale edge biases extreme targets slightly;
            // allow 0.25.
            assert!(
                (em - q.paper_entrance).abs() < 0.25,
                "Q{} entrance {em} vs {}",
                q.number,
                q.paper_entrance
            );
            assert!(
                (xm - q.paper_exit).abs() < 0.25,
                "Q{} exit {xm} vs {}",
                q.number,
                q.paper_exit
            );
        }
    }

    #[test]
    fn knowledge_gains_have_right_direction() {
        // Q1 falls (less "not at all"), Q5/Q6 rise (more knowledge).
        let (e, x) = SurveyModel::default().run(7);
        let (em, xm) = (e.means(), x.means());
        assert!(xm[0] < em[0], "Q1 should fall: {} -> {}", em[0], xm[0]);
        assert!(xm[4] > em[4], "Q5 should rise: {} -> {}", em[4], xm[4]);
        assert!(xm[5] > em[5], "Q6 should rise: {} -> {}", em[5], xm[5]);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = SurveyModel::default();
        assert_eq!(m.run(3), m.run(3));
        assert_ne!(m.run(3), m.run(4));
    }
}
