//! # assess — learning-outcomes assessment (§III.C)
//!
//! The paper's evaluation is three tables: programming-assignment passing
//! rates, exam passing rates, and entrance/exit survey means, all over one
//! 19-student class. The students are the one thing we cannot download, so
//! this crate simulates the cohort with an item-response-theory model:
//!
//! * every student has a latent ability `a ~ N(0, 1)`;
//! * every assessment item has a difficulty `d`, *calibrated by bisection*
//!   so the cohort's expected passing rate equals the paper's reported rate;
//! * a student passes an item with probability `sigmoid(a - d)`.
//!
//! Crucially, lab passes are not just coin flips: a passing student submits
//! the lab's reference solution and a failing student submits the buggy
//! handout, and the [`labs`] autograder *actually runs* the submission on
//! the VM — so Table 1 is regenerated end to end through the real grading
//! pipeline.
//!
//! [`tables`] renders the three tables side by side with the paper's values;
//! EXPERIMENTS.md records the comparison.

pub mod cohort;
pub mod exams;
pub mod stats;
pub mod survey;
pub mod tables;

pub use cohort::{Cohort, StudentOutcome};
pub use exams::{ExamModel, ExamResults};
pub use survey::{SurveyModel, SurveyQuestion};
pub use tables::{table1, table2, table3, Table};
