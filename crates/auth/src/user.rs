//! The user store: accounts, roles, login verification and lockout.
//!
//! Roles mirror the paper's audience: "faculty members, research personnel,
//! and students" (§I), plus an administrator role for portal management.

use crate::password::{PasswordHash, PasswordPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;

/// Authorization role of an account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Course students: own files, submit jobs.
    Student,
    /// Faculty/research staff: students' powers plus lab management.
    Faculty,
    /// Portal administrators: everything, including user management.
    Admin,
}

impl Role {
    /// Whether this role subsumes `other`'s privileges.
    pub fn at_least(self, other: Role) -> bool {
        self.rank() >= other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            Role::Student => 0,
            Role::Faculty => 1,
            Role::Admin => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Student => "student",
            Role::Faculty => "faculty",
            Role::Admin => "admin",
        }
    }
}

/// Authentication failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Username not registered.
    UnknownUser(String),
    /// Username already registered.
    UserExists(String),
    /// Wrong password.
    BadCredentials,
    /// Too many consecutive failures; account must be unlocked by an admin.
    AccountLocked {
        /// Username affected.
        user: String,
        /// Consecutive failures recorded.
        failures: u32,
    },
    /// Password violates the policy.
    WeakPassword {
        /// Required minimum length.
        min_length: usize,
    },
    /// Caller's role is insufficient.
    Forbidden {
        /// Role required.
        required: Role,
        /// Role held.
        held: Role,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownUser(u) => write!(f, "unknown user {u}"),
            AuthError::UserExists(u) => write!(f, "user {u} already exists"),
            AuthError::BadCredentials => write!(f, "bad credentials"),
            AuthError::AccountLocked { user, failures } => {
                write!(f, "account {user} locked after {failures} failures")
            }
            AuthError::WeakPassword { min_length } => {
                write!(f, "password too weak (minimum {min_length} characters)")
            }
            AuthError::Forbidden { required, held } => {
                write!(
                    f,
                    "requires {} role, caller is {}",
                    required.name(),
                    held.name()
                )
            }
        }
    }
}

impl std::error::Error for AuthError {}

/// One account.
#[derive(Debug, Clone)]
pub struct User {
    /// Login name.
    pub username: String,
    /// Authorization role.
    pub role: Role,
    hash: PasswordHash,
    consecutive_failures: u32,
    locked: bool,
}

/// Maximum consecutive failures before lockout.
pub const LOCKOUT_THRESHOLD: u32 = 5;

/// The account database.
#[derive(Debug)]
pub struct UserStore {
    users: HashMap<String, User>,
    policy: PasswordPolicy,
    rng: StdRng,
}

impl UserStore {
    /// An empty store; `seed` drives salt generation (use a random seed in
    /// production, a fixed one in tests).
    pub fn new(seed: u64) -> UserStore {
        UserStore {
            users: HashMap::new(),
            policy: PasswordPolicy::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Override the password policy (e.g. fewer iterations in tests).
    pub fn with_policy(mut self, policy: PasswordPolicy) -> UserStore {
        self.policy = policy;
        self
    }

    /// Register a new account.
    pub fn register(
        &mut self,
        username: &str,
        password: &str,
        role: Role,
    ) -> Result<(), AuthError> {
        if self.users.contains_key(username) {
            return Err(AuthError::UserExists(username.to_string()));
        }
        if password.chars().count() < self.policy.min_length {
            return Err(AuthError::WeakPassword {
                min_length: self.policy.min_length,
            });
        }
        let hash = PasswordHash::create(password, self.policy, &mut self.rng);
        self.users.insert(
            username.to_string(),
            User {
                username: username.to_string(),
                role,
                hash,
                consecutive_failures: 0,
                locked: false,
            },
        );
        Ok(())
    }

    /// Verify a login attempt. Success resets the failure counter; failure
    /// increments it and locks the account at [`LOCKOUT_THRESHOLD`].
    pub fn verify(&mut self, username: &str, password: &str) -> Result<&User, AuthError> {
        let user = self
            .users
            .get_mut(username)
            .ok_or_else(|| AuthError::UnknownUser(username.to_string()))?;
        if user.locked {
            return Err(AuthError::AccountLocked {
                user: username.to_string(),
                failures: user.consecutive_failures,
            });
        }
        if user.hash.verify(password) {
            user.consecutive_failures = 0;
            Ok(&self.users[username])
        } else {
            user.consecutive_failures += 1;
            if user.consecutive_failures >= LOCKOUT_THRESHOLD {
                user.locked = true;
                return Err(AuthError::AccountLocked {
                    user: username.to_string(),
                    failures: user.consecutive_failures,
                });
            }
            Err(AuthError::BadCredentials)
        }
    }

    /// Admin operation: clear a lockout.
    pub fn unlock(&mut self, admin_role: Role, username: &str) -> Result<(), AuthError> {
        if !admin_role.at_least(Role::Admin) {
            return Err(AuthError::Forbidden {
                required: Role::Admin,
                held: admin_role,
            });
        }
        let user = self
            .users
            .get_mut(username)
            .ok_or_else(|| AuthError::UnknownUser(username.to_string()))?;
        user.locked = false;
        user.consecutive_failures = 0;
        Ok(())
    }

    /// Change a password (requires the current one).
    pub fn change_password(
        &mut self,
        username: &str,
        old: &str,
        new: &str,
    ) -> Result<(), AuthError> {
        self.verify(username, old)?;
        if new.chars().count() < self.policy.min_length {
            return Err(AuthError::WeakPassword {
                min_length: self.policy.min_length,
            });
        }
        let hash = PasswordHash::create(new, self.policy, &mut self.rng);
        self.users.get_mut(username).expect("verified above").hash = hash;
        Ok(())
    }

    /// Look an account up without authenticating.
    pub fn get(&self, username: &str) -> Option<&User> {
        self.users.get(username)
    }

    /// All usernames, sorted.
    pub fn usernames(&self) -> Vec<String> {
        let mut v: Vec<String> = self.users.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> UserStore {
        UserStore::new(42).with_policy(PasswordPolicy {
            iterations: 10,
            min_length: 8,
        })
    }

    #[test]
    fn register_and_login() {
        let mut s = store();
        s.register("alice", "p4ssword!", Role::Student).unwrap();
        let u = s.verify("alice", "p4ssword!").unwrap();
        assert_eq!(u.role, Role::Student);
    }

    #[test]
    fn duplicate_and_weak_rejected() {
        let mut s = store();
        s.register("alice", "p4ssword!", Role::Student).unwrap();
        assert_eq!(
            s.register("alice", "password2", Role::Student),
            Err(AuthError::UserExists("alice".into()))
        );
        assert_eq!(
            s.register("bob", "short", Role::Student),
            Err(AuthError::WeakPassword { min_length: 8 })
        );
    }

    #[test]
    fn unknown_user_distinct_error() {
        let mut s = store();
        assert!(
            matches!(s.verify("ghost", "whatever1"), Err(AuthError::UnknownUser(u)) if u == "ghost")
        );
    }

    #[test]
    fn lockout_after_threshold() {
        let mut s = store();
        s.register("alice", "p4ssword!", Role::Student).unwrap();
        for i in 0..LOCKOUT_THRESHOLD - 1 {
            assert!(
                matches!(
                    s.verify("alice", "nope-nope"),
                    Err(AuthError::BadCredentials)
                ),
                "attempt {i}"
            );
        }
        assert!(matches!(
            s.verify("alice", "nope-nope"),
            Err(AuthError::AccountLocked { .. })
        ));
        // Even the right password fails while locked.
        assert!(matches!(
            s.verify("alice", "p4ssword!"),
            Err(AuthError::AccountLocked { .. })
        ));
    }

    #[test]
    fn success_resets_failure_count() {
        let mut s = store();
        s.register("alice", "p4ssword!", Role::Student).unwrap();
        for _ in 0..LOCKOUT_THRESHOLD - 1 {
            let _ = s.verify("alice", "wrong-pass");
        }
        s.verify("alice", "p4ssword!").unwrap();
        // Counter reset: more failures allowed before lockout again.
        assert!(matches!(
            s.verify("alice", "wrong-pass"),
            Err(AuthError::BadCredentials)
        ));
    }

    #[test]
    fn unlock_requires_admin() {
        let mut s = store();
        s.register("alice", "p4ssword!", Role::Student).unwrap();
        for _ in 0..LOCKOUT_THRESHOLD {
            let _ = s.verify("alice", "wrong-pass");
        }
        assert!(matches!(
            s.unlock(Role::Faculty, "alice"),
            Err(AuthError::Forbidden { .. })
        ));
        s.unlock(Role::Admin, "alice").unwrap();
        assert!(s.verify("alice", "p4ssword!").is_ok());
    }

    #[test]
    fn change_password_flow() {
        let mut s = store();
        s.register("alice", "p4ssword!", Role::Student).unwrap();
        assert!(matches!(
            s.change_password("alice", "wrong-old", "newpass99"),
            Err(AuthError::BadCredentials)
        ));
        s.change_password("alice", "p4ssword!", "newpass99")
            .unwrap();
        assert!(s.verify("alice", "p4ssword!").is_err());
        assert!(s.verify("alice", "newpass99").is_ok());
    }

    #[test]
    fn role_ordering() {
        assert!(Role::Admin.at_least(Role::Faculty));
        assert!(Role::Faculty.at_least(Role::Student));
        assert!(!Role::Student.at_least(Role::Faculty));
        assert!(Role::Student.at_least(Role::Student));
    }

    #[test]
    fn usernames_sorted() {
        let mut s = store();
        s.register("zed", "p4ssword!", Role::Student).unwrap();
        s.register("amy", "p4ssword!", Role::Faculty).unwrap();
        assert_eq!(s.usernames(), vec!["amy", "zed"]);
        assert_eq!(s.len(), 2);
    }
}
