//! Salted, iterated password hashing with constant-time verification.
//!
//! Scheme: `h_0 = SHA256(salt || password)`, `h_i = SHA256(h_{i-1} || salt)`,
//! stored as `(salt, iterations, h_n)`. Iteration stretching makes offline
//! guessing proportionally expensive; the per-user random salt defeats
//! rainbow tables. This is a teaching-cluster portal, not a bank — the
//! scheme is deliberately simple but structurally sound.

use crate::sha256::Sha256;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Tunable hashing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PasswordPolicy {
    /// Hash-stretching iterations (>= 1).
    pub iterations: u32,
    /// Minimum accepted password length.
    pub min_length: usize,
}

impl Default for PasswordPolicy {
    fn default() -> Self {
        PasswordPolicy {
            iterations: 10_000,
            min_length: 8,
        }
    }
}

/// A stored password verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswordHash {
    salt: [u8; 16],
    iterations: u32,
    hash: [u8; 32],
}

impl PasswordHash {
    /// Hash `password` under `policy` with a salt drawn from `rng`.
    pub fn create<R: RngCore>(password: &str, policy: PasswordPolicy, rng: &mut R) -> PasswordHash {
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        let hash = stretch(password.as_bytes(), &salt, policy.iterations.max(1));
        PasswordHash {
            salt,
            iterations: policy.iterations.max(1),
            hash,
        }
    }

    /// Deterministic creation for tests (seeded salt).
    pub fn create_seeded(password: &str, policy: PasswordPolicy, seed: u64) -> PasswordHash {
        let mut rng = StdRng::seed_from_u64(seed);
        // Use gen::<[u8; 16]> shape via fill.
        let mut salt = [0u8; 16];
        rng.fill(&mut salt);
        let hash = stretch(password.as_bytes(), &salt, policy.iterations.max(1));
        PasswordHash {
            salt,
            iterations: policy.iterations.max(1),
            hash,
        }
    }

    /// Constant-time verification of a candidate password.
    pub fn verify(&self, candidate: &str) -> bool {
        let got = stretch(candidate.as_bytes(), &self.salt, self.iterations);
        constant_time_eq(&got, &self.hash)
    }

    /// The iteration count this hash was stretched with.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }
}

fn stretch(password: &[u8], salt: &[u8; 16], iterations: u32) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(salt);
    h.update(password);
    let mut cur = h.finalize();
    for _ in 1..iterations {
        let mut h = Sha256::new();
        h.update(&cur);
        h.update(salt);
        cur = h.finalize();
    }
    cur
}

/// Compare digests without early exit so timing does not leak the prefix
/// length of a near-match.
fn constant_time_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> PasswordPolicy {
        PasswordPolicy {
            iterations: 100,
            min_length: 8,
        }
    }

    #[test]
    fn verify_accepts_correct_password() {
        let h = PasswordHash::create_seeded("open sesame", policy(), 1);
        assert!(h.verify("open sesame"));
    }

    #[test]
    fn verify_rejects_wrong_password() {
        let h = PasswordHash::create_seeded("open sesame", policy(), 1);
        assert!(!h.verify("open sesam"));
        assert!(!h.verify(""));
        assert!(!h.verify("open sesame "));
    }

    #[test]
    fn same_password_different_salts_differ() {
        let a = PasswordHash::create_seeded("hunter22", policy(), 1);
        let b = PasswordHash::create_seeded("hunter22", policy(), 2);
        assert_ne!(a, b);
        assert!(a.verify("hunter22") && b.verify("hunter22"));
    }

    #[test]
    fn iterations_floor_at_one() {
        let p = PasswordPolicy {
            iterations: 0,
            min_length: 1,
        };
        let h = PasswordHash::create_seeded("x", p, 3);
        assert_eq!(h.iterations(), 1);
        assert!(h.verify("x"));
    }

    #[test]
    fn random_salt_from_rng() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = PasswordHash::create("pw-123456", policy(), &mut rng);
        let b = PasswordHash::create("pw-123456", policy(), &mut rng);
        assert_ne!(a, b, "consecutive salts must differ");
    }

    #[test]
    fn constant_time_eq_basic() {
        let a = [1u8; 32];
        let mut b = a;
        assert!(constant_time_eq(&a, &b));
        b[31] ^= 1;
        assert!(!constant_time_eq(&a, &b));
    }
}
