//! Expiring bearer-token sessions for the web portal.
//!
//! Time is a logical `u64` supplied by the caller (the portal passes wall
//! seconds; tests pass a counter), which keeps the crate deterministic.

use crate::sha256::Sha256;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// An opaque session token (64 hex chars).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token(String);

impl Token {
    /// The token text (what goes into the cookie).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Wrap a client-presented token string for lookup.
    pub fn from_string(s: impl Into<String>) -> Token {
        Token(s.into())
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A live session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Authenticated username.
    pub username: String,
    /// Creation time (caller clock).
    pub created_at: u64,
    /// Expiry time (caller clock).
    pub expires_at: u64,
    /// Issue-order stamp, unique across the manager's lifetime. A
    /// long-running operation records this at start and compares at
    /// finish: a mismatch (or a missing token) proves the session was
    /// revoked — and possibly re-issued — mid-flight, so the result must
    /// be dropped rather than applied.
    pub generation: u64,
}

/// Session errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No such token (never issued, expired-and-purged, or logged out).
    InvalidToken,
    /// Token exists but expired.
    Expired {
        /// When it expired (caller clock).
        expired_at: u64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidToken => f.write_str("invalid session token"),
            SessionError::Expired { expired_at } => write!(f, "session expired at {expired_at}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Issues, validates and revokes session tokens.
#[derive(Debug)]
pub struct SessionManager {
    sessions: HashMap<String, Session>,
    ttl: u64,
    rng: StdRng,
    issued: u64,
}

impl SessionManager {
    /// A manager whose tokens live `ttl` clock units; `seed` drives token
    /// randomness.
    pub fn new(ttl: u64, seed: u64) -> SessionManager {
        SessionManager {
            sessions: HashMap::new(),
            ttl,
            rng: StdRng::seed_from_u64(seed),
            issued: 0,
        }
    }

    /// Issue a token for `username` at time `now`.
    pub fn issue(&mut self, username: &str, now: u64) -> Token {
        let mut entropy = [0u8; 32];
        self.rng.fill_bytes(&mut entropy);
        self.issued += 1;
        // Hash entropy with the issue counter and username so even a
        // compromised RNG state cannot collide tokens.
        let mut h = Sha256::new();
        h.update(&entropy);
        h.update(&self.issued.to_le_bytes());
        h.update(username.as_bytes());
        let tok = Token(Sha256::to_hex(&h.finalize()));
        self.sessions.insert(
            tok.0.clone(),
            Session {
                username: username.to_string(),
                created_at: now,
                expires_at: now.saturating_add(self.ttl),
                generation: self.issued,
            },
        );
        tok
    }

    /// Validate a token at time `now`, returning its session.
    pub fn validate(&self, token: &Token, now: u64) -> Result<&Session, SessionError> {
        let s = self
            .sessions
            .get(&token.0)
            .ok_or(SessionError::InvalidToken)?;
        if now >= s.expires_at {
            return Err(SessionError::Expired {
                expired_at: s.expires_at,
            });
        }
        Ok(s)
    }

    /// Extend a valid token's expiry to `now + ttl` (sliding sessions).
    pub fn touch(&mut self, token: &Token, now: u64) -> Result<(), SessionError> {
        let ttl = self.ttl;
        let s = self
            .sessions
            .get_mut(&token.0)
            .ok_or(SessionError::InvalidToken)?;
        if now >= s.expires_at {
            return Err(SessionError::Expired {
                expired_at: s.expires_at,
            });
        }
        s.expires_at = now.saturating_add(ttl);
        Ok(())
    }

    /// Revoke (log out) a token. Idempotent.
    pub fn revoke(&mut self, token: &Token) -> bool {
        self.sessions.remove(&token.0).is_some()
    }

    /// Drop every expired session; returns how many were purged.
    pub fn purge_expired(&mut self, now: u64) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| now < s.expires_at);
        before - self.sessions.len()
    }

    /// Number of live (unpurged) sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are held.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Revoke all sessions belonging to `username`; returns the count.
    pub fn revoke_user(&mut self, username: &str) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| s.username != username);
        before - self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_validate_roundtrip() {
        let mut m = SessionManager::new(100, 1);
        let t = m.issue("alice", 0);
        let s = m.validate(&t, 50).unwrap();
        assert_eq!(s.username, "alice");
        assert_eq!(s.expires_at, 100);
    }

    #[test]
    fn tokens_are_unique_and_hex() {
        let mut m = SessionManager::new(100, 1);
        let a = m.issue("alice", 0);
        let b = m.issue("alice", 0);
        assert_ne!(a, b);
        assert_eq!(a.as_str().len(), 64);
        assert!(a.as_str().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn expiry_enforced() {
        let mut m = SessionManager::new(10, 1);
        let t = m.issue("alice", 0);
        assert!(m.validate(&t, 9).is_ok());
        assert_eq!(
            m.validate(&t, 10),
            Err(SessionError::Expired { expired_at: 10 })
        );
    }

    #[test]
    fn touch_slides_expiry() {
        let mut m = SessionManager::new(10, 1);
        let t = m.issue("alice", 0);
        m.touch(&t, 9).unwrap();
        assert!(m.validate(&t, 15).is_ok());
        assert!(m.validate(&t, 19).is_err());
    }

    #[test]
    fn generations_are_unique_and_monotonic() {
        let mut m = SessionManager::new(100, 1);
        let a = m.issue("alice", 0);
        let b = m.issue("alice", 0);
        let ga = m.validate(&a, 1).unwrap().generation;
        let gb = m.validate(&b, 1).unwrap().generation;
        assert!(gb > ga, "second issue must get a later generation");
    }

    #[test]
    fn revoke_and_unknown_token() {
        let mut m = SessionManager::new(10, 1);
        let t = m.issue("alice", 0);
        assert!(m.revoke(&t));
        assert!(!m.revoke(&t));
        assert_eq!(m.validate(&t, 1), Err(SessionError::InvalidToken));
        let fake = Token::from_string("feedbeef".repeat(8));
        assert_eq!(m.validate(&fake, 0), Err(SessionError::InvalidToken));
    }

    #[test]
    fn purge_removes_only_expired() {
        let mut m = SessionManager::new(10, 1);
        let _a = m.issue("alice", 0);
        let b = m.issue("bob", 5);
        assert_eq!(m.purge_expired(12), 1);
        assert_eq!(m.len(), 1);
        assert!(m.validate(&b, 12).is_ok());
    }

    #[test]
    fn revoke_user_clears_all_their_sessions() {
        let mut m = SessionManager::new(100, 1);
        m.issue("alice", 0);
        m.issue("alice", 0);
        let b = m.issue("bob", 0);
        assert_eq!(m.revoke_user("alice"), 2);
        assert!(m.validate(&b, 1).is_ok());
        assert!(!m.is_empty());
    }
}
