//! # auth — the portal's authentication substrate
//!
//! The portal requirements begin with "provide means of user distinction,
//! through the method of user authentication" (§II). This crate implements
//! that from first principles:
//!
//! * [`sha256`] — a from-scratch FIPS 180-4 SHA-256 (no external crypto);
//! * [`password`] — salted, iterated password hashing with constant-time
//!   verification;
//! * [`user`] — the user store: roles (student/faculty/admin), registration,
//!   login with failure lockout;
//! * [`session`] — expiring bearer tokens for the web portal.
//!
//! ```
//! use auth::{UserStore, Role};
//!
//! let mut store = UserStore::new(7);
//! store.register("hlin", "correct horse battery", Role::Faculty).unwrap();
//! assert!(store.verify("hlin", "correct horse battery").is_ok());
//! assert!(store.verify("hlin", "wrong").is_err());
//! ```

pub mod password;
pub mod session;
pub mod sha256;
pub mod user;

pub use password::{PasswordHash, PasswordPolicy};
pub use session::{Session, SessionError, SessionManager, Token};
pub use sha256::Sha256;
pub use user::{AuthError, Role, User, UserStore};
