//! # cluster-portal — umbrella crate
//!
//! Re-exports the whole workspace for integration tests and the examples.
//! See README.md for the tour and DESIGN.md for the architecture.

pub use assess;
pub use auth;
pub use ccp_core;
pub use cluster;
pub use httpd;
pub use labs;
pub use minilang;
pub use mpik;
pub use sched;
pub use simnet;
pub use toolchain;
pub use vfs;
pub use webportal;
